"""NVM endurance accounting.

"The endurance — the lifetime of these technologies — is expected to be
significantly lower compared to DRAM, which can be critical when using
them as main memory" (Section 2).  The paper surveys wear-levelling
fixes (FTL-style remapping, start-gap, write buffers) and HeteroOS's
own contribution to endurance is indirect: keeping write-heavy pages
*off* the NVM (the Section 4.3 write-aware extension).

This module provides the accounting those discussions need: a
:class:`WearTracker` accumulates per-device write traffic during a run,
and :func:`estimated_lifetime_years` converts a write rate into a
device-lifetime estimate under a given wear-levelling efficiency — the
metric by which placement policies can be compared for endurance
impact (see the endurance ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hw.memdevice import MemoryDevice
from repro.units import NS_PER_SEC

SECONDS_PER_YEAR = 365.25 * 24 * 3600


def estimated_lifetime_years(
    device: MemoryDevice,
    write_bytes_per_sec: float,
    wear_leveling_efficiency: float = 0.9,
) -> float:
    """Years until the device exhausts its write endurance.

    ``wear_leveling_efficiency`` is the fraction of the ideal
    capacity × endurance write budget a real wear-leveller achieves
    (start-gap reaches ~90%, naive placement far less).  Returns
    ``inf`` for devices without an endurance limit (DRAM) or when no
    writes occur.
    """
    if not 0.0 < wear_leveling_efficiency <= 1.0:
        raise ConfigurationError("wear-levelling efficiency must be in (0,1]")
    if device.endurance_cycles is None or write_bytes_per_sec <= 0:
        return float("inf")
    write_budget_bytes = (
        device.capacity_bytes
        * device.endurance_cycles
        * wear_leveling_efficiency
    )
    return write_budget_bytes / write_bytes_per_sec / SECONDS_PER_YEAR


@dataclass
class WearTracker:
    """Cumulative write-byte counters per device."""

    write_bytes: dict[str, float] = field(default_factory=dict)
    _devices: dict[str, MemoryDevice] = field(default_factory=dict)

    def record(self, device: MemoryDevice, write_bytes: float) -> None:
        if write_bytes < 0:
            raise ConfigurationError("write bytes must be non-negative")
        self.write_bytes[device.name] = (
            self.write_bytes.get(device.name, 0.0) + write_bytes
        )
        self._devices[device.name] = device

    def write_rate(self, device_name: str, elapsed_ns: float) -> float:
        """Average write bytes/second over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.write_bytes.get(device_name, 0.0) / (
            elapsed_ns / NS_PER_SEC
        )

    def lifetime_years(
        self,
        device_name: str,
        elapsed_ns: float,
        wear_leveling_efficiency: float = 0.9,
    ) -> float:
        """Projected lifetime if the observed write rate persisted."""
        device = self._devices.get(device_name)
        if device is None:
            return float("inf")
        return estimated_lifetime_years(
            device,
            self.write_rate(device_name, elapsed_ns),
            wear_leveling_efficiency,
        )
