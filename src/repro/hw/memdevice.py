"""Memory device models and the Table 1 technology presets.

A :class:`MemoryDevice` is an immutable description of one memory
technology: load/store latency, sustained bandwidth, capacity, and density
relative to DRAM.  The paper's Table 1 quotes the industry projections the
study is built on; :data:`TABLE1_DEVICES` reproduces that table.

The simulator mostly works with two *roles* rather than technologies —
FastMem and SlowMem — which are derived from these presets (or from DRAM
throttling, see :mod:`repro.hw.throttle`), exactly as the paper does.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIB


class MemoryKind(enum.Enum):
    """Memory technology family."""

    DRAM = "dram"
    STACKED_3D = "stacked-3d"
    NVM_PCM = "nvm-pcm"
    #: Generic roles used by the paper's evaluation ("we consider two
    #: generic types of memory", Section 2.1).
    GENERIC_FAST = "generic-fast"
    GENERIC_SLOW = "generic-slow"


@dataclass(frozen=True)
class MemoryDevice:
    """One memory technology instance.

    Attributes
    ----------
    name:
        Human-readable identifier (unique within a machine).
    kind:
        Technology family.
    load_latency_ns / store_latency_ns:
        Uncontended access latencies for reads and writes.
    bandwidth_gbps:
        Sustained bandwidth in GB/s (decimal; 1 GB/s == 1 byte/ns).
    capacity_bytes:
        Usable capacity.  Presets carry a representative capacity; use
        :meth:`with_capacity` to size a device for a machine.
    density_factor:
        Capacity per die area relative to DRAM (Table 1 "Density").
    endurance_cycles:
        Write endurance, or ``None`` for effectively unlimited (DRAM).
    """

    name: str
    kind: MemoryKind
    load_latency_ns: float
    store_latency_ns: float
    bandwidth_gbps: float
    capacity_bytes: int
    density_factor: float = 1.0
    endurance_cycles: float | None = None

    def __post_init__(self) -> None:
        if self.load_latency_ns <= 0 or self.store_latency_ns <= 0:
            raise ConfigurationError(
                f"device {self.name!r}: latencies must be positive"
            )
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"device {self.name!r}: bandwidth must be positive"
            )
        if self.capacity_bytes < 0:
            raise ConfigurationError(
                f"device {self.name!r}: capacity must be non-negative"
            )

    @property
    def bytes_per_ns(self) -> float:
        """Sustained bandwidth expressed in bytes per nanosecond."""
        return self.bandwidth_gbps  # 1 GB/s == 1 byte/ns exactly

    def with_capacity(self, capacity_bytes: int) -> "MemoryDevice":
        """Copy of this device resized to ``capacity_bytes``."""
        return dataclasses.replace(self, capacity_bytes=capacity_bytes)

    def with_name(self, name: str) -> "MemoryDevice":
        """Copy of this device under a different name."""
        return dataclasses.replace(self, name=name)

    def is_faster_than(self, other: "MemoryDevice") -> bool:
        """Strict ordering by load latency, ties broken by bandwidth."""
        # Exact comparison of configured (not accumulated) latencies.
        # heterolint: disable-next-line=float-time-eq
        if self.load_latency_ns != other.load_latency_ns:
            return self.load_latency_ns < other.load_latency_ns
        return self.bandwidth_gbps > other.bandwidth_gbps


def topology_sort_key(device: MemoryDevice) -> tuple:
    """Deterministic device order: fastest tier first, name as tiebreak.

    The total-order companion of :meth:`MemoryDevice.is_faster_than`;
    used to normalise every per-device mapping the simulator emits
    (``RunStats.stall_ns_by_device``, telemetry samples) so JSONL
    timelines and cached results are byte-stable across runs regardless
    of dict insertion order.
    """
    return (device.load_latency_ns, -device.bandwidth_gbps, device.name)


#: Commodity DDR DRAM — the FastMem baseline of the paper's evaluation
#: (Table 1 middle column; Table 3's L:1,B:1 row quotes 60 ns / 24 GB/s).
DRAM = MemoryDevice(
    name="dram",
    kind=MemoryKind.DRAM,
    load_latency_ns=60.0,
    store_latency_ns=60.0,
    bandwidth_gbps=24.0,
    capacity_bytes=16 * GIB,
    density_factor=1.0,
    endurance_cycles=None,
)

#: On-package stacked 3D-DRAM / HBM (Table 1 left column; midpoints).
STACKED_3D = MemoryDevice(
    name="stacked-3d",
    kind=MemoryKind.STACKED_3D,
    load_latency_ns=40.0,
    store_latency_ns=40.0,
    bandwidth_gbps=160.0,
    capacity_bytes=4 * GIB,
    density_factor=1.0 / 4.0,
    endurance_cycles=None,
)

#: Phase-change NVM (Table 1 right column; midpoints of the quoted ranges).
NVM_PCM = MemoryDevice(
    name="nvm-pcm",
    kind=MemoryKind.NVM_PCM,
    load_latency_ns=150.0,
    store_latency_ns=450.0,
    bandwidth_gbps=2.0,
    capacity_bytes=128 * GIB,
    density_factor=16.0,
    endurance_cycles=1e8,
)

#: Table 1, in the paper's column order (stacked, DRAM, NVM).
TABLE1_DEVICES: tuple[MemoryDevice, ...] = (STACKED_3D, DRAM, NVM_PCM)
