"""Hardware performance counters exported by the VMM to the guest.

Section 4.1: "HeteroOS monitors the LLC misses exported by the VMM in each
epoch and dynamically varies the hotness-tracking and migration interval"
— Equation 1.  :class:`PerfCounters` is the per-domain counter file: the
engine records each epoch's LLC misses, and the coordinated policy reads
the latest delta.

The counter file follows perf(1) semantics: :meth:`PerfCounters.read`
returns a monotonic cumulative :class:`CounterSnapshot`, and
``later.delta(earlier)`` yields the per-interval contribution.  Totals
accumulate in Python floats/ints, so unlike real 32/48-bit MSRs there is
no wraparound to correct for — a property the unit tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time cumulative counter values (perf-style ``read()``).

    Snapshots are immutable and totally ordered in time by ``epochs``;
    subtracting an earlier snapshot from a later one (:meth:`delta`)
    gives the interval's contribution.
    """

    epochs: int
    llc_misses: float
    instructions: float

    def delta(self, since: "CounterSnapshot") -> "CounterSnapshot":
        """Per-interval counts between ``since`` and this snapshot.

        Raises :class:`~repro.errors.ConfigurationError` if ``since`` is
        not actually earlier (cumulative counters are monotonic; a
        negative delta means the caller mixed up snapshot order or
        crossed a :meth:`PerfCounters.reset`).
        """
        if (
            self.epochs < since.epochs
            or self.llc_misses < since.llc_misses
            or self.instructions < since.instructions
        ):
            raise ConfigurationError(
                "counter snapshot delta would be negative: "
                f"{since} is not earlier than {self}"
            )
        return CounterSnapshot(
            epochs=self.epochs - since.epochs,
            llc_misses=self.llc_misses - since.llc_misses,
            instructions=self.instructions - since.instructions,
        )

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction over this snapshot's span."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / (self.instructions / 1000.0)


#: The zero point every counter file starts from.
ZERO_SNAPSHOT = CounterSnapshot(epochs=0, llc_misses=0.0, instructions=0.0)


@dataclass
class PerfCounters:
    """Per-epoch LLC miss history plus running totals."""

    llc_miss_history: list[float] = field(default_factory=list)
    total_instructions: float = 0.0
    total_llc_misses: float = 0.0

    def record_epoch(self, llc_misses: float, instructions: float) -> None:
        self.llc_miss_history.append(llc_misses)
        self.total_llc_misses += llc_misses
        self.total_instructions += instructions

    def read(self) -> CounterSnapshot:
        """Monotonic cumulative snapshot (perf-style counter read)."""
        return CounterSnapshot(
            epochs=len(self.llc_miss_history),
            llc_misses=self.total_llc_misses,
            instructions=self.total_instructions,
        )

    def reset(self) -> None:
        """Zero the counter file (new run on a reused domain).

        Snapshots taken before a reset must not be delta'd against
        later ones; :meth:`CounterSnapshot.delta` rejects the mismatch.
        """
        self.llc_miss_history.clear()
        self.total_llc_misses = 0.0
        self.total_instructions = 0.0

    @property
    def last_llc_misses(self) -> float:
        return self.llc_miss_history[-1] if self.llc_miss_history else 0.0

    def llc_miss_delta(self) -> float:
        """Relative change in LLC misses between the last two epochs.

        This is the ``(LLCMiss_i - LLCMiss_{i-1}) / LLCMiss_{i-1}`` term of
        Equation 1.  Returns 0 when fewer than two epochs were recorded or
        the previous epoch had no misses.
        """
        if len(self.llc_miss_history) < 2:
            return 0.0
        previous = self.llc_miss_history[-2]
        if previous <= 0:
            return 0.0
        return (self.llc_miss_history[-1] - previous) / previous

    @property
    def mpki(self) -> float:
        """Whole-run misses per kilo-instruction (Table 4 metric)."""
        if self.total_instructions <= 0:
            return 0.0
        return self.total_llc_misses / (self.total_instructions / 1000.0)
