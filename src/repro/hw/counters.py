"""Hardware performance counters exported by the VMM to the guest.

Section 4.1: "HeteroOS monitors the LLC misses exported by the VMM in each
epoch and dynamically varies the hotness-tracking and migration interval"
— Equation 1.  :class:`PerfCounters` is the per-domain counter file: the
engine records each epoch's LLC misses, and the coordinated policy reads
the latest delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Per-epoch LLC miss history plus running totals."""

    llc_miss_history: list[float] = field(default_factory=list)
    total_instructions: float = 0.0
    total_llc_misses: float = 0.0

    def record_epoch(self, llc_misses: float, instructions: float) -> None:
        self.llc_miss_history.append(llc_misses)
        self.total_llc_misses += llc_misses
        self.total_instructions += instructions

    @property
    def last_llc_misses(self) -> float:
        return self.llc_miss_history[-1] if self.llc_miss_history else 0.0

    def llc_miss_delta(self) -> float:
        """Relative change in LLC misses between the last two epochs.

        This is the ``(LLCMiss_i - LLCMiss_{i-1}) / LLCMiss_{i-1}`` term of
        Equation 1.  Returns 0 when fewer than two epochs were recorded or
        the previous epoch had no misses.
        """
        if len(self.llc_miss_history) < 2:
            return 0.0
        previous = self.llc_miss_history[-2]
        if previous <= 0:
            return 0.0
        return (self.llc_miss_history[-1] - previous) / previous

    @property
    def mpki(self) -> float:
        """Whole-run misses per kilo-instruction (Table 4 metric)."""
        if self.total_instructions <= 0:
            return 0.0
        return self.total_llc_misses / (self.total_instructions / 1000.0)
