"""DRAM throttling emulation of SlowMem (paper Section 2.1, Table 3).

The paper emulates SlowMem by programming the PCI thermal registers of one
DRAM socket, which raises effective latency by a factor *x* and cuts
bandwidth by a factor *y*; a configuration is written ``L:x, B:y``.  Table 3
reports the *measured* latency/bandwidth at four calibration points — note
the measured latency at ``L:5,B:12`` (960 ns) is far above 5 × 60 ns
because bandwidth starvation queues requests.

:func:`throttled_device` reproduces that behaviour: exact Table 3 values at
the calibration points, piecewise-linear interpolation of the queueing
inflation between them, and plain factor scaling outside the measured
range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.memdevice import DRAM, MemoryDevice, MemoryKind


@dataclass(frozen=True)
class ThrottleConfig:
    """An ``L:x, B:y`` throttle setting.

    ``latency_factor`` multiplies the base device's latency and
    ``bandwidth_factor`` divides its bandwidth, before queueing inflation.
    """

    latency_factor: float
    bandwidth_factor: float

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0 or self.bandwidth_factor < 1.0:
            raise ConfigurationError(
                "throttle factors must be >= 1 "
                f"(got L:{self.latency_factor}, B:{self.bandwidth_factor})"
            )

    @property
    def label(self) -> str:
        """The paper's ``L:x,B:y`` notation."""

        def fmt(value: float) -> str:
            return str(int(value)) if float(value).is_integer() else str(value)

        return f"L:{fmt(self.latency_factor)},B:{fmt(self.bandwidth_factor)}"


#: Table 3 calibration points: (L, B) -> (measured latency ns, measured GB/s).
TABLE3_PRESETS: dict[tuple[int, int], tuple[float, float]] = {
    (1, 1): (60.0, 24.0),
    (2, 2): (128.0, 12.4),
    (5, 5): (354.0, 5.1),
    (5, 12): (960.0, 1.38),
}

#: The evaluation's default SlowMem setting: "bandwidth by ~9x and latency
#: by ~5x based on the industrial projections" (Section 5.1).
DEFAULT_SLOWMEM = ThrottleConfig(latency_factor=5.0, bandwidth_factor=9.0)

#: Figure 1's x-axis sweep, in order.
FIGURE1_SWEEP: tuple[ThrottleConfig, ...] = (
    ThrottleConfig(2, 2),
    ThrottleConfig(5, 5),
    ThrottleConfig(5, 7),
    ThrottleConfig(5, 9),
    ThrottleConfig(5, 12),
)


def _queueing_inflation(latency_factor: float, bandwidth_factor: float) -> float:
    """Latency inflation beyond plain ``base * L`` caused by starving BW.

    Calibrated from Table 3: at ``L:5`` the measured latency grows from
    354 ns (B:5) to 960 ns (B:12), i.e. inflation 1.18 -> 3.20 over plain
    5 × 60 ns.  We interpolate that growth linearly in the bandwidth factor
    and anchor the low end at the measured (2,2) and (1,1) points.
    """
    anchors = [  # (bandwidth_factor, inflation over base*L)
        (1.0, 1.0),
        (2.0, 128.0 / 120.0),
        (5.0, 354.0 / 300.0),
        (12.0, 960.0 / 300.0),
    ]
    b = bandwidth_factor
    if b <= anchors[0][0]:
        return anchors[0][1]
    for (b_lo, f_lo), (b_hi, f_hi) in zip(anchors, anchors[1:]):
        if b <= b_hi:
            t = (b - b_lo) / (b_hi - b_lo)
            return f_lo + t * (f_hi - f_lo)
    # Beyond the measured range: extrapolate the last segment's slope.
    (b_lo, f_lo), (b_hi, f_hi) = anchors[-2], anchors[-1]
    slope = (f_hi - f_lo) / (b_hi - b_lo)
    return f_hi + (b - b_hi) * slope


def throttled_device(
    config: ThrottleConfig,
    base: MemoryDevice = DRAM,
    name: str | None = None,
    capacity_bytes: int | None = None,
) -> MemoryDevice:
    """Derive an emulated SlowMem device from ``base`` under ``config``.

    Exact Table 3 measurements are used when ``config`` matches a
    calibration point and ``base`` is stock DRAM; otherwise latency is
    ``base * L`` inflated by the interpolated queueing factor, and
    bandwidth is ``base / B``.
    """
    key = (int(config.latency_factor), int(config.bandwidth_factor))
    exact = (
        TABLE3_PRESETS.get(key)
        # Exact identity check against the stock-DRAM preset; these
        # are configured constants, never accumulated virtual time.
        # heterolint: disable-next-line=float-time-eq
        if base.load_latency_ns == DRAM.load_latency_ns
        and base.bandwidth_gbps == DRAM.bandwidth_gbps
        and key == (config.latency_factor, config.bandwidth_factor)
        else None
    )
    if exact is not None:
        latency_ns, bandwidth = exact
    else:
        inflation = _queueing_inflation(
            config.latency_factor, config.bandwidth_factor
        )
        latency_ns = base.load_latency_ns * config.latency_factor * inflation
        bandwidth = base.bandwidth_gbps / config.bandwidth_factor
    store_ratio = base.store_latency_ns / base.load_latency_ns
    return MemoryDevice(
        name=name or f"throttled({config.label})",
        kind=MemoryKind.GENERIC_SLOW,
        load_latency_ns=latency_ns,
        store_latency_ns=latency_ns * store_ratio,
        bandwidth_gbps=bandwidth,
        capacity_bytes=(
            capacity_bytes if capacity_bytes is not None else base.capacity_bytes
        ),
        density_factor=base.density_factor,
        endurance_cycles=base.endurance_cycles,
    )
