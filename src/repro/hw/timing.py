"""Roofline memory timing model.

Per epoch, per device, the stall time charged to the application is

    stall = max( latency-bound term, bandwidth-bound term )

* latency term: ``misses x device latency / MLP`` — outstanding misses
  overlap up to the workload's memory-level parallelism;
* bandwidth term: ``traffic bytes / device bandwidth`` — a physical floor
  no amount of parallelism can beat.

This single ``max`` reproduces the paper's Observation 1: multi-threaded
graph engines that "process and move data in batches" are bandwidth-bound
and keep slowing down as B grows at fixed L, while low-MLP pointer-chasing
workloads are latency-bound and barely notice bandwidth cuts.

Total epoch time = CPU time + sum of per-device stalls + software
management overheads (charged separately by the engine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.memdevice import MemoryDevice
from repro.units import Instructions, Ns


@dataclass(frozen=True)
class CpuConfig:
    """Core model matching the evaluation platform (16-core 2.67 GHz Xeon)."""

    frequency_ghz: float = 2.67
    ipc: float = 2.0
    cores: int = 16

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.ipc <= 0 or self.cores <= 0:
            raise ConfigurationError("CPU parameters must be positive")

    def cpu_ns(self, instructions: Instructions) -> Ns:
        """Pure-compute time for ``instructions`` (no memory stalls)."""
        return instructions / (self.ipc * self.frequency_ghz)


@dataclass(frozen=True)
class DeviceDemand:
    """Aggregated per-device memory demand for one epoch."""

    read_misses: float = 0.0
    write_misses: float = 0.0
    traffic_bytes: float = 0.0

    def merged(self, other: "DeviceDemand") -> "DeviceDemand":
        return DeviceDemand(
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            traffic_bytes=self.traffic_bytes + other.traffic_bytes,
        )


class MemoryTimingModel:
    """Converts per-device miss demand into stall nanoseconds."""

    def __init__(self, cpu: CpuConfig | None = None) -> None:
        self.cpu = cpu or CpuConfig()

    def stall_ns(
        self, device: MemoryDevice, demand: DeviceDemand, mlp: float
    ) -> Ns:
        """Stall time for ``demand`` served by ``device`` at MLP ``mlp``."""
        if mlp <= 0:
            raise ConfigurationError(f"MLP must be positive, got {mlp}")
        latency_term = (
            demand.read_misses * device.load_latency_ns
            + demand.write_misses * device.store_latency_ns
        ) / mlp
        bandwidth_term = demand.traffic_bytes / device.bytes_per_ns
        return max(latency_term, bandwidth_term)

    def epoch_ns(
        self,
        instructions: Instructions,
        demands: dict[MemoryDevice, DeviceDemand],
        mlp: float,
    ) -> Ns:
        """Total epoch time: compute plus all device stalls."""
        total = self.cpu.cpu_ns(instructions)
        for device, demand in demands.items():
            total += self.stall_ns(device, demand, mlp)
        return total
