"""Socket/NUMA topology, including the remote-NUMA comparison device.

Figure 1's rightmost bars place all data on FastMem in a *remote* NUMA
socket: the paper's point (Observation 2) is that mis-placement across
homogeneous NUMA costs < 30 %, while mis-placement across heterogeneous
memory costs multiples.  :func:`remote_dram` derives the remote-socket
device using typical QPI-era inter-socket penalties (~1.6x latency,
~0.65x bandwidth), which lands real workloads in the paper's <30 % band.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hw.memdevice import DRAM, MemoryDevice

#: Inter-socket access penalties (QPI-generation hardware).
REMOTE_LATENCY_FACTOR = 1.6
REMOTE_BANDWIDTH_FACTOR = 0.65


def remote_dram(base: MemoryDevice = DRAM) -> MemoryDevice:
    """``base`` as seen from the other socket."""
    return dataclasses.replace(
        base,
        name=f"{base.name}-remote",
        load_latency_ns=base.load_latency_ns * REMOTE_LATENCY_FACTOR,
        store_latency_ns=base.store_latency_ns * REMOTE_LATENCY_FACTOR,
        bandwidth_gbps=base.bandwidth_gbps * REMOTE_BANDWIDTH_FACTOR,
    )


@dataclass(frozen=True)
class Socket:
    """One CPU socket and the memory devices attached to it."""

    socket_id: int
    cores: int
    devices: tuple[MemoryDevice, ...] = ()

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("a socket needs at least one core")


@dataclass(frozen=True)
class NumaTopology:
    """The machine's sockets; device distance is local (1) or remote (2)."""

    sockets: tuple[Socket, ...] = field(
        default_factory=lambda: (
            Socket(socket_id=0, cores=8, devices=(DRAM,)),
            Socket(socket_id=1, cores=8, devices=(DRAM.with_name("dram-1"),)),
        )
    )

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ConfigurationError("topology needs at least one socket")
        ids = [s.socket_id for s in self.sockets]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate socket ids")

    @property
    def total_cores(self) -> int:
        return sum(s.cores for s in self.sockets)

    def device_for(self, socket_id: int, from_socket: int) -> MemoryDevice:
        """The memory device of ``socket_id`` as seen by ``from_socket``."""
        for socket in self.sockets:
            if socket.socket_id == socket_id:
                if not socket.devices:
                    raise ConfigurationError(
                        f"socket {socket_id} has no memory device"
                    )
                device = socket.devices[0]
                if socket_id == from_socket:
                    return device
                return remote_dram(device)
        raise ConfigurationError(f"unknown socket id {socket_id}")
