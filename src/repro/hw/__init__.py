"""Hardware substrate: memory devices, throttling, LLC, TLB, timing.

These modules stand in for the physical platform of the paper (a dual-socket
Xeon with one thermally-throttled socket emulating SlowMem, plus Intel's NVM
emulator).  Everything is an analytic model that exposes exactly the signals
the OS/VMM policies consume: per-epoch LLC misses, per-device stall time,
page-table scan and TLB flush costs.
"""

from repro.hw.memdevice import (
    DRAM,
    MemoryDevice,
    MemoryKind,
    NVM_PCM,
    STACKED_3D,
    TABLE1_DEVICES,
)
from repro.hw.throttle import TABLE3_PRESETS, ThrottleConfig, throttled_device
from repro.hw.cache import CacheConfig, LastLevelCache, RegionAccess, RegionMisses
from repro.hw.tlb import Tlb, TlbConfig
from repro.hw.timing import CpuConfig, MemoryTimingModel
from repro.hw.counters import PerfCounters
from repro.hw.endurance import WearTracker, estimated_lifetime_years
from repro.hw.topology import NumaTopology, Socket, remote_dram

__all__ = [
    "MemoryDevice",
    "MemoryKind",
    "DRAM",
    "STACKED_3D",
    "NVM_PCM",
    "TABLE1_DEVICES",
    "ThrottleConfig",
    "TABLE3_PRESETS",
    "throttled_device",
    "CacheConfig",
    "LastLevelCache",
    "RegionAccess",
    "RegionMisses",
    "Tlb",
    "TlbConfig",
    "CpuConfig",
    "MemoryTimingModel",
    "PerfCounters",
    "WearTracker",
    "estimated_lifetime_years",
    "NumaTopology",
    "Socket",
    "remote_dram",
]
