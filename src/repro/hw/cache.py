"""Analytic last-level cache model.

A cycle-accurate cache is neither feasible nor needed here (the paper
itself argues cycle-accurate simulation is impractical for these
workloads, Section 2.1).  The policies and the timing model only consume
*per-epoch miss counts*, so the LLC is modelled analytically:

* Each epoch the engine presents a set of :class:`RegionAccess` records —
  one per live workload region — with the region's footprint, access
  counts, and a ``reuse`` parameter in ``[0, 1]`` describing how cache
  friendly its access pattern is (1.0 = perfect temporal locality,
  0.0 = pure streaming).
* The cache ranks regions by access density (accesses per byte) and
  assigns its capacity greedily — a standard working-set approximation of
  LRU behaviour over epoch timescales.
* A region's hit rate is ``reuse * cached_fraction``; everything else
  misses and generates memory traffic.

This preserves the two signals the paper's mechanisms depend on: MPKI per
application (Table 4) and the epoch-to-epoch LLC-miss deltas that drive
the adaptive tracking interval (Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE, MIB


@dataclass(frozen=True)
class CacheConfig:
    """LLC geometry.

    The paper uses two platforms: a 16 MB LLC Xeon X5560 (Figure 1) and a
    48 MB LLC Xeon E5-4620 v2 — Intel's NVM emulator (Figure 2).
    """

    capacity_bytes: int = 16 * MIB
    line_size: int = CACHE_LINE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.line_size <= 0:
            raise ConfigurationError("cache line size must be positive")


@dataclass(frozen=True)
class RegionAccess:
    """One region's demand on the cache for one epoch."""

    region_id: str
    footprint_bytes: int
    reads: float
    writes: float
    #: Temporal locality knob in [0, 1]; the fraction of accesses that hit
    #: *given* the region's data is resident in the LLC.
    reuse: float
    #: Bytes moved from memory per miss (>= one line).  Batched/streaming
    #: access patterns move more than a line per demand miss (prefetch),
    #: which is how graph engines saturate bandwidth (Observation 1).
    bytes_per_miss: float = CACHE_LINE

    def __post_init__(self) -> None:
        if not 0.0 <= self.reuse <= 1.0:
            raise ConfigurationError(
                f"region {self.region_id!r}: reuse must be in [0,1]"
            )
        if self.footprint_bytes < 0 or self.reads < 0 or self.writes < 0:
            raise ConfigurationError(
                f"region {self.region_id!r}: negative footprint or counts"
            )

    @property
    def accesses(self) -> float:
        return self.reads + self.writes


@dataclass(frozen=True)
class RegionMisses:
    """Cache model output for one region in one epoch."""

    region_id: str
    read_misses: float
    write_misses: float
    cached_fraction: float
    bytes_per_miss: float

    @property
    def misses(self) -> float:
        return self.read_misses + self.write_misses

    @property
    def traffic_bytes(self) -> float:
        """Memory traffic caused by this region's misses (incl. writebacks:
        a dirty-line writeback accompanies write misses line-for-line)."""
        return (
            self.read_misses * self.bytes_per_miss
            + self.write_misses * self.bytes_per_miss * 2.0
        )


class LastLevelCache:
    """Working-set LLC approximation; see module docstring."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()

    def apportion(self, regions: list[RegionAccess]) -> list[RegionMisses]:
        """Split cache capacity across ``regions`` and compute misses.

        Regions are ranked by access density; the densest regions get
        capacity first.  Result order matches input order.
        """
        remaining = float(self.config.capacity_bytes)
        cached_frac: dict[str, float] = {}
        ranked = sorted(
            (r for r in regions if r.accesses > 0),
            key=lambda r: (
                r.accesses / r.footprint_bytes if r.footprint_bytes else float("inf")
            ),
            reverse=True,
        )
        for region in ranked:
            if region.footprint_bytes == 0:
                cached_frac[region.region_id] = 1.0
                continue
            take = min(remaining, float(region.footprint_bytes))
            cached_frac[region.region_id] = take / region.footprint_bytes
            remaining -= take

        results: list[RegionMisses] = []
        for region in regions:
            frac = cached_frac.get(region.region_id, 0.0)
            hit_rate = region.reuse * frac
            results.append(
                RegionMisses(
                    region_id=region.region_id,
                    read_misses=region.reads * (1.0 - hit_rate),
                    write_misses=region.writes * (1.0 - hit_rate),
                    cached_fraction=frac,
                    bytes_per_miss=region.bytes_per_miss,
                )
            )
        return results

    def mpki(self, misses: float, instructions: float) -> float:
        """Misses per kilo-instruction (Table 4's metric)."""
        if instructions <= 0:
            return 0.0
        return misses / (instructions / 1000.0)
