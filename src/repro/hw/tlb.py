"""TLB model with flush cost accounting.

Software hotness tracking requires periodic TLB flushes so the hardware
re-walks the page table and sets access bits (Observation 4: "the hardware
TLB entries should be periodically flushed even for tracking").  Page
migration likewise requires shootdowns.  The simulator does not model
individual TLB entries' hit/miss behaviour — address translation cost is
folded into the CPU IPC — but it *does* charge every flush and shootdown,
because those costs are a core part of the paper's argument against
VMM-exclusive tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import NS_PER_US, Ns


@dataclass(frozen=True)
class TlbConfig:
    """Flush/shootdown cost constants.

    Defaults are in line with measured x86 costs: a full flush costs a few
    microseconds of refill misses amortised; an IPI shootdown across a
    16-core socket costs several microseconds.
    """

    full_flush_ns: float = 4.0 * NS_PER_US
    shootdown_ns: float = 8.0 * NS_PER_US
    entries: int = 1536

    def __post_init__(self) -> None:
        if self.full_flush_ns < 0 or self.shootdown_ns < 0:
            raise ConfigurationError("TLB costs must be non-negative")
        if self.entries <= 0:
            raise ConfigurationError("TLB must have at least one entry")


@dataclass(frozen=True)
class TlbSnapshot:
    """Cumulative flush/shootdown counts at a point in time."""

    flushes: int
    shootdowns: int

    def delta(self, since: "TlbSnapshot") -> "TlbSnapshot":
        """Per-interval counts between ``since`` and this snapshot."""
        return TlbSnapshot(
            flushes=self.flushes - since.flushes,
            shootdowns=self.shootdowns - since.shootdowns,
        )


@dataclass
class Tlb:
    """Cost meter for TLB flushes and shootdowns."""

    config: TlbConfig = field(default_factory=TlbConfig)
    flushes: int = 0
    shootdowns: int = 0

    def flush(self) -> Ns:
        """Full flush (used by hotness-tracking scans).  Returns cost (ns)."""
        self.flushes += 1
        return self.config.full_flush_ns

    def shootdown(self) -> Ns:
        """Cross-core shootdown (used by migrations).  Returns cost (ns)."""
        self.shootdowns += 1
        return self.config.shootdown_ns

    def snapshot(self) -> TlbSnapshot:
        """Cumulative counts; diff snapshots for per-epoch deltas."""
        return TlbSnapshot(flushes=self.flushes, shootdowns=self.shootdowns)

    def reset(self) -> None:
        self.flushes = 0
        self.shootdowns = 0

    @property
    def total_cost_ns(self) -> Ns:
        return (
            self.flushes * self.config.full_flush_ns
            + self.shootdowns * self.config.shootdown_ns
        )
