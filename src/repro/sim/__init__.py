"""Simulation engines: single-VM epoch loop, multi-VM sharing, runner
API, and the parallel/cached experiment execution layer."""

from repro.sim.stats import RunResult, RunStats, gain_percent, slowdown_factor
from repro.sim.engine import SimulationEngine, build_custom_vm, build_single_vm
from repro.sim.runner import run_experiment
from repro.sim.multi_vm import MultiVmSimulation, VmSpec
from repro.sim.parallel import (
    ExperimentSpec,
    ResultCache,
    SpecFailure,
    SpecOutcome,
    make_spec,
    results_or_raise,
    run_cached,
    run_spec,
    run_specs,
    source_fingerprint,
)
from repro.sim.trace import (
    TraceWorkload,
    load_trace,
    record_trace,
    save_trace,
)

__all__ = [
    "RunStats",
    "RunResult",
    "gain_percent",
    "slowdown_factor",
    "SimulationEngine",
    "build_single_vm",
    "build_custom_vm",
    "run_experiment",
    "ExperimentSpec",
    "ResultCache",
    "SpecFailure",
    "SpecOutcome",
    "make_spec",
    "results_or_raise",
    "run_cached",
    "run_spec",
    "run_specs",
    "source_fingerprint",
    "MultiVmSimulation",
    "VmSpec",
    "TraceWorkload",
    "record_trace",
    "save_trace",
    "load_trace",
]
