"""Parallel, cached experiment execution.

Every figure/table driver runs a (workload x policy x platform) grid,
and many grid points recur across drivers — ``fastmem-only`` at the
default platform alone is re-simulated by Table 4, Figure 1, and
Figure 3.  This module makes the grid the unit of work:

* :class:`ExperimentSpec` — a frozen, hashable description of one run
  (everything :func:`repro.sim.runner.run_experiment` needs).  Its
  :meth:`~ExperimentSpec.cache_key` is a SHA-256 over the spec's
  canonical JSON plus a fingerprint of the simulator source tree, so a
  cached result can never outlive the code that produced it (the same
  invalidation approach as ``repro.devtools.flow.cache``).
* :class:`ResultCache` — an on-disk memo of pickled
  :class:`~repro.sim.stats.RunResult` payloads, one file per cache key.
  Corrupt or stale entries degrade to misses, never errors.
* :func:`run_specs` — fans specs out across worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked
  scheduling and a per-spec timeout enforced *inside* the worker
  (``SIGALRM``), falling back to in-process serial execution when
  ``max_workers=1`` or the platform cannot fork.  Worker crashes and
  timeouts surface as structured :class:`SpecFailure`\\ s on the
  returned :class:`SpecOutcome`\\ s — a sweep never hangs and never
  loses the rest of the grid.
* :func:`run_cached` — the in-process memoized entry point the
  experiment drivers share, layered over the same spec/cache machinery
  (set ``REPRO_SWEEP_CACHE_DIR`` to persist across processes).

Determinism contract: the engine derives all randomness from
``SimConfig.seed``, so one spec produces a bit-identical
:class:`RunResult` whether it ran serially, in a worker process, or
came back from the cache.  ``tests/test_parallel_runner.py`` asserts
that equivalence field-by-field for every registered policy.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Optional, Sequence

try:  # advisory file locking (POSIX); absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - exercised via monkeypatch
    fcntl = None  # type: ignore[assignment]

from repro.core.policy import make_policy
from repro.errors import ReproError, SweepError
from repro.faults import FaultPlan
from repro.hw.throttle import ThrottleConfig
from repro.hw.topology import remote_dram
from repro.obs.bus import Telemetry
from repro.obs.flight import SweepRecorder
from repro.obs.sample import EpochSample
from repro.obs.sinks import json_line
from repro.sim.runner import build_config, run_experiment
from repro.sim.stats import RunResult
from repro.vmm.hotness import HotnessConfig

__all__ = [
    "ExperimentSpec",
    "ResultCache",
    "SpecFailure",
    "SpecOutcome",
    "SweepJournal",
    "clear_memo",
    "default_cache",
    "make_spec",
    "results_or_raise",
    "run_cached",
    "run_spec",
    "run_specs",
    "source_fingerprint",
    "spec_from_canonical",
]

#: Environment variable naming a shared on-disk result-cache directory
#: (used by CI and the benchmark harness; absent means no disk cache).
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Functions executed inside forked sweep workers.  The heteroeffect
#: race rules (``repro lint --effects``) read this marker statically
#: and treat everything call-reachable from these as shared with the
#: parent process: module-global writes there are races, module-global
#: OS handles are fork-unsafe.  Keep it in sync with run_specs().
WORKER_ENTRY_POINTS = ("_run_chunk", "_run_one", "run_spec")

#: heterocontract anchor (``contract-spec-field``): run inputs that are
#: deliberately NOT part of the cache key, with the reason a reviewer
#: should see.  Every non-spec ``run_spec`` parameter must appear here,
#: and every entry must still name such a parameter (stale entries are
#: findings too).
CACHE_KEY_EXCLUDED = {
    "telemetry": (
        "observation never affects results (the PR 4 no-perturbation "
        "contract), so it must not perturb cache keys either"
    ),
    "fast_path": (
        "the array-backed fast path is bit-identical to the reference "
        "path by the differential oracle (tests/test_fast_equivalence), "
        "so either path may serve a cached result for the same spec"
    ),
}

#: Named SlowMem device presets a spec may reference (device objects
#: themselves are not part of a spec so that specs stay hashable and
#: their canonical form stays JSON-serializable).
_DEVICE_PRESETS: "dict[str, Callable[[], object]]" = {
    "remote-dram": remote_dram,
}


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One hashable grid point: everything needed to reproduce a run.

    ``throttle`` is a plain ``(latency_factor, bandwidth_factor)`` tuple
    (``None`` means the platform default), ``slow_device`` names a
    preset from :data:`_DEVICE_PRESETS`, ``policy_args`` are extra
    keyword arguments for :func:`~repro.core.policy.make_policy`, and
    ``hotness`` holds :class:`~repro.vmm.hotness.HotnessConfig` fields —
    all as sorted tuples so the spec hashes and serializes canonically.
    Build instances through :func:`make_spec`, which normalizes richer
    argument types down to this form.
    """

    app: str
    policy: str
    fast_ratio: float = 0.25
    epochs: "int | None" = None
    slow_gib: float = 8.0
    throttle: "tuple[float, float] | None" = None
    llc_mib: int = 16
    seed: int = 7
    slow_device: "str | None" = None
    policy_args: "tuple[tuple[str, object], ...]" = ()
    hotness: "tuple[tuple[str, object], ...] | None" = None
    #: Deterministic fault schedule; ``None`` (or, via :func:`make_spec`
    #: normalization, an empty plan) means the fault-free seed path.
    faults: "FaultPlan | None" = None

    def canonical(self) -> dict:
        """A JSON-safe ordered mapping; the hashing input."""
        return {
            "app": self.app,
            "policy": self.policy,
            "fast_ratio": self.fast_ratio,
            "epochs": self.epochs,
            "slow_gib": self.slow_gib,
            "throttle": list(self.throttle) if self.throttle else None,
            "llc_mib": self.llc_mib,
            "seed": self.seed,
            "slow_device": self.slow_device,
            "policy_args": [list(item) for item in self.policy_args],
            "hotness": (
                [list(item) for item in self.hotness]
                if self.hotness is not None
                else None
            ),
            "faults": (
                self.faults.canonical() if self.faults is not None else None
            ),
        }

    def cache_key(self, fingerprint: str) -> str:
        """SHA-256 over the canonical spec + simulator source tree."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256()
        digest.update(payload.encode("utf-8"))
        digest.update(fingerprint.encode("utf-8"))
        return digest.hexdigest()

    @property
    def label(self) -> str:
        """Compact one-line description for progress output."""
        parts = [f"{self.app}/{self.policy}", f"r={self.fast_ratio:g}"]
        if self.throttle is not None:
            parts.append(ThrottleConfig(*self.throttle).label)
        if self.llc_mib != 16:
            parts.append(f"llc={self.llc_mib}M")
        if self.slow_device is not None:
            parts.append(self.slow_device)
        if self.epochs is not None:
            parts.append(f"e={self.epochs}")
        if self.faults is not None:
            parts.append(f"faults={len(self.faults.faults)}")
        return " ".join(parts)


def _normalize_mapping(
    value: "Mapping | Sequence | None",
) -> "tuple[tuple[str, object], ...]":
    if not value:
        return ()
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(key), val) for key, val in items))


def make_spec(
    app: str,
    policy: str,
    fast_ratio: float = 0.25,
    epochs: "int | None" = None,
    slow_gib: float = 8.0,
    throttle: "tuple[float, float] | ThrottleConfig | None" = None,
    llc_mib: int = 16,
    seed: int = 7,
    slow_device: "str | None" = None,
    policy_args: "Mapping | None" = None,
    hotness: "HotnessConfig | Mapping | None" = None,
    faults: "FaultPlan | Mapping | None" = None,
) -> ExperimentSpec:
    """Build a canonical :class:`ExperimentSpec` from rich argument types."""
    if isinstance(throttle, ThrottleConfig):
        throttle = (throttle.latency_factor, throttle.bandwidth_factor)
    elif throttle is not None:
        throttle = (float(throttle[0]), float(throttle[1]))
    if isinstance(hotness, HotnessConfig):
        hotness = dataclasses.asdict(hotness)
    if isinstance(faults, Mapping):
        faults = FaultPlan.from_dict(dict(faults))
    if faults is not None and faults.empty:
        # No-perturbation contract: an empty plan IS no plan, down to
        # the cache key.
        faults = None
    if slow_device is not None and slow_device not in _DEVICE_PRESETS:
        raise SweepError(
            f"unknown slow-device preset {slow_device!r}; "
            f"available: {sorted(_DEVICE_PRESETS)}"
        )
    return ExperimentSpec(
        app=app,
        policy=policy,
        fast_ratio=float(fast_ratio),
        epochs=epochs,
        slow_gib=float(slow_gib),
        throttle=throttle,
        llc_mib=int(llc_mib),
        seed=int(seed),
        slow_device=slow_device,
        policy_args=_normalize_mapping(policy_args),
        hotness=(
            _normalize_mapping(hotness) if hotness is not None else None
        ),
        faults=faults,
    )


def spec_from_canonical(data: Mapping) -> ExperimentSpec:
    """Rebuild a spec from its :meth:`~ExperimentSpec.canonical` form.

    The inverse of ``canonical()`` for JSON-safe specs: round-tripping
    through ``json.dumps``/``loads`` (e.g. across the ``repro serve``
    wire) reconstructs an equal spec with an identical cache key — the
    property behind idempotent job resubmission.  Values inside
    ``policy_args``/``hotness`` must be JSON scalars (they are for every
    spec :func:`make_spec` normalizes from driver inputs).
    """
    if not isinstance(data, Mapping):
        raise SweepError(
            f"canonical spec must be a mapping, got {type(data).__name__}"
        )
    try:
        app = data["app"]
        policy = data["policy"]
    except KeyError as exc:
        raise SweepError(f"canonical spec missing field {exc}") from None
    throttle = data.get("throttle")
    policy_args = data.get("policy_args") or ()
    hotness = data.get("hotness")
    try:
        return make_spec(
            str(app),
            str(policy),
            fast_ratio=data.get("fast_ratio", 0.25),
            epochs=data.get("epochs"),
            slow_gib=data.get("slow_gib", 8.0),
            throttle=tuple(throttle) if throttle is not None else None,
            llc_mib=data.get("llc_mib", 16),
            seed=data.get("seed", 7),
            slow_device=data.get("slow_device"),
            policy_args=[(str(k), v) for k, v in policy_args],
            hotness=(
                [(str(k), v) for k, v in hotness]
                if hotness is not None
                else None
            ),
            faults=data.get("faults"),
        )
    except (TypeError, ValueError) as exc:
        raise SweepError(f"malformed canonical spec: {exc}") from exc


# ----------------------------------------------------------------------
# Advisory file locking (daemon + CLI sharing one cache directory)
# ----------------------------------------------------------------------

#: Warn-once state for lock degradation paths (parent-process only;
#: never touched on the worker entry-point paths).
_LOCK_WARNINGS = {"unavailable": False, "contention": False}


class _FileLock:
    """Advisory ``flock`` over ``<target>.lock``; degrades, never raises.

    A ``repro serve`` daemon and a concurrent ``repro sweep`` pointed at
    the same cache directory both append to the sweep journal; an
    advisory lock keeps their lines from interleaving mid-write.  The
    degradation ladder is: uncontended lock (fast path) → contended
    lock blocks until the other writer finishes (the warn-once *serial*
    path) → platform without ``fcntl`` or an unwritable lock file
    proceeds unlocked with a warning (exactly the pre-lock behaviour).
    """

    def __init__(self, target: "str | Path") -> None:
        target = Path(target)
        self.path = target.with_name(target.name + ".lock")
        self._handle = None

    def __enter__(self) -> "_FileLock":
        if fcntl is None:
            self._warn_once(
                "unavailable",
                "advisory file locking is unavailable on this platform "
                "(no fcntl); concurrent writers may interleave",
            )
            return self
        try:
            self._handle = open(self.path, "ab")
        except OSError:
            # The directory itself is unwritable; the write that follows
            # will degrade through its own warn-once path.
            return self
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            # Contention: another process holds the lock.  Block until
            # it finishes — writers serialize instead of corrupting.
            self._warn_once(
                "contention",
                f"lock {self.path} is contended (another sweep or a "
                "serve daemon is writing); serializing writers",
            )
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                self._close()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None and fcntl is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
        self._close()

    def _close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    @staticmethod
    def _warn_once(key: str, message: str) -> None:
        if _LOCK_WARNINGS.get(key):
            return
        _LOCK_WARNINGS[key] = True
        warnings.warn(message, RuntimeWarning, stacklevel=4)


def run_spec(
    spec: ExperimentSpec,
    telemetry: "Telemetry | None" = None,
    fast_path: "bool | None" = None,
) -> RunResult:
    """Execute one spec; the single simulation path every mode shares.

    ``telemetry`` is deliberately *not* part of the spec: observation
    never affects results, so it must not perturb cache keys either.
    ``fast_path`` picks the array-backed hot path (``None`` defers to
    ``REPRO_FAST``); it is equally excluded because the two paths are
    pinned bit-identical by the differential oracle.
    """
    policy = make_policy(spec.policy, **dict(spec.policy_args))
    device = None
    if spec.slow_device is not None:
        try:
            factory = _DEVICE_PRESETS[spec.slow_device]
        except KeyError:
            raise SweepError(
                f"unknown slow-device preset {spec.slow_device!r}"
            ) from None
        device = factory()
    config = build_config(
        fast_ratio=spec.fast_ratio,
        slow_gib=spec.slow_gib,
        throttle=spec.throttle,
        llc_mib=spec.llc_mib,
        slow_device=device,
        unlimited_fast=policy.requires_unlimited_fast,
        seed=spec.seed,
    )
    if spec.hotness is not None:
        config.hotness_config = HotnessConfig(**dict(spec.hotness))
    if spec.faults is not None:
        config.fault_plan = spec.faults
    config.fast_path = fast_path
    return run_experiment(
        spec.app,
        policy,
        epochs=spec.epochs,
        config=config,
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Source fingerprint
# ----------------------------------------------------------------------

_FINGERPRINTS: "dict[str, str]" = {}


def source_fingerprint(root: "str | Path | None" = None) -> str:
    """SHA-256 over every ``*.py`` under the simulator package.

    The digest covers relative path and content of each file, so any
    source change — a new policy, a timing-model tweak — invalidates
    every cached result.  Memoized per root for the process lifetime
    (the source tree does not change under a running sweep).
    """
    base = Path(root) if root is not None else Path(__file__).parent.parent
    cache_token = str(base.resolve())
    memoized = _FINGERPRINTS.get(cache_token)
    if memoized is not None:
        return memoized
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(str(path.relative_to(base)).encode("utf-8"))
        digest.update(b"\x00")
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[cache_token] = fingerprint
    return fingerprint


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------


class ResultCache:
    """One pickled ``RunResult`` per cache key, under one directory.

    Robustness contract: a corrupt, truncated, version-skewed, or
    colliding entry is a *miss* (and is deleted best-effort), never an
    error — a poisoned cache directory can slow a sweep down but cannot
    change its results.  Writes are atomic (temp file + ``os.replace``)
    so parallel sweeps sharing a directory never read half a pickle.

    Timelines ride along as *sidecars*: the pickled payload always
    stores the result with ``timeline=None`` (keeping the determinism
    surface and the entry format stable), and a captured timeline is
    written next to it as ``<key>.timeline.jsonl``.  A lookup that
    requires the timeline (``with_timeline=True``) treats a missing or
    corrupt sidecar as a miss so the run re-executes and re-records it.
    """

    FORMAT_VERSION = 1

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        #: Invalid entries deleted during lookups (version skew, key
        #: collisions, spec mismatches) — flight-recorder fodder.
        self.evictions = 0
        #: Failed store attempts (read-only/full cache directory).
        self.store_failures = 0
        self._store_warned = False

    def writable(self) -> bool:
        """Probe whether the cache directory accepts writes.

        Creates the directory if needed and round-trips a probe file;
        a read-only or full filesystem answers ``False`` (and the sweep
        degrades to uncached execution) instead of raising later."""
        probe = self.directory / f".probe-{os.getpid()}"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(probe, "wb") as handle:
                handle.write(b"repro-cache-probe")
            return True
        except OSError:
            return False
        finally:
            self._evict(probe)

    def _note_store_failure(self, exc: Exception) -> None:
        """Warn (once per cache instance) that results are not persisting."""
        if self._store_warned:
            return
        self._store_warned = True
        warnings.warn(
            f"result cache at {self.directory} is not writable ({exc}); "
            "continuing without persisting results",
            RuntimeWarning,
            stacklevel=3,
        )

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pickle"

    def timeline_path_for(self, key: str) -> Path:
        """The JSONL timeline sidecar accompanying one cache entry."""
        return self.directory / f"{key}.timeline.jsonl"

    def lookup(
        self,
        spec: ExperimentSpec,
        fingerprint: str,
        with_timeline: bool = False,
    ) -> "RunResult | None":
        key = spec.cache_key(fingerprint)
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.FORMAT_VERSION
            or payload.get("spec") != spec.canonical()
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.misses += 1
            self.evictions += 1
            self._evict(path)
            return None
        result = payload["result"]
        if with_timeline:
            timeline = self._load_timeline(key)
            if timeline is None:
                # Entry predates timeline capture (or sidecar rotted):
                # re-run to record one; the re-store refreshes both files.
                self.misses += 1
                return None
            result = dataclasses.replace(result, timeline=timeline)
        self.hits += 1
        return result

    def store(
        self, spec: ExperimentSpec, fingerprint: str, result: RunResult
    ) -> None:
        """Best-effort atomic write; cache I/O failure is not an error."""
        key = spec.cache_key(fingerprint)
        path = self.path_for(key)
        timeline = result.timeline
        payload = {
            "version": self.FORMAT_VERSION,
            "spec": spec.canonical(),
            "result": (
                dataclasses.replace(result, timeline=None)
                if timeline is not None
                else result
            ),
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Advisory lock: a serve daemon and a concurrent sweep on
            # the same cache directory serialize their writes to one
            # key instead of racing replace + sidecar pairs.
            with _FileLock(self.directory / ".cache"):
                with open(tmp, "wb") as handle:
                    pickle.dump(
                        payload, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp, path)
                if timeline is not None:
                    self._store_timeline(key, timeline)
        except (OSError, pickle.PicklingError) as exc:
            # Cache-miss-and-warn degradation: a read-only or full cache
            # directory slows the next sweep down but never fails this
            # one.  Clean up the half-written temp file best-effort.
            self.store_failures += 1
            self._evict(tmp)
            self._note_store_failure(exc)

    def _store_timeline(
        self, key: str, timeline: "list[EpochSample]"
    ) -> None:
        sidecar = self.timeline_path_for(key)
        tmp = sidecar.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for sample in timeline:
                    handle.write(json_line(sample.to_dict()) + "\n")
            os.replace(tmp, sidecar)
        except (OSError, TypeError, ValueError):
            pass

    def _load_timeline(self, key: str) -> "list[EpochSample] | None":
        """Sidecar samples, or ``None`` when absent/corrupt (→ miss)."""
        sidecar = self.timeline_path_for(key)
        try:
            with open(sidecar, "r", encoding="utf-8") as handle:
                return [
                    EpochSample.from_dict(json.loads(line))
                    for line in handle
                    if line.strip()
                ]
        except (OSError, ValueError, TypeError, ReproError):
            return None

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def _resolve_cache(
    cache: "ResultCache | str | Path | None",
) -> "ResultCache | None":
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def default_cache() -> "ResultCache | None":
    """The ``REPRO_SWEEP_CACHE_DIR`` cache, or ``None`` when unset."""
    directory = os.environ.get(CACHE_DIR_ENV)
    if not directory:
        return None
    return ResultCache(directory)


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------


#: Failure kinds worth retrying: host-side transients, not simulator
#: determinism (an ``"error"`` reproduces identically on every retry).
TRANSIENT_FAILURE_KINDS = frozenset({"timeout", "worker-crash"})


@dataclass(frozen=True)
class SpecFailure:
    """A structured per-spec failure (never a raised exception).

    ``kind`` is one of ``"timeout"`` (the per-spec budget elapsed),
    ``"worker-crash"`` (the worker process died — its whole chunk is
    marked, so innocent chunk-mates may carry this too), or ``"error"``
    (the simulation raised; ``message`` holds the exception text).
    When the raised exception was a :class:`~repro.errors.ReproError`
    subclass, ``error_type`` preserves its class name across the worker
    boundary instead of collapsing the type into the message string.
    """

    kind: str
    message: str
    error_type: "str | None" = None

    @property
    def transient(self) -> bool:
        """Whether a retry could plausibly change the outcome."""
        return self.kind in TRANSIENT_FAILURE_KINDS

    def exception_class(self) -> "type[ReproError] | None":
        """The structured :class:`ReproError` subclass, when one raised."""
        if self.error_type is None:
            return None
        import repro.errors as errors_module

        candidate = getattr(errors_module, self.error_type, None)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            return candidate
        return None


@dataclass
class SpecOutcome:
    """What happened to one grid point.

    Exactly one of ``result``/``error`` is set.  ``source`` records how
    the result was obtained: ``"cache"``, ``"serial"``, or
    ``"parallel"``.  ``elapsed_sec`` is host wall-clock execution time
    (zero for cache hits) — harness telemetry, never simulator time.
    """

    spec: ExperimentSpec
    result: "RunResult | None" = None
    error: "SpecFailure | None" = None
    source: str = "serial"
    elapsed_sec: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


def results_or_raise(outcomes: "Sequence[SpecOutcome]") -> "list[RunResult]":
    """Unwrap outcomes, raising :class:`SweepError` on any failure."""
    failures = [o for o in outcomes if not o.ok]
    if failures:
        lines = ", ".join(
            f"{o.spec.label}: [{o.error.kind}] {o.error.message}"
            for o in failures[:5]
        )
        raise SweepError(
            f"{len(failures)} of {len(outcomes)} grid points failed: {lines}"
        )
    return [o.result for o in outcomes]  # type: ignore[misc]


# ----------------------------------------------------------------------
# Sweep journal (kill-and-resume checkpointing)
# ----------------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL checkpoint of per-spec sweep progress.

    Every executed spec appends one line keyed by its cache key (spec
    canonical JSON + source fingerprint — so a source change silently
    invalidates old entries, exactly like the result cache).  After a
    kill, ``repro sweep --resume`` reloads the journal: completed specs
    come back from the result cache, journaled *deterministic* failures
    are reused without re-running (re-simulating them would reproduce
    the same error), and transient failures (timeouts, worker crashes)
    re-run.  Corrupt lines — a kill mid-append — are skipped; the last
    entry per key wins.  All journal I/O is best-effort: a broken
    journal degrades to a journal-less sweep, never an error.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        #: Corrupt lines dropped by the most recent :meth:`load` — a
        #: torn write from a kill is expected (count 1); more than that
        #: suggests real file damage, so the count is surfaced as a
        #: warning and a flight-recorder metric instead of vanishing.
        self.corrupt_lines_skipped = 0

    def load(self) -> "dict[str, dict]":
        """Entries by cache key; empty when absent or unreadable."""
        entries: "dict[str, dict]" = {}
        corrupt = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        corrupt += 1  # torn write from a kill mid-append
                        continue
                    if isinstance(entry, dict) and isinstance(
                        entry.get("key"), str
                    ):
                        entries[entry["key"]] = entry
        except OSError:
            pass
        self.corrupt_lines_skipped = corrupt
        if corrupt:
            warnings.warn(
                f"sweep journal {self.path}: skipped {corrupt} corrupt "
                "line(s) (torn writes from a kill mid-append); the "
                "affected specs will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
        return entries

    def record(
        self, spec: ExperimentSpec, fingerprint: str, outcome: SpecOutcome
    ) -> None:
        """Append one spec's outcome; flushed so a kill loses at most
        the line being written."""
        entry: dict = {
            "key": spec.cache_key(fingerprint),
            "label": spec.label,
            "status": "ok" if outcome.ok else "failed",
            # Harness telemetry for post-hoc `repro report`; resume
            # logic never reads these two fields.
            "source": outcome.source,
            "elapsed_sec": outcome.elapsed_sec,
        }
        if outcome.error is not None:
            entry["kind"] = outcome.error.kind
            entry["message"] = outcome.error.message
            if outcome.error.error_type is not None:
                entry["error_type"] = outcome.error.error_type
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Advisory lock so a daemon and a concurrent `repro sweep`
            # appending to the same journal cannot interleave lines.
            with _FileLock(self.path):
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(
                            entry, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            pass

    def reset(self) -> None:
        """Start a fresh sweep: drop any previous checkpoint."""
        try:
            self.path.unlink()
        except OSError:
            pass


def _resolve_journal(
    journal: "SweepJournal | str | Path | None",
) -> "SweepJournal | None":
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(journal)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _wall_sec() -> float:
    """Host wall-clock seconds for per-spec harness timing.

    This measures how long the *host* took to simulate, for progress
    output and the perf benchmarks; it never feeds virtual time.
    """
    import time

    # heterolint: disable-next-line=unseeded-random — harness telemetry
    return time.perf_counter()


class _SpecTimeout(ReproError):
    """Internal: raised by the SIGALRM handler inside a worker."""


def _timeout_supported() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _run_one(
    spec: ExperimentSpec,
    timeout_sec: "float | None",
    capture_timeline: bool = False,
) -> "tuple[str, object, float]":
    """Run one spec under an optional SIGALRM budget.

    Returns ``(status, payload, elapsed_sec)`` where status is ``"ok"``
    (payload: RunResult), ``"timeout"``, or ``"error"`` (payload: str).
    When ``capture_timeline`` is set the run carries a fresh in-memory
    telemetry bus and the returned result has ``.timeline`` populated
    (``EpochSample`` is a plain dataclass, so timelines pickle cleanly
    across the worker boundary).
    """
    start = _wall_sec()
    use_alarm = timeout_sec is not None and _timeout_supported()
    if timeout_sec is not None and not use_alarm:
        # Graceful fallback: a worker on a non-main thread (the serve
        # supervisor's serial path) or a platform without SIGALRM runs
        # without a timeout rather than crashing.  warnings' per-location
        # registry dedups this to once per process.
        warnings.warn(
            f"per-spec timeout ({timeout_sec:g}s) unavailable here "
            "(SIGALRM needs the main thread); running without a timeout",
            RuntimeWarning,
            stacklevel=2,
        )
    previous = None
    previous_timer = (0.0, 0.0)
    if use_alarm:
        def _on_alarm(signum, frame):
            raise _SpecTimeout(
                f"spec exceeded its {timeout_sec:g}s budget"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        previous_timer = signal.setitimer(signal.ITIMER_REAL, timeout_sec)
    try:
        telemetry = Telemetry() if capture_timeline else None
        result = run_spec(spec, telemetry=telemetry)
        return ("ok", result, _wall_sec() - start)
    except _SpecTimeout as exc:
        return ("timeout", str(exc), _wall_sec() - start)
    except ReproError as exc:
        # A structured simulator error keeps its subclass name so the
        # parent-side SpecFailure can rehydrate the type.
        message = f"{type(exc).__name__}: {exc}"
        return ("error", (type(exc).__name__, message), _wall_sec() - start)
    except Exception as exc:  # noqa: BLE001 — surfaced as SpecFailure
        message = f"{type(exc).__name__}: {exc}"
        return ("error", (None, message), _wall_sec() - start)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(
                signal.SIGALRM,
                previous if previous is not None else signal.SIG_DFL,
            )
            # A pre-existing alarm (an embedder's watchdog) is re-armed
            # with whatever budget it had left, floored at a tick so it
            # still fires even if our spec consumed the remainder.
            remaining, interval = previous_timer
            if remaining > 0.0:
                elapsed = _wall_sec() - start
                signal.setitimer(
                    signal.ITIMER_REAL,
                    max(remaining - elapsed, 1e-6),
                    interval,
                )


def _run_chunk(
    specs: "list[ExperimentSpec]",
    timeout_sec: "float | None",
    capture_timelines: bool = False,
) -> "list[tuple[str, object, float]]":
    """Worker entry point: run a chunk of specs sequentially."""
    return [
        _run_one(spec, timeout_sec, capture_timelines) for spec in specs
    ]


def _outcome_from_status(
    spec: ExperimentSpec,
    status: "tuple[str, object, float]",
    source: str,
) -> SpecOutcome:
    kind, payload, elapsed = status
    if kind == "ok":
        return SpecOutcome(
            spec=spec, result=payload, source=source, elapsed_sec=elapsed
        )
    error_type = None
    if isinstance(payload, tuple):
        error_type, message = payload
    else:
        message = str(payload)
    return SpecOutcome(
        spec=spec,
        error=SpecFailure(
            kind=kind, message=str(message), error_type=error_type
        ),
        source=source,
        elapsed_sec=elapsed,
    )


def _chunked(
    items: "list[ExperimentSpec]", chunk_size: int
) -> "list[list[ExperimentSpec]]":
    return [
        items[i:i + chunk_size] for i in range(0, len(items), chunk_size)
    ]


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


ProgressFn = Callable[[SpecOutcome, int, int], None]


def _sleep_backoff(base_sec: float, attempt: int) -> None:
    """Exponential backoff before retrying transient failures."""
    import time

    delay = base_sec * (2 ** (attempt - 1))
    if delay > 0:
        time.sleep(delay)


def _retry_jitter_fraction(
    specs: "Sequence[ExperimentSpec]", fingerprint: str, attempt: int
) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` for one retry round.

    Keyed off the retrying specs' cache keys (plus the attempt number),
    so a retried sweep reproduces its own backoff schedule bit-for-bit
    while distinct sweeps sharing a cache directory spread their retries
    instead of thundering-herding it.  No RNG: pure sha256.
    """
    digest = hashlib.sha256()
    for key in sorted(spec.cache_key(fingerprint) for spec in specs):
        digest.update(key.encode("ascii"))
    digest.update(str(attempt).encode("ascii"))
    return int.from_bytes(digest.digest()[:8], "big") / float(2 ** 64)


def run_specs(
    specs: "Iterable[ExperimentSpec]",
    max_workers: "int | None" = 1,
    cache: "ResultCache | str | Path | None" = None,
    timeout_sec: "float | None" = None,
    chunk_size: "int | None" = None,
    progress: "Optional[ProgressFn]" = None,
    fingerprint: "str | None" = None,
    capture_timelines: bool = False,
    retries: int = 0,
    retry_backoff_sec: float = 0.5,
    retry_jitter: float = 0.0,
    journal: "SweepJournal | str | Path | None" = None,
    recorder: "SweepRecorder | None" = None,
) -> "list[SpecOutcome]":
    """Execute a grid, returning one :class:`SpecOutcome` per input spec.

    Duplicate specs are simulated once and fanned back out.  Cache hits
    (when ``cache`` is given) skip simulation entirely.  ``max_workers``
    above 1 fans cache misses out over a forked process pool with
    chunked scheduling; ``max_workers=1``, ``max_workers=None`` on a
    single-core host, or a platform without ``fork`` all degrade to
    in-process serial execution of the same code path.  ``timeout_sec``
    bounds each spec's wall-clock budget (enforced in the executing
    process via ``SIGALRM`` where available).  ``progress`` is invoked
    as ``progress(outcome, done, total)`` after every grid point.

    Host-side resilience: an unwritable cache directory degrades the
    whole sweep to uncached serial execution (with a warning) instead
    of failing; transient failures — timeouts and worker crashes, never
    deterministic simulation errors — are retried up to ``retries``
    times with exponential backoff (``retry_backoff_sec`` doubling per
    round, stretched by up to ``retry_jitter`` as a fraction —
    deterministically seeded from the retrying specs' cache keys, so
    backoff stays reproducible while concurrent sweeps sharing a cache
    directory de-synchronize instead of thundering-herding it); and a
    ``journal`` checkpoints every executed spec so an interrupted sweep
    can resume, skipping completed work.

    ``capture_timelines`` attaches an in-memory telemetry bus to every
    simulated spec so each ``RunResult`` carries its per-epoch timeline.
    Telemetry never enters the cache key; timelines persist as JSONL
    sidecars next to the pickled entry, and a cached entry without a
    sidecar simply re-runs.

    ``recorder`` (a :class:`~repro.obs.flight.SweepRecorder`) receives
    host-side execution telemetry — cache traffic, journal reuse,
    per-spec wall-clock, retries, fault roll-ups.  Like ``telemetry``
    on :func:`run_spec`, it is observation only: it stays in the parent
    process, never enters cache keys, and a recorder-on sweep returns
    results field-by-field identical to a recorder-off sweep
    (``tests/test_sweep_recorder.py``).
    """
    ordered = list(specs)
    resolved_cache = _resolve_cache(cache)
    if resolved_cache is not None and not resolved_cache.writable():
        warnings.warn(
            f"sweep cache directory {resolved_cache.directory} is not "
            "writable; falling back to uncached serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        resolved_cache = None
        max_workers = 1
    resolved_journal = _resolve_journal(journal)
    if fingerprint is None and (
        resolved_cache is not None or resolved_journal is not None
    ):
        fingerprint = source_fingerprint()
    outcomes: "dict[int, SpecOutcome]" = {}
    done = 0

    def _record(index: int, outcome: SpecOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, len(ordered))

    # Dedup: first index of each distinct spec does the work.
    pending: "dict[ExperimentSpec, list[int]]" = {}
    for index, spec in enumerate(ordered):
        pending.setdefault(spec, []).append(index)

    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if recorder is not None:
        recorder.sweep_started(
            total=len(ordered),
            distinct=len(pending),
            max_workers=max_workers,
            cache=resolved_cache,
        )

    # Cache pass (in the parent: workers never touch the cache, so a
    # broken worker cannot corrupt it).
    misses: "list[ExperimentSpec]" = []
    for spec, indexes in pending.items():
        cached = (
            resolved_cache.lookup(
                spec, fingerprint, with_timeline=capture_timelines
            )
            if resolved_cache is not None
            else None
        )
        if cached is not None:
            if recorder is not None:
                recorder.cache_hit(spec.label)
                recorder.outcome(
                    spec.label,
                    "cache",
                    "ok",
                    0.0,
                    fault_counts=cached.fault_counts,
                    copies=len(indexes),
                )
            for index in indexes:
                _record(
                    index, SpecOutcome(spec=spec, result=cached, source="cache")
                )
        else:
            if recorder is not None and resolved_cache is not None:
                recorder.cache_miss(spec.label)
            misses.append(spec)

    # Journal pass: a resumed sweep reuses journaled *deterministic*
    # failures (re-simulating reproduces the same error); transient
    # failures and journaled successes whose cache entry is gone re-run.
    if resolved_journal is not None and misses:
        journaled = resolved_journal.load()
        if recorder is not None:
            recorder.journal_corrupt_lines(
                resolved_journal.corrupt_lines_skipped
            )
        remaining: "list[ExperimentSpec]" = []
        for spec in misses:
            entry = journaled.get(spec.cache_key(fingerprint or ""))
            if entry is not None and entry.get("kind") == "error":
                failure = SpecFailure(
                    kind="error",
                    message=str(entry.get("message", "")),
                    error_type=entry.get("error_type"),
                )
                if recorder is not None:
                    recorder.journal_reused(spec.label)
                    recorder.outcome(
                        spec.label,
                        "journal",
                        "failed",
                        0.0,
                        failure_kind="error",
                        copies=len(pending[spec]),
                    )
                for index in pending[spec]:
                    _record(
                        index,
                        SpecOutcome(spec=spec, error=failure, source="journal"),
                    )
            else:
                remaining.append(spec)
        misses = remaining

    def _finish(spec: ExperimentSpec, outcome: SpecOutcome) -> None:
        if outcome.ok and resolved_cache is not None:
            resolved_cache.store(spec, fingerprint, outcome.result)
        if resolved_journal is not None:
            resolved_journal.record(spec, fingerprint or "", outcome)
        if recorder is not None:
            recorder.outcome(
                spec.label,
                outcome.source,
                "ok" if outcome.ok else "failed",
                outcome.elapsed_sec,
                fault_counts=(
                    outcome.result.fault_counts if outcome.ok else None
                ),
                failure_kind=(
                    outcome.error.kind if outcome.error is not None else None
                ),
                copies=len(pending[spec]),
            )
        for index in pending[spec]:
            _record(index, outcome)

    OutcomeFn = Callable[[ExperimentSpec, SpecOutcome], None]

    def _run_serially(
        round_specs: "list[ExperimentSpec]", on_outcome: "OutcomeFn"
    ) -> None:
        for spec in round_specs:
            on_outcome(spec, _outcome_from_status(
                spec,
                _run_one(spec, timeout_sec, capture_timelines),
                "serial",
            ))

    def _execute_round(
        round_specs: "list[ExperimentSpec]", on_outcome: "OutcomeFn"
    ) -> None:
        """Run one batch of specs, parallel when possible."""
        # max_workers > 1 always means worker-process isolation (even
        # for a single miss): a crashing simulation must never take
        # down the caller's process.
        if not (max_workers > 1 and round_specs and _fork_available()):
            _run_serially(round_specs, on_outcome)
            return
        if chunk_size is None:
            # Aim for ~4 chunks per worker: coarse enough to amortize
            # task dispatch, fine enough to keep the pool busy.
            round_chunk = max(1, len(round_specs) // (max_workers * 4))
        else:
            round_chunk = chunk_size
        chunks = _chunked(round_specs, round_chunk)
        import multiprocessing

        context = multiprocessing.get_context("fork")
        try:
            executor = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            )
        except (OSError, NotImplementedError, ValueError):
            # Pool creation itself failed (resource limits, exotic
            # platform): graceful serial fallback, same execution path.
            _run_serially(round_specs, on_outcome)
            return

        try:
            futures = {
                executor.submit(
                    _run_chunk, chunk, timeout_sec, capture_timelines
                ): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    statuses = future.result()
                except BrokenProcessPool:
                    # The worker died mid-chunk (hard crash); every spec
                    # in the chunk is marked rather than re-run, because
                    # the crasher would take the parent down with it.
                    failure = SpecFailure(
                        kind="worker-crash",
                        message=(
                            "worker process died; chunk of "
                            f"{len(chunk)} spec(s) abandoned"
                        ),
                    )
                    for spec in chunk:
                        on_outcome(
                            spec,
                            SpecOutcome(
                                spec=spec, error=failure, source="parallel"
                            ),
                        )
                except ReproError as exc:
                    failure = SpecFailure(
                        kind="error",
                        message=f"{type(exc).__name__}: {exc}",
                        error_type=type(exc).__name__,
                    )
                    for spec in chunk:
                        on_outcome(
                            spec,
                            SpecOutcome(
                                spec=spec, error=failure, source="parallel"
                            ),
                        )
                except Exception as exc:  # noqa: BLE001 — structured outcome
                    failure = SpecFailure(
                        kind="error", message=f"{type(exc).__name__}: {exc}"
                    )
                    for spec in chunk:
                        on_outcome(
                            spec,
                            SpecOutcome(
                                spec=spec, error=failure, source="parallel"
                            ),
                        )
                else:
                    for spec, status in zip(chunk, statuses):
                        on_outcome(
                            spec,
                            _outcome_from_status(spec, status, "parallel"),
                        )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # Bounded-retry loop: transient failures (timeouts, worker crashes)
    # re-run with exponential backoff; everything else finishes on its
    # first outcome.  Deterministic errors never retry — the simulator
    # would reproduce them bit-for-bit.
    to_run = misses
    attempt = 0
    while to_run:
        retryable: "list[ExperimentSpec]" = []

        def _dispatch(spec: ExperimentSpec, outcome: SpecOutcome) -> None:
            if (
                attempt < retries
                and outcome.error is not None
                and outcome.error.transient
            ):
                if recorder is not None:
                    recorder.retry(
                        spec.label, outcome.error.kind, attempt + 1
                    )
                retryable.append(spec)
            else:
                _finish(spec, outcome)

        _execute_round(to_run, _dispatch)
        if not retryable:
            break
        attempt += 1
        stretch = 1.0
        if retry_jitter > 0:
            stretch += retry_jitter * _retry_jitter_fraction(
                retryable, fingerprint or "", attempt
            )
        _sleep_backoff(retry_backoff_sec * stretch, attempt)
        to_run = retryable
    if recorder is not None:
        recorder.sweep_finished(cache=resolved_cache)
    return [outcomes[i] for i in range(len(ordered))]


# ----------------------------------------------------------------------
# Process-wide memoized runner (the experiment drivers' entry point)
# ----------------------------------------------------------------------

_MEMO: "dict[ExperimentSpec, RunResult]" = {}


def run_cached(
    app: str,
    policy: str,
    fast_ratio: float = 0.25,
    epochs: "int | None" = None,
    slow_gib: float = 8.0,
    throttle: "tuple[float, float] | ThrottleConfig | None" = None,
    llc_mib: int = 16,
    seed: int = 7,
    slow_device: "str | None" = None,
    policy_args: "Mapping | None" = None,
    hotness: "HotnessConfig | Mapping | None" = None,
    faults: "FaultPlan | Mapping | None" = None,
    cache: "ResultCache | str | Path | None" = None,
) -> RunResult:
    """Memoized :func:`run_spec`: the shared driver entry point.

    Results are memoized in-process by spec, so drivers that revisit a
    grid point (Figure 9's baselines, Figure 10 reusing Figure 9's
    runs, Table 4 vs. Figure 1's FastMem-only run) simulate it once per
    process.  When ``cache`` is given — or ``REPRO_SWEEP_CACHE_DIR`` is
    set — results also persist across processes.
    """
    spec = make_spec(
        app,
        policy,
        fast_ratio=fast_ratio,
        epochs=epochs,
        slow_gib=slow_gib,
        throttle=throttle,
        llc_mib=llc_mib,
        seed=seed,
        slow_device=slow_device,
        policy_args=policy_args,
        hotness=hotness,
        faults=faults,
    )
    memoized = _MEMO.get(spec)
    if memoized is not None:
        return memoized
    resolved_cache = _resolve_cache(cache) or default_cache()
    fingerprint = ""
    if resolved_cache is not None:
        fingerprint = source_fingerprint()
        cached = resolved_cache.lookup(spec, fingerprint)
        if cached is not None:
            _MEMO[spec] = cached
            return cached
    result = run_spec(spec)
    _MEMO[spec] = result
    if resolved_cache is not None:
        resolved_cache.store(spec, fingerprint, result)
    return result


def clear_memo() -> None:
    """Drop the in-process memo (benchmark sessions call this between
    timed drivers so cold timings stay cold)."""
    _MEMO.clear()
