"""Single-VM epoch-driven simulation engine.

Each epoch the engine:

1. resets the kernel's per-epoch statistics and runs the policy's
   epoch-start hook (budget computation);
2. applies the workload's frees and allocations, routing every region
   through the policy's node preference and reporting grants back via
   ``on_allocated``;
3. records the accesses (LRU recency, extent temperatures, access bits,
   swap-ins);
4. feeds the epoch's region accesses through the LLC model, splits the
   resulting misses across memory devices by extent placement, and
   exports the LLC-miss count over the coordination channel (Eq. 1);
5. runs the policy's epoch-end hook (LRU demotions, hotness scans,
   migrations) whose cost — plus kernel-internal swap costs — is charged
   as software-management overhead;
6. advances virtual time: CPU + I/O wait + per-device stalls + overhead.
"""

from __future__ import annotations

import random
from contextlib import nullcontext

from repro.config import SimConfig
from repro.core.policy import PlacementPolicy, PolicyBinding
from repro.devtools.sanitizer import FrameSanitizer
from repro.errors import OutOfMemoryError
from repro.faults import FaultInjector
from repro.guestos.balloon import TierReservation
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier
from repro.hw.cache import LastLevelCache, RegionAccess
from repro.hw.endurance import WearTracker
from repro.hw.memdevice import MemoryDevice, topology_sort_key
from repro.hw.throttle import ThrottleConfig, throttled_device
from repro.hw.timing import DeviceDemand, MemoryTimingModel
from repro.mem.extent import PageType
from repro.obs.bus import Telemetry
from repro.obs.sample import SAMPLE_FORMAT_VERSION, EpochSample
from repro.sim.stats import RunResult, RunStats
from repro.units import PAGE_SIZE
from repro.vmm.domain import Domain
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.sharing import MaxMinSharing
from repro.workloads.base import EpochDemand, RegionSpec, Workload

#: Shared no-op context for profiling-off runs (no per-phase allocation).
_NO_PHASE = nullcontext()

#: Effect contract for every ``SimulationEngine.step`` phase, consumed
#: statically by the heteroeffect certifier (``repro certify``) — it is
#: read with ``ast.literal_eval``, never imported, so it must stay a
#: pure literal.  Per phase: ``roots`` are the methods the phase
#: executes; ``writes`` are the attribute locations the phase owns and
#: may mutate (trailing ``*`` is a wildcard); ``assume`` accepts
#: opaque/polymorphic call patterns on trust, each with its
#: justification.  Phases whose ledger entry lists violations (demand,
#: cache, policy) are impure by design — they mutate kernel/policy
#: state through dynamic dispatch; that is where the array-backed fast
#: path (``repro.sim.fast``, selected via ``SimConfig.fast_path`` /
#: ``REPRO_FAST``) substitutes its structures.  The certified phases
#: (timing, sample) are untouched by it and must stay certified.
STEP_PHASES = {
    "demand": {
        "roots": [
            "SimulationEngine._apply_frees",
            "SimulationEngine._apply_allocs",
            "SimulationEngine._apply_touches",
        ],
        "writes": ["SimulationEngine.region_specs"],
        "assume": {},
    },
    "cache": {
        "roots": ["SimulationEngine._memory_demands"],
        "writes": [],
        "assume": {},
    },
    "policy": {
        "roots": ["SimulationEngine._policy_phase"],
        "writes": [],
        "assume": {},
    },
    "timing": {
        "roots": ["SimulationEngine._timing_phase"],
        "writes": ["RunStats.stall_ns_by_device"],
        "assume": {},
    },
    "sample": {
        "roots": ["SimulationEngine._sample_epoch"],
        "writes": [
            "SimulationEngine._prev_*",
            "SimulationEngine._run_opened",
            "Telemetry._pending_events",
        ],
        "assume": {
            "?.on_start": (
                "sink fan-out; sinks only observe (no-perturbation "
                "contract, pinned by the obs test suite)"
            ),
            "?.on_sample": (
                "sink fan-out; sinks only observe (no-perturbation "
                "contract, pinned by the obs test suite)"
            ),
        },
    },
}


def build_single_vm(
    config: SimConfig,
) -> tuple[Hypervisor, Domain, GuestKernel]:
    """Construct a hypervisor hosting exactly one fully-reserved guest."""
    devices: dict[NodeTier, MemoryDevice] = {
        NodeTier.SLOW: config.resolved_slow_device()
    }
    if config.fast_pages > 0:
        devices[NodeTier.FAST] = config.resolved_fast_device()
    return build_custom_vm(devices, config)


def build_custom_vm(
    devices: dict[NodeTier, MemoryDevice],
    config: SimConfig | None = None,
) -> tuple[Hypervisor, Domain, GuestKernel]:
    """Construct a single fully-reserved guest over arbitrary tiers.

    Useful for multi-level-memory experiments (FAST + MEDIUM + SLOW
    nodes, Section 4.3) where :class:`SimConfig`'s two-tier shorthand
    does not apply; each device's capacity becomes its tier's
    reservation.
    """
    config = config or SimConfig()
    from repro.units import pages_of_bytes

    node_builder = None
    lru_factory = None
    if config.resolved_fast_path():
        # Imported lazily so the reference path never pays (or warns
        # about) the optional numpy dependency.
        from repro.sim.fast import FastSplitLru, fast_build_node

        node_builder = fast_build_node
        lru_factory = FastSplitLru
    reservations: dict[NodeTier, TierReservation] = {
        tier: TierReservation(
            pages_of_bytes(device.capacity_bytes),
            pages_of_bytes(device.capacity_bytes),
        )
        for tier, device in devices.items()
    }
    hypervisor = Hypervisor(
        devices,
        sharing_policy=MaxMinSharing(),
        hotness_config=config.hotness_config,  # type: ignore[arg-type]
        node_builder=node_builder,
    )
    domain = hypervisor.create_domain("vm0", reservations)
    nodes = hypervisor.build_guest_nodes(domain)
    kernel = GuestKernel(
        nodes,
        cpus=config.cpus,
        balloon=hypervisor.make_balloon_frontend(domain),
        lru_factory=lru_factory,
    )
    hypervisor.attach_kernel(domain, kernel)
    return hypervisor, domain, kernel


class SimulationEngine:
    """Drives one workload over one guest under one placement policy."""

    def __init__(
        self,
        config: SimConfig,
        workload: Workload,
        policy: PlacementPolicy,
        hypervisor: Hypervisor | None = None,
        domain: Domain | None = None,
        kernel: GuestKernel | None = None,
        record_timeseries: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.policy = policy
        if hypervisor is None or domain is None or kernel is None:
            hypervisor, domain, kernel = build_single_vm(config)
        self.hypervisor = hypervisor
        self.domain = domain
        self.kernel = kernel
        self.cache = LastLevelCache(config.llc)
        self.timing = MemoryTimingModel(config.cpu)
        self.wear = WearTracker()
        #: Array-backed demand accounting (repro.sim.fast); ``None``
        #: keeps the reference implementation in ``_memory_demands``.
        #: The two are pinned bit-identical by the differential oracle
        #: (tests/test_fast_equivalence.py), so this never feeds a
        #: cache key.
        self._fast_demands = None
        if config.resolved_fast_path():
            from repro.sim.fast import fast_memory_demands

            self._fast_demands = fast_memory_demands
        self.rng = random.Random(config.seed)
        self.record_timeseries = record_timeseries
        #: Frame-ownership shadow checker (SimConfig(sanitize=True)).
        self.sanitizer: FrameSanitizer | None = None
        if config.sanitize:
            self.sanitizer = FrameSanitizer()
            self.sanitizer.attach_kernel(kernel)
        #: Fault injector (repro.faults); ``None`` — the overwhelmingly
        #: common case — means no plan was configured and every injection
        #: site short-circuits on its ``faults is None`` check, keeping
        #: the exact seed code path (the no-perturbation contract).
        self.faults: FaultInjector | None = None
        if config.fault_plan is not None and not config.fault_plan.empty:
            self.faults = FaultInjector(config.fault_plan)
            kernel.swap.faults = self.faults
            hypervisor.migration_engine.faults = self.faults
            hypervisor.balloon_backend.faults = self.faults
            hypervisor.channel(domain.domain_id).faults = self.faults
            hypervisor.tracker(domain.domain_id).faults = self.faults
        #: Per-epoch samples when ``record_timeseries`` is set.
        self.timeseries: list[dict] = []
        self.region_specs: dict[str, RegionSpec] = {}
        self.stats = RunStats()
        #: Telemetry bus; sampling happens only when one is attached and
        #: enabled — otherwise step() takes the exact untelemetered path.
        self.telemetry = telemetry
        self._sampling = telemetry is not None and telemetry.enabled
        policy.bind(
            PolicyBinding(
                kernel=kernel, hypervisor=hypervisor, domain=domain,
                rng=self.rng,
                telemetry=telemetry if self._sampling else None,
            )
        )
        #: The slowest device, used to account swapped extents' misses.
        self._slowest_device = min(
            (node.device for node in kernel.nodes.values()),
            key=lambda d: d.bandwidth_gbps,
        )
        if self._sampling:
            assert telemetry is not None
            hypervisor.migration_engine.observer = telemetry.migration_event
            # Baselines for cumulative counters sampled as per-epoch
            # deltas (policy/kernel state may be reused across engines).
            self._prev_tlb = hypervisor.tlb.snapshot()
            self._prev_migrated = int(getattr(policy, "pages_migrated", 0))
            self._prev_demoted = int(getattr(policy, "pages_demoted", 0))
            self._prev_scan_cost = float(getattr(policy, "scan_cost_ns", 0.0))
            self._prev_migration_cost = float(
                getattr(policy, "migration_cost_ns", 0.0)
            )
            self._prev_swap_out = kernel.swap.stats.pages_out
            self._prev_swap_in = kernel.swap.stats.pages_in
            self._run_opened = False

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, epochs: int | None = None) -> RunResult:
        count = epochs if epochs is not None else self.workload.default_epochs()
        for demand in self.workload.epochs(count):
            self.step(demand)
        return self.result()

    def _phase(self, name: str):
        """Profiler bracket for one engine phase; free when profiling is
        off (shared null context, no allocation)."""
        if self._sampling and self.telemetry.profiler is not None:
            return self.telemetry.profiler.phase(name)
        return _NO_PHASE

    def step(self, demand: EpochDemand) -> None:
        """Advance one epoch."""
        epoch = demand.epoch
        kernel = self.kernel
        derate = None
        if self.faults is not None:
            self.faults.advance_epoch(epoch)
            # One derate draw per epoch: while it holds, every device
            # serves this epoch's misses through a throttled shadow.
            derate = self.faults.fires("device-derate")
        kernel.begin_epoch(epoch)
        overhead_ns = self.policy.on_epoch_start(epoch)

        with self._phase("demand"):
            self._apply_frees(demand)
            self._apply_allocs(demand)
            self._apply_touches(demand)

        with self._phase("cache"):
            device_demands, llc_misses = self._memory_demands(demand)
        channel = self.hypervisor.channel(self.domain.domain_id)
        channel.vmm_record_epoch(llc_misses, demand.instructions)
        self.policy.on_llc_sample(llc_misses, demand.instructions)

        with self._phase("policy"):
            overhead_ns += self._policy_phase(epoch)
        kernel_cost_ns = kernel.drain_pending_cost()

        with self._phase("timing"):
            cpu_ns, stall_total, epoch_stalls = self._timing_phase(
                demand, device_demands, derate
            )

        epoch_traffic = sum(d.traffic_bytes for d in device_demands.values())
        epoch_accesses = sum(
            reads + writes for reads, writes in demand.accesses.values()
        )
        self.stats.epochs += 1
        self.stats.cpu_ns += cpu_ns
        self.stats.io_wait_ns += demand.io_wait_ns
        self.stats.policy_overhead_ns += overhead_ns
        self.stats.kernel_cost_ns += kernel_cost_ns
        self.stats.instructions += demand.instructions
        self.stats.llc_misses += llc_misses
        self.stats.traffic_bytes += epoch_traffic
        self.stats.total_accesses += epoch_accesses
        epoch_runtime_ns = (
            cpu_ns + demand.io_wait_ns + stall_total + overhead_ns
            + kernel_cost_ns
        )
        self.stats.runtime_ns += epoch_runtime_ns

        if self.faults is not None:
            # Forward the epoch's fault records to the bus (they land in
            # this epoch's sample); drained unconditionally so an
            # untelemetered run cannot accumulate them.
            for event in self.faults.drain_events():
                if self._sampling:
                    self.telemetry.event(
                        event["name"], event["source"], epoch=event["epoch"]
                    )

        if self._sampling:
            with self._phase("sample"):
                self._sample_epoch(
                    demand=demand,
                    device_demands=device_demands,
                    epoch_stalls=epoch_stalls,
                    llc_misses=llc_misses,
                    cpu_ns=cpu_ns,
                    overhead_ns=overhead_ns,
                    kernel_cost_ns=kernel_cost_ns,
                    epoch_runtime_ns=epoch_runtime_ns,
                    epoch_traffic=epoch_traffic,
                    epoch_accesses=epoch_accesses,
                )

        if self.record_timeseries:
            fast_pages = sum(
                kernel.nodes[nid].used_pages for nid in kernel.fast_node_ids
            )
            fast_stall = sum(
                self.timing.stall_ns(d, dd, self.workload.mlp)
                for d, dd in device_demands.items()
                if any(
                    kernel.nodes[nid].device == d
                    for nid in kernel.fast_node_ids
                )
            )
            self.timeseries.append(
                {
                    "epoch": epoch,
                    "runtime_ns": epoch_runtime_ns,
                    "llc_misses": llc_misses,
                    "fast_used_pages": fast_pages,
                    "fast_stall_fraction": (
                        fast_stall / stall_total if stall_total else 0.0
                    ),
                    "overhead_ns": overhead_ns + kernel_cost_ns,
                }
            )

    # ------------------------------------------------------------------
    # Phase bodies (the units STEP_PHASES certifies)
    # ------------------------------------------------------------------

    def _policy_phase(self, epoch: int) -> float:
        """Policy epoch-end hook (LRU demotions, hotness scans,
        migrations); dynamic dispatch into the bound policy, so this
        phase is impure by design and never certified."""
        return self.policy.on_epoch_end(epoch)

    def _timing_phase(
        self,
        demand: EpochDemand,
        device_demands: dict[MemoryDevice, DeviceDemand],
        derate,
    ) -> tuple[float, float, dict[str, float]]:
        """Charge this epoch's CPU time and per-device stalls.

        Pure but for the declared ``RunStats.stall_ns_by_device``
        accumulation — certified in the heteroeffect ledger, which
        makes it the first candidate for the vectorized fast path.
        """
        cpu_ns = self.timing.cpu.cpu_ns(demand.instructions)
        # Deterministic topology order (fastest first) so per-device
        # accumulators and timelines are byte-stable across runs.
        stall_total = 0.0
        epoch_stalls: dict[str, float] = {}
        for device in sorted(device_demands, key=topology_sort_key):
            timed = device
            if derate is not None:
                # Transient degradation: stalls are computed against
                # a derated shadow device; demand routing, wear, and
                # accounting keys keep the real device.
                timed = throttled_device(
                    ThrottleConfig(
                        derate.latency_factor, derate.bandwidth_factor
                    ),
                    base=device,
                    name=device.name,
                    capacity_bytes=device.capacity_bytes,
                )
            stall = self.timing.stall_ns(
                timed, device_demands[device], self.workload.mlp
            )
            self.stats.add_stall(device.name, stall)
            epoch_stalls[device.name] = stall
            stall_total += stall
        return cpu_ns, stall_total, epoch_stalls

    # ------------------------------------------------------------------
    # Telemetry sampling
    # ------------------------------------------------------------------

    def _sample_epoch(
        self,
        *,
        demand: EpochDemand,
        device_demands: dict[MemoryDevice, DeviceDemand],
        epoch_stalls: dict[str, float],
        llc_misses: float,
        cpu_ns: float,
        overhead_ns: float,
        kernel_cost_ns: float,
        epoch_runtime_ns: float,
        epoch_traffic: float,
        epoch_accesses: float,
    ) -> None:
        """Publish this epoch's :class:`EpochSample` to the bus.

        Additive fields carry the *exact* values just added to the
        ``RunStats`` accumulators, so re-summing a timeline in epoch
        order reproduces the final aggregates bit-for-bit.  Cumulative
        policy/TLB/swap counters are sampled as deltas against the
        previous epoch's snapshot.
        """
        telemetry = self.telemetry
        assert telemetry is not None
        if not self._run_opened:
            self._run_opened = True
            telemetry.open_run(
                {
                    "format_version": SAMPLE_FORMAT_VERSION,
                    "workload": self.workload.name,
                    "policy": self.policy.name,
                    "metric": self.workload.metric,
                    "seed": self.config.seed,
                }
            )
        kernel = self.kernel
        policy = self.policy
        tlb_now = self.hypervisor.tlb.snapshot()
        tlb_delta = tlb_now.delta(self._prev_tlb)
        self._prev_tlb = tlb_now
        migrated = int(getattr(policy, "pages_migrated", 0))
        demoted = int(getattr(policy, "pages_demoted", 0))
        scan_cost = float(getattr(policy, "scan_cost_ns", 0.0))
        migration_cost = float(getattr(policy, "migration_cost_ns", 0.0))
        swap_out = kernel.swap.stats.pages_out
        swap_in = kernel.swap.stats.pages_in
        fast_used = sum(
            kernel.nodes[nid].used_pages for nid in kernel.fast_node_ids
        )
        fast_free = sum(
            kernel.nodes[nid].free_pages for nid in kernel.fast_node_ids
        )
        traffic_by_device = {
            device.name: device_demands[device].traffic_bytes
            for device in sorted(device_demands, key=topology_sort_key)
        }
        alloc_by_type: dict[str, list] = {}
        requested = 0
        granted = 0
        for page_type in sorted(kernel.epoch_stats, key=lambda pt: pt.value):
            type_stats = kernel.epoch_stats[page_type]
            if type_stats.requested_pages == 0:
                continue
            alloc_by_type[page_type.value] = [
                type_stats.requested_pages,
                type_stats.fast_granted_pages,
            ]
            requested += type_stats.requested_pages
            granted += type_stats.fast_granted_pages
        sample = EpochSample(
            epoch=demand.epoch,
            runtime_ns=epoch_runtime_ns,
            cpu_ns=cpu_ns,
            io_wait_ns=demand.io_wait_ns,
            policy_overhead_ns=overhead_ns,
            kernel_cost_ns=kernel_cost_ns,
            instructions=demand.instructions,
            llc_misses=llc_misses,
            llc_misses_cumulative=self.stats.llc_misses,
            traffic_bytes=epoch_traffic,
            total_accesses=epoch_accesses,
            tlb_flushes=tlb_delta.flushes,
            tlb_shootdowns=tlb_delta.shootdowns,
            pages_migrated=migrated - self._prev_migrated,
            pages_demoted=demoted - self._prev_demoted,
            scan_cost_ns=scan_cost - self._prev_scan_cost,
            migration_cost_ns=migration_cost - self._prev_migration_cost,
            swap_pages_out=swap_out - self._prev_swap_out,
            swap_pages_in=swap_in - self._prev_swap_in,
            fast_used_pages=fast_used,
            fast_free_pages=fast_free,
            alloc_requested_pages=requested,
            alloc_fast_granted_pages=granted,
            stall_ns_by_device=epoch_stalls,
            traffic_by_device=traffic_by_device,
            alloc_by_type=alloc_by_type,
            occupancy=kernel.occupancy_snapshot(),
            events=telemetry.drain_events(),
        )
        self._prev_migrated = migrated
        self._prev_demoted = demoted
        self._prev_scan_cost = scan_cost
        self._prev_migration_cost = migration_cost
        self._prev_swap_out = swap_out
        self._prev_swap_in = swap_in
        telemetry.publish(sample)

    # ------------------------------------------------------------------
    # Demand application
    # ------------------------------------------------------------------

    def _apply_frees(self, demand: EpochDemand) -> None:
        for region_id in demand.frees:
            if self.kernel.has_region(region_id):
                self.kernel.free_region(region_id)
            self.region_specs.pop(region_id, None)

    def _apply_allocs(self, demand: EpochDemand) -> None:
        kernel = self.kernel
        for region_id, spec in demand.allocs:
            preference = self.policy.node_preference(spec.page_type)
            try:
                extents = kernel.allocate_region(
                    region_id, spec.page_type, spec.pages, preference
                )
            except OutOfMemoryError:
                extents = self._allocate_under_pressure(
                    region_id, spec, preference
                )
                if extents is None:
                    self.stats.dropped_allocation_pages += spec.pages
                    continue
            fast_pages = sum(
                extent.pages
                for extent in extents
                if kernel.nodes[extent.node_id].is_fastmem
            )
            self.policy.on_allocated(spec.page_type, spec.pages, fast_pages)
            self.region_specs[region_id] = spec

    def _allocate_under_pressure(
        self, region_id: str, spec: RegionSpec, preference: list[int]
    ):
        """Genuine OOM path: reclaim (swap out cold pages) and retry once
        — what a real guest's direct reclaim does.  Returns ``None`` when
        even reclaim cannot make room."""
        kernel = self.kernel
        for node_id in kernel.slow_node_ids or list(kernel.nodes):
            kernel.shrink_node(node_id, spec.pages)
        try:
            return kernel.allocate_region(
                region_id, spec.page_type, spec.pages, preference
            )
        except OutOfMemoryError:
            return None

    def _apply_touches(self, demand: EpochDemand) -> None:
        for region_id, (reads, writes) in demand.accesses.items():
            if self.kernel.has_region(region_id):
                self.kernel.touch_region(
                    region_id, reads + writes, writes=writes
                )

    # ------------------------------------------------------------------
    # Cache + placement accounting
    # ------------------------------------------------------------------

    def _memory_demands(
        self, demand: EpochDemand
    ) -> tuple[dict[MemoryDevice, DeviceDemand], float]:
        if self._fast_demands is not None:
            return self._fast_demands(self, demand)
        kernel = self.kernel
        region_accesses: list[RegionAccess] = []
        placements: dict[str, dict[MemoryDevice, float]] = {}
        for region_id, (reads, writes) in demand.accesses.items():
            if not kernel.has_region(region_id):
                continue
            spec = self.region_specs.get(region_id)
            if spec is None:
                continue
            extents = kernel.region_extents(region_id)
            pages = sum(extent.pages for extent in extents)
            if pages == 0:
                continue
            region_accesses.append(
                RegionAccess(
                    region_id=region_id,
                    footprint_bytes=pages * PAGE_SIZE,
                    reads=reads,
                    writes=writes,
                    reuse=spec.reuse,
                    bytes_per_miss=spec.bytes_per_miss,
                )
            )
            fractions: dict[MemoryDevice, float] = {}
            for extent in extents:
                device = (
                    self._slowest_device
                    if extent.swapped
                    else kernel.nodes[extent.node_id].device
                )
                fractions[device] = fractions.get(device, 0.0) + (
                    extent.pages / pages
                )
            placements[region_id] = fractions

        demands: dict[MemoryDevice, DeviceDemand] = {}
        llc_misses = 0.0
        for misses in self.cache.apportion(region_accesses):
            llc_misses += misses.misses
            for device, fraction in placements[misses.region_id].items():
                addition = DeviceDemand(
                    read_misses=misses.read_misses * fraction,
                    write_misses=misses.write_misses * fraction,
                    traffic_bytes=misses.traffic_bytes * fraction,
                )
                current = demands.get(device)
                demands[device] = (
                    addition if current is None else current.merged(addition)
                )
                # Endurance accounting: dirty-line writebacks are the
                # device's wear (2x per write miss: fill + writeback).
                self.wear.record(
                    device,
                    misses.write_misses
                    * fraction
                    * misses.bytes_per_miss
                    * 2.0,
                )
        return demands, llc_misses

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> RunResult:
        kernel = self.kernel
        policy = self.policy
        sanitizer_reports: list = []
        if self.sanitizer is not None:
            self.sanitizer.reconcile(kernel)
            sanitizer_reports = list(self.sanitizer.reports)
        # Deterministic topology order for the per-device stall map:
        # insertion order depends on which epoch first touched a device,
        # so normalise before the dict reaches timelines or caches.
        devices_by_name = {
            node.device.name: node.device for node in kernel.nodes.values()
        }
        self.stats.stall_ns_by_device = {
            name: self.stats.stall_ns_by_device[name]
            for name in sorted(
                self.stats.stall_ns_by_device,
                key=lambda n: (
                    topology_sort_key(devices_by_name[n])
                    if n in devices_by_name
                    else (float("inf"), 0.0, n)
                ),
            )
        }
        timeline = None
        if self._sampling:
            assert self.telemetry is not None
            self.telemetry.close_run(self._summary())
            timeline = self.telemetry.timeline()
        return RunResult(
            workload_name=self.workload.name,
            policy_name=policy.name,
            metric=self.workload.metric,
            work_units_per_epoch=self.workload.work_units_per_epoch,
            stats=self.stats,
            alloc_stats=dict(kernel.cumulative_stats),
            page_distribution=dict(kernel.distribution.allocated),
            pages_migrated=getattr(policy, "pages_migrated", 0),
            pages_demoted=getattr(policy, "pages_demoted", 0),
            scan_cost_ns=getattr(policy, "scan_cost_ns", 0.0),
            migration_cost_ns=getattr(policy, "migration_cost_ns", 0.0),
            swap_pages_out=kernel.swap.stats.pages_out,
            swap_pages_in=kernel.swap.stats.pages_in,
            device_write_bytes=dict(self.wear.write_bytes),
            device_lifetime_years={
                name: self.wear.lifetime_years(name, self.stats.runtime_ns)
                for name in self.wear.write_bytes
            },
            sanitizer_reports=sanitizer_reports,
            fault_counts=(
                {
                    kind: self.faults.counts[kind]
                    for kind in sorted(self.faults.counts)
                }
                if self.faults is not None
                else {}
            ),
            timeline=timeline,
        )

    def _summary(self) -> dict:
        """Final JSON-safe aggregates for the telemetry summary record."""
        policy = self.policy
        kernel = self.kernel
        return {
            "format_version": SAMPLE_FORMAT_VERSION,
            "workload": self.workload.name,
            "policy": policy.name,
            "epochs": self.stats.epochs,
            "runtime_ns": self.stats.runtime_ns,
            "cpu_ns": self.stats.cpu_ns,
            "io_wait_ns": self.stats.io_wait_ns,
            "stall_ns_by_device": dict(self.stats.stall_ns_by_device),
            "policy_overhead_ns": self.stats.policy_overhead_ns,
            "kernel_cost_ns": self.stats.kernel_cost_ns,
            "instructions": self.stats.instructions,
            "llc_misses": self.stats.llc_misses,
            "mpki": self.stats.mpki,
            "traffic_bytes": self.stats.traffic_bytes,
            "total_accesses": self.stats.total_accesses,
            "pages_migrated": int(getattr(policy, "pages_migrated", 0)),
            "pages_demoted": int(getattr(policy, "pages_demoted", 0)),
            "scan_cost_ns": float(getattr(policy, "scan_cost_ns", 0.0)),
            "migration_cost_ns": float(
                getattr(policy, "migration_cost_ns", 0.0)
            ),
            "swap_pages_out": kernel.swap.stats.pages_out,
            "swap_pages_in": kernel.swap.stats.pages_in,
        }
