"""Single-VM epoch-driven simulation engine.

Each epoch the engine:

1. resets the kernel's per-epoch statistics and runs the policy's
   epoch-start hook (budget computation);
2. applies the workload's frees and allocations, routing every region
   through the policy's node preference and reporting grants back via
   ``on_allocated``;
3. records the accesses (LRU recency, extent temperatures, access bits,
   swap-ins);
4. feeds the epoch's region accesses through the LLC model, splits the
   resulting misses across memory devices by extent placement, and
   exports the LLC-miss count over the coordination channel (Eq. 1);
5. runs the policy's epoch-end hook (LRU demotions, hotness scans,
   migrations) whose cost — plus kernel-internal swap costs — is charged
   as software-management overhead;
6. advances virtual time: CPU + I/O wait + per-device stalls + overhead.
"""

from __future__ import annotations

import random

from repro.config import SimConfig
from repro.core.policy import PlacementPolicy, PolicyBinding
from repro.devtools.sanitizer import FrameSanitizer
from repro.errors import OutOfMemoryError
from repro.guestos.balloon import TierReservation
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier
from repro.hw.cache import LastLevelCache, RegionAccess
from repro.hw.endurance import WearTracker
from repro.hw.memdevice import MemoryDevice
from repro.hw.timing import DeviceDemand, MemoryTimingModel
from repro.mem.extent import PageType
from repro.sim.stats import RunResult, RunStats
from repro.units import PAGE_SIZE
from repro.vmm.domain import Domain
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.sharing import MaxMinSharing
from repro.workloads.base import EpochDemand, RegionSpec, Workload


def build_single_vm(
    config: SimConfig,
) -> tuple[Hypervisor, Domain, GuestKernel]:
    """Construct a hypervisor hosting exactly one fully-reserved guest."""
    devices: dict[NodeTier, MemoryDevice] = {
        NodeTier.SLOW: config.resolved_slow_device()
    }
    if config.fast_pages > 0:
        devices[NodeTier.FAST] = config.resolved_fast_device()
    return build_custom_vm(devices, config)


def build_custom_vm(
    devices: dict[NodeTier, MemoryDevice],
    config: SimConfig | None = None,
) -> tuple[Hypervisor, Domain, GuestKernel]:
    """Construct a single fully-reserved guest over arbitrary tiers.

    Useful for multi-level-memory experiments (FAST + MEDIUM + SLOW
    nodes, Section 4.3) where :class:`SimConfig`'s two-tier shorthand
    does not apply; each device's capacity becomes its tier's
    reservation.
    """
    config = config or SimConfig()
    from repro.units import pages_of_bytes

    reservations: dict[NodeTier, TierReservation] = {
        tier: TierReservation(
            pages_of_bytes(device.capacity_bytes),
            pages_of_bytes(device.capacity_bytes),
        )
        for tier, device in devices.items()
    }
    hypervisor = Hypervisor(
        devices,
        sharing_policy=MaxMinSharing(),
        hotness_config=config.hotness_config,  # type: ignore[arg-type]
    )
    domain = hypervisor.create_domain("vm0", reservations)
    nodes = hypervisor.build_guest_nodes(domain)
    kernel = GuestKernel(
        nodes,
        cpus=config.cpus,
        balloon=hypervisor.make_balloon_frontend(domain),
    )
    hypervisor.attach_kernel(domain, kernel)
    return hypervisor, domain, kernel


class SimulationEngine:
    """Drives one workload over one guest under one placement policy."""

    def __init__(
        self,
        config: SimConfig,
        workload: Workload,
        policy: PlacementPolicy,
        hypervisor: Hypervisor | None = None,
        domain: Domain | None = None,
        kernel: GuestKernel | None = None,
        record_timeseries: bool = False,
    ) -> None:
        self.config = config
        self.workload = workload
        self.policy = policy
        if hypervisor is None or domain is None or kernel is None:
            hypervisor, domain, kernel = build_single_vm(config)
        self.hypervisor = hypervisor
        self.domain = domain
        self.kernel = kernel
        self.cache = LastLevelCache(config.llc)
        self.timing = MemoryTimingModel(config.cpu)
        self.wear = WearTracker()
        self.rng = random.Random(config.seed)
        self.record_timeseries = record_timeseries
        #: Frame-ownership shadow checker (SimConfig(sanitize=True)).
        self.sanitizer: FrameSanitizer | None = None
        if config.sanitize:
            self.sanitizer = FrameSanitizer()
            self.sanitizer.attach_kernel(kernel)
        #: Per-epoch samples when ``record_timeseries`` is set.
        self.timeseries: list[dict] = []
        self.region_specs: dict[str, RegionSpec] = {}
        self.stats = RunStats()
        policy.bind(
            PolicyBinding(
                kernel=kernel, hypervisor=hypervisor, domain=domain,
                rng=self.rng,
            )
        )
        #: The slowest device, used to account swapped extents' misses.
        self._slowest_device = min(
            (node.device for node in kernel.nodes.values()),
            key=lambda d: d.bandwidth_gbps,
        )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, epochs: int | None = None) -> RunResult:
        count = epochs if epochs is not None else self.workload.default_epochs()
        for demand in self.workload.epochs(count):
            self.step(demand)
        return self.result()

    def step(self, demand: EpochDemand) -> None:
        """Advance one epoch."""
        epoch = demand.epoch
        kernel = self.kernel
        kernel.begin_epoch(epoch)
        overhead_ns = self.policy.on_epoch_start(epoch)

        self._apply_frees(demand)
        self._apply_allocs(demand)
        self._apply_touches(demand)

        device_demands, llc_misses = self._memory_demands(demand)
        channel = self.hypervisor.channel(self.domain.domain_id)
        channel.vmm_record_epoch(llc_misses, demand.instructions)
        self.policy.on_llc_sample(llc_misses, demand.instructions)

        overhead_ns += self.policy.on_epoch_end(epoch)
        kernel_cost_ns = kernel.drain_pending_cost()

        cpu_ns = self.timing.cpu.cpu_ns(demand.instructions)
        stall_total = 0.0
        for device, device_demand in device_demands.items():
            stall = self.timing.stall_ns(device, device_demand, self.workload.mlp)
            self.stats.add_stall(device.name, stall)
            stall_total += stall

        self.stats.epochs += 1
        self.stats.cpu_ns += cpu_ns
        self.stats.io_wait_ns += demand.io_wait_ns
        self.stats.policy_overhead_ns += overhead_ns
        self.stats.kernel_cost_ns += kernel_cost_ns
        self.stats.instructions += demand.instructions
        self.stats.llc_misses += llc_misses
        self.stats.traffic_bytes += sum(
            d.traffic_bytes for d in device_demands.values()
        )
        self.stats.total_accesses += sum(
            reads + writes for reads, writes in demand.accesses.values()
        )
        epoch_runtime_ns = (
            cpu_ns + demand.io_wait_ns + stall_total + overhead_ns
            + kernel_cost_ns
        )
        self.stats.runtime_ns += epoch_runtime_ns

        if self.record_timeseries:
            fast_pages = sum(
                kernel.nodes[nid].used_pages for nid in kernel.fast_node_ids
            )
            fast_stall = sum(
                self.timing.stall_ns(d, dd, self.workload.mlp)
                for d, dd in device_demands.items()
                if any(
                    kernel.nodes[nid].device == d
                    for nid in kernel.fast_node_ids
                )
            )
            self.timeseries.append(
                {
                    "epoch": epoch,
                    "runtime_ns": epoch_runtime_ns,
                    "llc_misses": llc_misses,
                    "fast_used_pages": fast_pages,
                    "fast_stall_fraction": (
                        fast_stall / stall_total if stall_total else 0.0
                    ),
                    "overhead_ns": overhead_ns + kernel_cost_ns,
                }
            )

    # ------------------------------------------------------------------
    # Demand application
    # ------------------------------------------------------------------

    def _apply_frees(self, demand: EpochDemand) -> None:
        for region_id in demand.frees:
            if self.kernel.has_region(region_id):
                self.kernel.free_region(region_id)
            self.region_specs.pop(region_id, None)

    def _apply_allocs(self, demand: EpochDemand) -> None:
        kernel = self.kernel
        for region_id, spec in demand.allocs:
            preference = self.policy.node_preference(spec.page_type)
            try:
                extents = kernel.allocate_region(
                    region_id, spec.page_type, spec.pages, preference
                )
            except OutOfMemoryError:
                extents = self._allocate_under_pressure(
                    region_id, spec, preference
                )
                if extents is None:
                    self.stats.dropped_allocation_pages += spec.pages
                    continue
            fast_pages = sum(
                extent.pages
                for extent in extents
                if kernel.nodes[extent.node_id].is_fastmem
            )
            self.policy.on_allocated(spec.page_type, spec.pages, fast_pages)
            self.region_specs[region_id] = spec

    def _allocate_under_pressure(
        self, region_id: str, spec: RegionSpec, preference: list[int]
    ):
        """Genuine OOM path: reclaim (swap out cold pages) and retry once
        — what a real guest's direct reclaim does.  Returns ``None`` when
        even reclaim cannot make room."""
        kernel = self.kernel
        for node_id in kernel.slow_node_ids or list(kernel.nodes):
            kernel.shrink_node(node_id, spec.pages)
        try:
            return kernel.allocate_region(
                region_id, spec.page_type, spec.pages, preference
            )
        except OutOfMemoryError:
            return None

    def _apply_touches(self, demand: EpochDemand) -> None:
        for region_id, (reads, writes) in demand.accesses.items():
            if self.kernel.has_region(region_id):
                self.kernel.touch_region(
                    region_id, reads + writes, writes=writes
                )

    # ------------------------------------------------------------------
    # Cache + placement accounting
    # ------------------------------------------------------------------

    def _memory_demands(
        self, demand: EpochDemand
    ) -> tuple[dict[MemoryDevice, DeviceDemand], float]:
        kernel = self.kernel
        region_accesses: list[RegionAccess] = []
        placements: dict[str, dict[MemoryDevice, float]] = {}
        for region_id, (reads, writes) in demand.accesses.items():
            if not kernel.has_region(region_id):
                continue
            spec = self.region_specs.get(region_id)
            if spec is None:
                continue
            extents = kernel.region_extents(region_id)
            pages = sum(extent.pages for extent in extents)
            if pages == 0:
                continue
            region_accesses.append(
                RegionAccess(
                    region_id=region_id,
                    footprint_bytes=pages * PAGE_SIZE,
                    reads=reads,
                    writes=writes,
                    reuse=spec.reuse,
                    bytes_per_miss=spec.bytes_per_miss,
                )
            )
            fractions: dict[MemoryDevice, float] = {}
            for extent in extents:
                device = (
                    self._slowest_device
                    if extent.swapped
                    else kernel.nodes[extent.node_id].device
                )
                fractions[device] = fractions.get(device, 0.0) + (
                    extent.pages / pages
                )
            placements[region_id] = fractions

        demands: dict[MemoryDevice, DeviceDemand] = {}
        llc_misses = 0.0
        for misses in self.cache.apportion(region_accesses):
            llc_misses += misses.misses
            for device, fraction in placements[misses.region_id].items():
                addition = DeviceDemand(
                    read_misses=misses.read_misses * fraction,
                    write_misses=misses.write_misses * fraction,
                    traffic_bytes=misses.traffic_bytes * fraction,
                )
                current = demands.get(device)
                demands[device] = (
                    addition if current is None else current.merged(addition)
                )
                # Endurance accounting: dirty-line writebacks are the
                # device's wear (2x per write miss: fill + writeback).
                self.wear.record(
                    device,
                    misses.write_misses
                    * fraction
                    * misses.bytes_per_miss
                    * 2.0,
                )
        return demands, llc_misses

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> RunResult:
        kernel = self.kernel
        policy = self.policy
        sanitizer_reports: list = []
        if self.sanitizer is not None:
            self.sanitizer.reconcile(kernel)
            sanitizer_reports = list(self.sanitizer.reports)
        return RunResult(
            workload_name=self.workload.name,
            policy_name=policy.name,
            metric=self.workload.metric,
            work_units_per_epoch=self.workload.work_units_per_epoch,
            stats=self.stats,
            alloc_stats=dict(kernel.cumulative_stats),
            page_distribution=dict(kernel.distribution.allocated),
            pages_migrated=getattr(policy, "pages_migrated", 0),
            pages_demoted=getattr(policy, "pages_demoted", 0),
            scan_cost_ns=getattr(policy, "scan_cost_ns", 0.0),
            migration_cost_ns=getattr(policy, "migration_cost_ns", 0.0),
            swap_pages_out=kernel.swap.stats.pages_out,
            swap_pages_in=kernel.swap.stats.pages_in,
            device_write_bytes=dict(self.wear.write_bytes),
            device_lifetime_years={
                name: self.wear.lifetime_years(name, self.stats.runtime_ns)
                for name in self.wear.write_bytes
            },
            sanitizer_reports=sanitizer_reports,
        )
