"""Workload trace capture and replay.

The simulator is trace-driven: a workload is fully described by its
epoch demand stream.  This module serialises that stream to JSON so a
demand trace can be captured once (from a statistical model — or, in
principle, converted from real allocator/access logs) and replayed
bit-for-bit later:

    >>> from repro.sim.trace import record_trace, TraceWorkload
    >>> trace = record_trace(make_workload("redis"), epochs=50)
    >>> replay = TraceWorkload.from_dict(trace)

Replaying a trace through the engine produces *identical* results to
running the original workload — asserted by the test suite — which
makes traces a stable artifact for regression comparisons across
library versions.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Iterator

from repro.errors import WorkloadError
from repro.mem.extent import PageType
from repro.workloads.base import EpochDemand, RegionSpec, Workload

TRACE_FORMAT_VERSION = 1


def _spec_to_dict(spec: RegionSpec) -> dict:
    data = asdict(spec)
    data["page_type"] = spec.page_type.value
    return data


def _spec_from_dict(data: dict) -> RegionSpec:
    fields = dict(data)
    fields["page_type"] = PageType(fields["page_type"])
    return RegionSpec(**fields)


def demand_to_dict(demand: EpochDemand) -> dict:
    return {
        "epoch": demand.epoch,
        "instructions": demand.instructions,
        "io_wait_ns": demand.io_wait_ns,
        "allocs": [
            [region_id, _spec_to_dict(spec)]
            for region_id, spec in demand.allocs
        ],
        "frees": list(demand.frees),
        "accesses": {
            region_id: [reads, writes]
            for region_id, (reads, writes) in demand.accesses.items()
        },
    }


def demand_from_dict(data: dict) -> EpochDemand:
    return EpochDemand(
        epoch=data["epoch"],
        instructions=data["instructions"],
        io_wait_ns=data.get("io_wait_ns", 0.0),
        allocs=[
            (region_id, _spec_from_dict(spec))
            for region_id, spec in data["allocs"]
        ],
        frees=list(data["frees"]),
        accesses={
            region_id: (reads, writes)
            for region_id, (reads, writes) in data["accesses"].items()
        },
    )


def record_trace(workload: Workload, epochs: int | None = None) -> dict:
    """Capture ``epochs`` of a workload's demand stream as a plain dict."""
    count = epochs if epochs is not None else workload.default_epochs()
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "name": workload.name,
        "mlp": workload.mlp,
        "metric": workload.metric,
        "work_units_per_epoch": workload.work_units_per_epoch,
        "epochs": [
            demand_to_dict(demand) for demand in workload.epochs(count)
        ],
    }


def save_trace(
    path: str | pathlib.Path, workload: Workload, epochs: int | None = None
) -> None:
    """Record a trace and write it as JSON."""
    pathlib.Path(path).write_text(json.dumps(record_trace(workload, epochs)))


def load_trace(path: str | pathlib.Path) -> "TraceWorkload":
    """Load a saved trace as a replayable workload."""
    return TraceWorkload.from_dict(
        json.loads(pathlib.Path(path).read_text())
    )


class TraceWorkload(Workload):
    """A workload that replays a recorded demand stream."""

    def __init__(
        self,
        name: str,
        mlp: float,
        metric: str,
        work_units_per_epoch: float,
        demands: list[EpochDemand],
    ) -> None:
        if not demands:
            raise WorkloadError("a trace needs at least one epoch")
        self.name = name
        self.mlp = mlp
        self.metric = metric
        self.work_units_per_epoch = work_units_per_epoch
        self._demands = list(demands)

    @classmethod
    def from_dict(cls, data: dict) -> "TraceWorkload":
        version = data.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported trace format version {version!r}"
            )
        return cls(
            name=data["name"],
            mlp=data["mlp"],
            metric=data["metric"],
            work_units_per_epoch=data.get("work_units_per_epoch", 0.0),
            demands=[demand_from_dict(d) for d in data["epochs"]],
        )

    def default_epochs(self) -> int:
        return len(self._demands)

    def epochs(self, count: int) -> Iterator[EpochDemand]:
        if count > len(self._demands):
            raise WorkloadError(
                f"trace holds {len(self._demands)} epochs, {count} requested"
            )
        yield from self._demands[:count]
