"""Multi-VM simulation with VMM-mediated heterogeneous memory sharing.

Reproduces the Figure 13 setup: several guests on one machine, each with
per-tier minimum/maximum reservations, ballooning extra memory through
the back-end whose grants are arbitrated by the configured sharing
policy (single-resource max-min or weighted DRF).  Guests advance in
lock-step, one epoch at a time, so reclaim pressure from one VM lands on
its neighbours within the same virtual interval.

The LLC is statically partitioned across VMs (way partitioning), the
conservative model for co-located cache contention.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.config import SimConfig
from repro.core.policy import PlacementPolicy
from repro.errors import ConfigurationError
from repro.guestos.balloon import TierReservation
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import MemoryDevice
from repro.sim.engine import SimulationEngine
from repro.sim.stats import RunResult
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.sharing import SharingPolicy
from repro.workloads.base import Workload


@dataclass
class VmSpec:
    """One guest's configuration."""

    name: str
    workload: Workload
    policy: PlacementPolicy
    reservations: dict[NodeTier, TierReservation]
    weights: dict[NodeTier, float] = field(default_factory=dict)


class MultiVmSimulation:
    """Lock-step co-simulation of several guests under one VMM."""

    def __init__(
        self,
        devices: dict[NodeTier, MemoryDevice],
        vms: list[VmSpec],
        sharing_policy: SharingPolicy,
        config: SimConfig | None = None,
    ) -> None:
        if not vms:
            raise ConfigurationError("need at least one VM")
        self.config = config or SimConfig()
        self.hypervisor = Hypervisor(devices, sharing_policy=sharing_policy)
        self.engines: dict[str, SimulationEngine] = {}
        llc_share = dataclasses.replace(
            self.config.llc,
            capacity_bytes=max(
                1, self.config.llc.capacity_bytes // len(vms)
            ),
        )
        for index, spec in enumerate(vms):
            domain = self.hypervisor.create_domain(
                spec.name, spec.reservations, weights=spec.weights or None
            )
            nodes = self.hypervisor.build_guest_nodes(domain)
            kernel = GuestKernel(
                nodes,
                cpus=self.config.cpus,
                balloon=self.hypervisor.make_balloon_frontend(domain),
            )
            self.hypervisor.attach_kernel(domain, kernel)
            vm_config = dataclasses.replace(
                self.config,
                llc=llc_share,
                seed=self.config.seed + index,
            )
            self.engines[spec.name] = SimulationEngine(
                vm_config,
                spec.workload,
                spec.policy,
                hypervisor=self.hypervisor,
                domain=domain,
                kernel=kernel,
            )
        self._vms = list(vms)
        self.rng = random.Random(self.config.seed)

    def run(self, epochs: int | None = None) -> dict[str, RunResult]:
        """Advance all guests in lock-step; returns per-VM results."""
        count = epochs
        if count is None:
            count = max(spec.workload.default_epochs() for spec in self._vms)
        iterators = {
            spec.name: spec.workload.epochs(count) for spec in self._vms
        }
        for _ in range(count):
            for spec in self._vms:
                demand = next(iterators[spec.name], None)
                if demand is not None:
                    self.engines[spec.name].step(demand)
        return {name: engine.result() for name, engine in self.engines.items()}
