"""High-level experiment API.

:func:`run_experiment` is the one call benchmarks and examples use: pick
an application (by name or instance), a policy (by name or instance), a
FastMem:SlowMem capacity ratio, and platform knobs; get a
:class:`~repro.sim.stats.RunResult` back.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.core.policy import PlacementPolicy, make_policy
from repro.errors import ConfigurationError
from repro.hw.cache import CacheConfig
from repro.hw.memdevice import MemoryDevice
from repro.hw.throttle import DEFAULT_SLOWMEM, ThrottleConfig
from repro.sim.engine import SimulationEngine
from repro.sim.stats import RunResult
from repro.units import GIB, MIB
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload


def build_config(
    fast_ratio: float = 0.25,
    slow_gib: float = 8.0,
    throttle: tuple[float, float] | ThrottleConfig | None = None,
    llc_mib: int = 16,
    slow_device: MemoryDevice | None = None,
    unlimited_fast: bool = False,
    seed: int = 7,
) -> SimConfig:
    """Build the evaluation platform of Section 5.1 with the given knobs.

    ``fast_ratio`` is the paper's FastMem:SlowMem capacity ratio (1/2,
    1/4, ... — Figures 3 and 9); ``throttle`` the SlowMem (L, B) setting.
    """
    if fast_ratio < 0:
        raise ConfigurationError("fast ratio must be non-negative")
    if isinstance(throttle, tuple):
        throttle = ThrottleConfig(*throttle)
    slow_bytes = int(slow_gib * GIB)
    fast_bytes = (
        2 * slow_bytes if unlimited_fast else int(slow_bytes * fast_ratio)
    )
    return SimConfig(
        fast_capacity_bytes=fast_bytes,
        slow_capacity_bytes=slow_bytes,
        slow_throttle=throttle or DEFAULT_SLOWMEM,
        slow_device=slow_device,
        llc=CacheConfig(capacity_bytes=llc_mib * MIB),
        seed=seed,
    )


def run_experiment(
    app: str | Workload,
    policy: str | PlacementPolicy,
    fast_ratio: float = 0.25,
    epochs: int | None = None,
    slow_gib: float = 8.0,
    throttle: tuple[float, float] | ThrottleConfig | None = None,
    llc_mib: int = 16,
    slow_device: MemoryDevice | None = None,
    seed: int = 7,
    config: SimConfig | None = None,
    telemetry=None,
    faults=None,
) -> RunResult:
    """Run one (application, policy, platform) combination.

    Pass ``config`` to override platform construction entirely.  The
    FastMem-only policy automatically gets unlimited FastMem.  Pass a
    ``repro.obs.Telemetry`` bus as ``telemetry`` to capture a per-epoch
    timeline (attached to ``RunResult.timeline``) and stream to any
    configured sinks; telemetry never changes simulated results.  Pass a
    ``repro.faults.FaultPlan`` as ``faults`` to inject its scheduled
    component faults; an empty plan (or ``None``) takes the exact
    fault-free seed code path.
    """
    workload = make_workload(app) if isinstance(app, str) else app
    placement = make_policy(policy) if isinstance(policy, str) else policy
    if config is None:
        config = build_config(
            fast_ratio=fast_ratio,
            slow_gib=slow_gib,
            throttle=throttle,
            llc_mib=llc_mib,
            slow_device=slow_device,
            unlimited_fast=placement.requires_unlimited_fast,
            seed=seed,
        )
    if faults is not None:
        config.fault_plan = faults
    engine = SimulationEngine(config, workload, placement, telemetry=telemetry)
    return engine.run(epochs)
