"""The array-backed epoch hot path (ROADMAP item 2).

The PhaseProfiler (PR 4) puts the bulk of ``SimulationEngine.step()``
host time in the demand phase, and inside it almost entirely in
:class:`~repro.guestos.buddy.BuddyAllocator`: the Python-bigint free
mask costs O(span bits) per allocate/free, ``min(set)`` rescans a free
list per block, and every block materialises a validated frozen
``FrameRange``.  The ISSUE names the LRU walks and demand accounting as
further suspects; profiling ranks them second and third.  This module
replaces all three with flat array-backed structures:

* :class:`FrameBitmap` — a byte-per-frame free map (``bytearray`` with
  an optional shared-memory numpy ``uint8`` view for bulk fills and the
  invariant popcount) instead of one Python big integer.
* :class:`FastBuddy` — a drop-in :class:`BuddyAllocator` using the
  bitmap, per-order min-heaps with lazy deletion (reproducing the
  reference ``min(set)`` block choice in O(log n)), and
  ``FrameRange.unchecked`` construction.
* :class:`FastSplitLru` — running active/inactive page counters so the
  per-sample ``occupancy_snapshot`` stops walking every extent.
* :class:`DemandAccumulator` / :func:`fast_memory_demands` — flat
  per-device float columns replacing the per-(region, device) frozen
  ``DeviceDemand`` merge chain of the reference demand accounting.

Every structure is pinned **bit-identical** to its reference twin: the
same allocations, the same float addition order, the same dict
insertion order.  The differential oracle
(``tests/test_fast_equivalence.py``) enforces this across all policies,
fault plans, and telemetry modes; no change to this module merges
without it.  See ``docs/performance.md``.

numpy is optional (the ``fast`` extra).  When it cannot be imported the
bitmap silently degrades to pure ``bytearray`` operations — identical
results, reduced bulk-fill speed — and a single ``RuntimeWarning`` is
emitted at import time.  This module is the only place allowed to
import numpy (heterolint ``numpy-import``); everything else must stay
dependency-free.
"""

from __future__ import annotations

import heapq
import warnings
from typing import TYPE_CHECKING

from repro.errors import AllocationError, OutOfMemoryError
from repro.guestos.buddy import MAX_ORDER, BuddyAllocator
from repro.guestos.lru import SplitLru
from repro.guestos.numa import MemoryNode, build_node
from repro.hw.cache import RegionAccess
from repro.hw.timing import DeviceDemand
from repro.mem.frames import FrameRange
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.extent import PageExtent
    from repro.sim.engine import EpochDemand, SimulationEngine

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via test_fast_fallback
    _np = None
    warnings.warn(
        "numpy unavailable; repro.sim.fast falls back to the pure-Python "
        "array backend (results identical, bulk operations slower) — "
        "install the 'fast' extra for full speed",
        RuntimeWarning,
    )

#: Whether the numpy backend is active (False = bytearray fallback).
HAS_NUMPY = _np is not None

#: heterocontract anchor (``contract-fast-mirror``): the accumulator
#: columns of :class:`DemandAccumulator`, one per
#: :class:`~repro.hw.timing.DeviceDemand` field.  Must stay a pure
#: literal (it is read with ``ast.literal_eval``) and mirror the
#: dataclass exactly — a DeviceDemand field without a column here would
#: be silently dropped by the fast path.
DEVICE_DEMAND_FIELDS = ("read_misses", "write_misses", "traffic_bytes")

#: Bulk bitmap fills at or above this many frames go through the numpy
#: view (a memset, no ``bytes`` temporary); smaller fills stay on the
#: bytearray slice path whose per-call overhead is ~10x lower.  Chosen
#: where the two backends cross over on current CPython/numpy.
_BULK_FILL_FRAMES = 2048

# Hot-loop aliases: module-level bindings skip the attribute lookups
# that dominate at ~100ns-per-operation scale.
_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify
_unchecked = FrameRange.unchecked
#: Pre-built zero/one runs for clearing or setting one buddy block per
#: order, sparing a fresh ``bytes`` temporary per operation.
_ZERO_RUN = tuple(bytes(1 << order) for order in range(MAX_ORDER + 1))
_ONE_RUN = tuple(b"\x01" * (1 << order) for order in range(MAX_ORDER + 1))
_new_instance = object.__new__


def _region_access(region_id, footprint_bytes, reads, writes, reuse,
                   bytes_per_miss):
    """:class:`RegionAccess` without the ``__init__``/``__post_init__``
    round trip (same trick as ``FrameRange.unchecked``).  Valid only for
    arguments the reference constructor would accept: ``reuse`` and
    ``bytes_per_miss`` come from an already-validated region spec, and
    the kernel guarantees non-negative page counts and access counts."""
    access = _new_instance(RegionAccess)
    attrs = access.__dict__
    attrs["region_id"] = region_id
    attrs["footprint_bytes"] = footprint_bytes
    attrs["reads"] = reads
    attrs["writes"] = writes
    attrs["reuse"] = reuse
    attrs["bytes_per_miss"] = bytes_per_miss
    return access


_INF = float("inf")


def _fast_apportion(cache, regions):
    """Tuple-returning twin of ``LastLevelCache.apportion`` plus the
    ``RegionMisses.misses``/``traffic_bytes`` properties: the same float
    expressions evaluated in the same order, minus one frozen dataclass
    and two property calls per region per epoch.  Yields
    ``(region_id, read_misses, write_misses, traffic_bytes,
    bytes_per_miss, misses)`` in input order.  Pinned against the
    reference by the differential oracle."""
    remaining = float(cache.config.capacity_bytes)
    cached_frac = {}
    ranked = sorted(
        (r for r in regions if r.reads + r.writes > 0),
        key=lambda r: (
            (r.reads + r.writes) / r.footprint_bytes
            if r.footprint_bytes
            else _INF
        ),
        reverse=True,
    )
    for region in ranked:
        footprint = region.footprint_bytes
        if footprint == 0:
            cached_frac[region.region_id] = 1.0
            continue
        take = min(remaining, float(footprint))
        cached_frac[region.region_id] = take / footprint
        remaining -= take
    results = []
    append = results.append
    frac_of = cached_frac.get
    for region in regions:
        frac = frac_of(region.region_id, 0.0)
        hit_rate = region.reuse * frac
        miss_rate = 1.0 - hit_rate
        read_misses = region.reads * miss_rate
        write_misses = region.writes * miss_rate
        bytes_per_miss = region.bytes_per_miss
        append((
            region.region_id,
            read_misses,
            write_misses,
            read_misses * bytes_per_miss + write_misses * bytes_per_miss * 2.0,
            bytes_per_miss,
            read_misses + write_misses,
        ))
    return results

__all__ = [
    "DEVICE_DEMAND_FIELDS",
    "HAS_NUMPY",
    "DemandAccumulator",
    "FastBuddy",
    "FastNode",
    "FastSplitLru",
    "FrameBitmap",
    "fast_build_node",
    "fast_memory_demands",
]


class FrameBitmap:
    """Byte-per-frame free map: ``buf[i]`` is 1 iff frame ``base + i``
    is free.

    The buffer is always a ``bytearray`` so scalar probes can use
    ``bytearray.find`` (C ``memchr``) regardless of backend; when numpy
    is importable, :attr:`view` is a ``uint8`` array sharing the same
    memory, used for large fills and the population count.
    """

    __slots__ = ("buf", "view")

    def __init__(self, frames: int) -> None:
        self.buf = bytearray(frames)
        self.view = None if _np is None else _np.frombuffer(self.buf, dtype=_np.uint8)

    def fill(self, offset: int, count: int, value: int) -> None:
        """Set ``count`` entries starting at ``offset`` to ``value``."""
        if self.view is not None and count >= _BULK_FILL_FRAMES:
            self.view[offset:offset + count] = value
        elif value:
            self.buf[offset:offset + count] = b"\x01" * count
        else:
            self.buf[offset:offset + count] = bytes(count)

    def any_set(self, offset: int, end: int) -> bool:
        """True if any entry in ``[offset, end)`` is non-zero."""
        return self.buf.find(1, offset, end) != -1

    def any_clear(self, offset: int, end: int) -> bool:
        """True if any entry in ``[offset, end)`` is zero."""
        return self.buf.find(0, offset, end) != -1

    def popcount(self) -> int:
        """Number of set entries across the whole map."""
        if self.view is not None:
            return int(self.view.sum())
        return sum(self.buf)


class FastBuddy(BuddyAllocator):
    """Array-backed drop-in for :class:`BuddyAllocator`.

    Three substitutions, none visible to callers:

    * the big-int ``_free_mask`` becomes a :class:`FrameBitmap`
      (O(count) slice writes instead of O(span-bits) shifts);
    * each order's free list keeps a companion min-heap with lazy
      deletion, so picking the lowest free block is O(log n) instead of
      the reference ``min(set)`` rescan — and provably picks the *same*
      block, which is what keeps allocation sequences bit-identical;
    * granted blocks are built with ``FrameRange.unchecked`` (the split
      arithmetic guarantees validity).
    """

    def __init__(self, base: int, frames: int, max_order: int = MAX_ORDER) -> None:
        if frames <= 0:
            raise AllocationError("buddy span must contain at least one frame")
        if max_order < 0:
            raise AllocationError("max_order must be non-negative")
        self.base = base
        self.total_frames = frames
        self.max_order = max_order
        self._free_lists = [set() for _ in range(max_order + 1)]
        #: Per-order min-heaps shadowing ``_free_lists``.  Entries are
        #: deleted lazily: the heap top is popped past starts no longer
        #: in the live set before use.
        self._heaps = [[] for _ in range(max_order + 1)]
        self._free_frames = 0
        self._mask = FrameBitmap(frames)
        #: The bitmap's bytearray, aliased for the hot paths (slice
        #: assignment never reallocates it, so the alias stays valid).
        self._mask_bytes = self._mask.buf
        self._insert_span(base, frames)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_free(self, frame: int) -> bool:
        offset = frame - self.base
        if not 0 <= offset < self.total_frames:
            raise AllocationError(f"frame {frame} outside span")
        return bool(self._mask.buf[offset])

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate_block(self, order: int) -> FrameRange:
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range")
        return self._take_block(order)

    def _live_heap(self, order: int) -> "list[int]":
        """The order's heap, compacted when lazy deletion has let dead
        entries (buddies coalesced away without ever reaching the top)
        outnumber the live set.  Keeps heap size — and so push/pop cost
        and memory — proportional to the live free list on arbitrarily
        long runs."""
        heap = self._heaps[order]
        live = self._free_lists[order]
        if len(heap) > (len(live) << 2) + 8:
            heap[:] = live
            _heapify(heap)
        return heap

    def _take_block(self, order: int) -> FrameRange:
        """The reference allocate_block body with the scan replaced by
        the heap pop; split-down and mask clear are unchanged."""
        lists = self._free_lists
        live = lists[order]
        if live:
            # Exact-order hit: no upward search, no split-down.
            heap = self._live_heap(order)
            while heap[0] not in live:
                _heappop(heap)
            start = _heappop(heap)
            live.discard(start)
            count = 1 << order
            self._free_frames -= count
            offset = start - self.base
            self._mask_bytes[offset:offset + count] = (
                _ZERO_RUN[order] if order <= MAX_ORDER else bytes(count)
            )
            return _unchecked(start, count)
        source = order
        max_order = self.max_order
        while source <= max_order and not lists[source]:
            source += 1
        if source > max_order:
            raise OutOfMemoryError(
                f"no free block of order >= {order} "
                f"({self._free_frames} frames free)"
            )
        heap, live = self._live_heap(source), lists[source]
        while heap[0] not in live:
            _heappop(heap)
        start = _heappop(heap)
        live.discard(start)
        heaps = self._heaps
        while source > order:
            source -= 1
            buddy = start + (1 << source)
            lists[source].add(buddy)
            _heappush(heaps[source], buddy)
        count = 1 << order
        self._free_frames -= count
        offset = start - self.base
        self._mask_bytes[offset:offset + count] = (
            _ZERO_RUN[order] if order <= MAX_ORDER else bytes(count)
        )
        return _unchecked(start, count)

    def allocate_pages(self, pages: int) -> "list[FrameRange]":
        if pages <= 0:
            raise AllocationError(f"page count must be positive: {pages}")
        if pages > self._free_frames:
            raise OutOfMemoryError(
                f"requested {pages} pages, only {self._free_frames} free"
            )
        granted: "list[FrameRange]" = []
        append = granted.append
        remaining = pages
        lists = self._free_lists
        max_order = self.max_order
        # The frame sanitizer intercepts allocation by installing a
        # per-instance allocate_block wrapper; honour it when present,
        # otherwise go straight to the implementation (the wrapper's
        # range check is vacuous for internally computed orders).
        wrapper = self.__dict__.get("allocate_block")
        take = wrapper if wrapper is not None else self._take_block
        heaps = self._heaps
        mask = self._mask_bytes
        base = self.base
        try:
            while remaining > 0:
                want_order = min(max_order, remaining.bit_length() - 1)
                order = want_order
                # Fragmentation fallback: drop to the largest order that
                # actually has a block (identical to the reference scan).
                while order >= 0 and not lists[order]:
                    order -= 1
                if order < 0:
                    order = want_order
                live = lists[order]
                if wrapper is None and live:
                    # Same-order hit, inlined (the dominant case: a
                    # large request peels off order-max blocks).  Pop as
                    # many blocks of this order as the request and the
                    # live set allow in one batch: between same-order
                    # takes nothing is freed and no split-down runs, so
                    # higher lists stay as they are and the reference
                    # loop would pick this same order every time while
                    # remaining >= 1 << order.
                    heap = self._live_heap(order)
                    count = 1 << order
                    batch = remaining >> order
                    if batch > len(live):
                        batch = len(live)
                    # Blocks pop in ascending start order and are often
                    # contiguous (a freshly coalesced region re-split),
                    # so adjacent mask clears merge into one run.
                    run_offset = -1
                    run_length = 0
                    for _ in range(batch):
                        while heap[0] not in live:
                            _heappop(heap)
                        start = _heappop(heap)
                        live.discard(start)
                        offset = start - base
                        if offset == run_offset + run_length:
                            run_length += count
                        else:
                            if run_length:
                                mask[run_offset:run_offset + run_length] = (
                                    _ZERO_RUN[order]
                                    if run_length == count and order <= MAX_ORDER
                                    else bytes(run_length)
                                )
                            run_offset = offset
                            run_length = count
                        append(_unchecked(start, count))
                    if run_length:
                        mask[run_offset:run_offset + run_length] = (
                            _ZERO_RUN[order]
                            if run_length == count and order <= MAX_ORDER
                            else bytes(run_length)
                        )
                    taken = batch * count
                    self._free_frames -= taken
                    remaining -= taken
                else:
                    block = take(order)
                    append(block)
                    remaining -= block.count
        except OutOfMemoryError:
            for block in granted:
                self.free_span(block.start, block.count)
            raise
        return granted

    # ------------------------------------------------------------------
    # Free
    # ------------------------------------------------------------------

    def free_span(self, start: int, count: int) -> None:
        if count <= 0:
            raise AllocationError("free count must be positive")
        offset = start - self.base
        if offset < 0 or offset + count > self.total_frames:
            raise AllocationError(
                f"span [{start}, {start + count}) outside allocator"
            )
        if self._mask_bytes.find(1, offset, offset + count) != -1:
            raise AllocationError(
                f"double free within span [{start}, {start + count})"
            )
        self._insert_span(start, count)

    def _free_spans(self, ranges) -> None:
        """Sequential ``free_span`` over ``ranges`` with the per-range
        validation and the dominant single-aligned-block insert inlined
        (identical state transitions and identical error points; the
        general shape falls through to :meth:`_insert_span`)."""
        base = self.base
        total = self.total_frames
        mask = self._mask_bytes
        lists = self._free_lists
        heaps = self._heaps
        max_order = self.max_order
        # The free-frame count is flushed lazily: before every raise and
        # before delegating to _insert_span (which counts its own span),
        # so partial failures leave the same state as sequential
        # free_span calls would.
        freed = 0
        for frame_range in ranges:
            start = frame_range.start
            count = frame_range.count
            if count <= 0:
                self._free_frames += freed
                raise AllocationError("free count must be positive")
            offset = start - base
            if offset < 0 or offset + count > total:
                self._free_frames += freed
                raise AllocationError(
                    f"span [{start}, {start + count}) outside allocator"
                )
            if mask.find(1, offset, offset + count) != -1:
                self._free_frames += freed
                raise AllocationError(
                    f"double free within span [{start}, {start + count})"
                )
            order = count.bit_length() - 1
            if (
                count == 1 << order
                and order <= max_order
                and not offset & (count - 1)
            ):
                # One naturally aligned block: set the mask run and
                # coalesce upward, exactly as _insert_span would.
                mask[offset:offset + count] = (
                    _ONE_RUN[order] if order <= MAX_ORDER else b"\x01" * count
                )
                freed += count
                block = start
                while order < max_order:
                    bucket = lists[order]
                    buddy = base + ((block - base) ^ (1 << order))
                    if buddy not in bucket:
                        break
                    bucket.remove(buddy)
                    if buddy < block:
                        block = buddy
                    order += 1
                lists[order].add(block)
                _heappush(heaps[order], block)
            else:
                self._free_frames += freed
                freed = 0
                self._insert_span(start, count)
        self._free_frames += freed

    def _insert_span(self, start: int, count: int) -> None:
        """Reference _insert_span with the coalescing loop inlined and
        the mask write batched (numpy memset for large spans)."""
        offset = start - self.base
        if count < _BULK_FILL_FRAMES:
            self._mask_bytes[offset:offset + count] = b"\x01" * count
        else:
            self._mask.fill(offset, count, 1)
        self._free_frames += count
        base = self.base
        lists = self._free_lists
        heaps = self._heaps
        max_order = self.max_order
        cursor = start
        remaining = count
        while remaining > 0:
            cursor_offset = cursor - base
            align_order = (
                (cursor_offset & -cursor_offset).bit_length() - 1
                if cursor_offset
                else max_order
            )
            size_order = remaining.bit_length() - 1
            order = min(max_order, align_order, size_order)
            taken = 1 << order
            block = cursor
            while order < max_order:
                block_offset = block - base
                buddy = base + (block_offset ^ (1 << order))
                if buddy not in lists[order]:
                    break
                lists[order].discard(buddy)
                if buddy < block:
                    block = buddy
                order += 1
            lists[order].add(block)
            _heappush(heaps[order], block)
            cursor += taken
            remaining -= taken

    def _coalesce_insert(self, start: int, order: int) -> None:
        lists = self._free_lists
        while order < self.max_order:
            offset = start - self.base
            buddy = self.base + (offset ^ (1 << order))
            if buddy not in lists[order]:
                break
            lists[order].discard(buddy)
            start = min(start, buddy)
            order += 1
        lists[order].add(start)
        _heappush(self._heaps[order], start)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """The reference checks against the byte mask instead of the
        big-int mask."""
        total_free = 0
        seen: "list[tuple[int, int]]" = []
        mask = self._mask
        for order, starts in enumerate(self._free_lists):
            size = 1 << order
            for block_start in starts:
                if (block_start - self.base) % size != 0:
                    raise AllocationError(
                        f"misaligned free block at {block_start} order {order}"
                    )
                offset = block_start - self.base
                if mask.any_clear(offset, offset + size):
                    raise AllocationError("free list and mask disagree")
                seen.append((block_start, block_start + size))
                total_free += size
        seen.sort()
        for (_, end_a), (start_b, _) in zip(seen, seen[1:]):
            if end_a > start_b:
                raise AllocationError("overlapping free blocks")
        if total_free != self._free_frames:
            raise AllocationError(
                f"free accounting mismatch: {total_free} != {self._free_frames}"
            )
        if mask.popcount() != self._free_frames:
            raise AllocationError("mask population does not match free count")


class FastNode(MemoryNode):
    """:class:`MemoryNode` with the per-call zone bookkeeping hoisted.

    ``zones_for`` rebuilds a kind->zone dict on every allocation; the
    zone list is fixed once ``build_node`` returns, so the eligibility
    walk is memoised per page type.  ``free_ranges`` binds the owning
    buddy's ``free_span`` once when the node has a single zone (every
    FastMem node does) instead of re-resolving it per range.
    """

    def zones_for(self, page_type):
        # Safe to memoise: zones are appended only inside build_node,
        # before the node is handed to any caller of zones_for.
        cache = self.__dict__.get("_zones_for_cache")
        if cache is None:
            cache = {}
            self._zones_for_cache = cache
        zones = cache.get(page_type)
        if zones is None:
            zones = super().zones_for(page_type)
            cache[page_type] = zones
        return zones

    def free_ranges(self, ranges) -> None:
        zones = self.zones
        if len(zones) == 1:
            buddy = zones[0].buddy
            if buddy.__dict__.get("free_span") is None and isinstance(
                buddy, FastBuddy
            ):
                # No per-instance sanitizer wrapper: take the batched
                # free, which preserves the per-range sequential
                # semantics (coalescing is order-dependent).
                buddy._free_spans(ranges)
                return
            # Bound via the instance so a sanitizer free_span wrapper
            # still intercepts every free.
            free = buddy.free_span
            for frame_range in ranges:
                free(frame_range.start, frame_range.count)
            return
        for frame_range in ranges:
            zone = self._zone_owning(frame_range.start)
            zone.buddy.free_span(frame_range.start, frame_range.count)


def fast_build_node(node_id, tier, device, base_frame=0):
    """Drop-in ``build_node`` producing array-backed zones and nodes;
    substituted via the ``Hypervisor(node_builder=...)`` injection
    point when ``SimConfig.resolved_fast_path()`` is on."""
    return build_node(
        node_id,
        tier,
        device,
        base_frame,
        buddy_factory=FastBuddy,
        node_cls=FastNode,
    )


class FastSplitLru(SplitLru):
    """:class:`SplitLru` with O(1) active/inactive page counters.

    ``occupancy_snapshot`` reads ``active_pages``/``inactive_pages``
    once per node per sample; the baseline recomputes each with a full
    extent walk.  Here every membership or state transition adjusts two
    integers instead.  All transitions funnel through the overridden
    methods below; in-place ``extent.pages`` mutations (extent splits)
    arrive via :meth:`note_resized`.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self._active_page_count = 0
        self._inactive_page_count = 0

    def insert(self, extent: "PageExtent") -> None:
        super().insert(extent)
        self._active_page_count += extent.pages

    def remove(self, extent: "PageExtent") -> None:
        if extent.extent_id in self._active:
            self._active_page_count -= extent.pages
        elif extent.extent_id in self._inactive:
            self._inactive_page_count -= extent.pages
        super().remove(extent)

    def record_access(self, extent: "PageExtent") -> None:
        promoted = extent.extent_id in self._inactive
        super().record_access(extent)
        if promoted:
            pages = extent.pages
            self._inactive_page_count -= pages
            self._active_page_count += pages

    def deactivate(self, extent: "PageExtent") -> None:
        was_active = extent.extent_id in self._active
        super().deactivate(extent)
        if was_active:
            pages = extent.pages
            self._active_page_count -= pages
            self._inactive_page_count += pages

    def note_resized(self, extent: "PageExtent", delta_pages: int) -> None:
        if extent.extent_id in self._active:
            self._active_page_count += delta_pages
        elif extent.extent_id in self._inactive:
            self._inactive_page_count += delta_pages

    @property
    def active_pages(self) -> int:
        return self._active_page_count

    @property
    def inactive_pages(self) -> int:
        return self._inactive_page_count


class DemandAccumulator:
    """Flat per-device demand columns, indexed by first-touch order.

    One list per :data:`DEVICE_DEMAND_FIELDS` entry replaces the
    reference chain of frozen ``DeviceDemand`` merges.  In-place ``+=``
    in the same visit order produces the same left-associated float
    sums, and first-touch indexing reproduces the reference dict's
    insertion order, so :meth:`demands` materialises a bit-identical
    mapping.
    """

    __slots__ = ("devices", "index", "reads", "writes", "traffic")

    def __init__(self) -> None:
        self.devices = []
        self.index = {}
        self.reads = []
        self.writes = []
        self.traffic = []

    def add(self, device, read_misses, write_misses, traffic_bytes) -> None:
        # Indexed by identity, not value: a MemoryDevice dataclass hash
        # walks every field, and callers (fast_memory_demands) already
        # canonicalise equal devices to one instance.
        position = self.index.get(id(device))
        if position is None:
            self.index[id(device)] = len(self.devices)
            self.devices.append(device)
            self.reads.append(read_misses)
            self.writes.append(write_misses)
            self.traffic.append(traffic_bytes)
        else:
            self.reads[position] += read_misses
            self.writes[position] += write_misses
            self.traffic[position] += traffic_bytes

    def demands(self) -> "dict":
        columns = (self.reads, self.writes, self.traffic)
        return {
            device: DeviceDemand(
                **dict(
                    zip(
                        DEVICE_DEMAND_FIELDS,
                        (column[position] for column in columns),
                    )
                )
            )
            for position, device in enumerate(self.devices)
        }


def fast_memory_demands(engine: "SimulationEngine", demand: "EpochDemand"):
    """Array-backed twin of ``SimulationEngine._memory_demands``.

    Identical structure and visit order; two changes, neither visible
    in the result: the per-(region, device) frozen ``DeviceDemand``
    merge chain becomes in-place column adds in a
    :class:`DemandAccumulator`, and device dicts are keyed by identity
    over a canonicalised device set instead of by the field-walking
    dataclass hash.  Float additions keep the reference's
    left-associated order, and wear recording stays inside the inner
    loop, in the same order, with the same expression.  Pinned by
    tests/test_fast_equivalence.py.
    """
    kernel = engine.kernel
    nodes = kernel.nodes
    slowest = engine._slowest_device
    region_specs = engine.region_specs
    # Canonicalise the device universe once so the per-extent and
    # per-miss bookkeeping can key dicts by id() instead of the
    # field-walking dataclass hash.  Distinct-but-equal instances (which
    # the reference dict would merge) collapse to one representative
    # here, keeping the merge semantics identical.
    canonical = {}
    by_value = {}
    for node in nodes.values():
        device = node.device
        canonical[id(device)] = by_value.setdefault(device, device)
    canonical[id(slowest)] = by_value.setdefault(slowest, slowest)
    region_ids = kernel.regions
    extent_map = kernel.extents
    region_accesses: "list[RegionAccess]" = []
    placements = {}
    for region_id, (reads, writes) in demand.accesses.items():
        # Inlined kernel.has_region + kernel.region_extents (the maps
        # are plain dicts; the method round trips dominate at this
        # call rate).
        extent_ids = region_ids.get(region_id)
        if extent_ids is None:
            continue
        spec = region_specs.get(region_id)
        if spec is None:
            continue
        extents = [extent_map[eid] for eid in extent_ids]
        if len(extents) == 1:
            pages = extents[0].pages
        else:
            pages = sum(extent.pages for extent in extents)
        if pages == 0:
            continue
        region_accesses.append(
            _region_access(
                region_id,
                pages * PAGE_SIZE,
                reads,
                writes,
                spec.reuse,
                spec.bytes_per_miss,
            )
        )
        fractions = {}
        for extent in extents:
            device = canonical[
                id(slowest if extent.swapped else nodes[extent.node_id].device)
            ]
            entry = fractions.get(id(device))
            if entry is None:
                fractions[id(device)] = [device, extent.pages / pages]
            else:
                entry[1] = entry[1] + (extent.pages / pages)
        placements[region_id] = list(fractions.values())

    accumulator = DemandAccumulator()
    add = accumulator.add
    wear_record = engine.wear.record
    llc_misses = 0.0
    for (
        misses_region_id,
        read_misses,
        write_misses,
        traffic_bytes,
        bytes_per_miss,
        misses_total,
    ) in _fast_apportion(engine.cache, region_accesses):
        llc_misses += misses_total
        for device, fraction in placements[misses_region_id]:
            add(
                device,
                read_misses * fraction,
                write_misses * fraction,
                traffic_bytes * fraction,
            )
            # Endurance accounting: dirty-line writebacks are the
            # device's wear (2x per write miss: fill + writeback).
            wear_record(
                device,
                write_misses * fraction * bytes_per_miss * 2.0,
            )
    return accumulator.demands(), llc_misses
