"""Run metrics and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.guestos.kernel import AllocStats
from repro.mem.extent import PageType
from repro.units import NS_PER_SEC


@dataclass
class RunStats:
    """Accumulated per-run counters (all times in virtual nanoseconds)."""

    epochs: int = 0
    runtime_ns: float = 0.0
    cpu_ns: float = 0.0
    io_wait_ns: float = 0.0
    stall_ns_by_device: dict[str, float] = field(default_factory=dict)
    policy_overhead_ns: float = 0.0
    kernel_cost_ns: float = 0.0
    instructions: float = 0.0
    llc_misses: float = 0.0
    traffic_bytes: float = 0.0
    total_accesses: float = 0.0
    dropped_allocation_pages: int = 0

    def add_stall(self, device_name: str, stall_ns: float) -> None:
        self.stall_ns_by_device[device_name] = (
            self.stall_ns_by_device.get(device_name, 0.0) + stall_ns
        )

    @property
    def total_stall_ns(self) -> float:
        return sum(self.stall_ns_by_device.values())

    @property
    def mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / (self.instructions / 1000.0)


@dataclass
class RunResult:
    """Everything a benchmark needs from one simulation run."""

    workload_name: str
    policy_name: str
    metric: str
    work_units_per_epoch: float
    stats: RunStats
    #: Cumulative per-page-type allocation accounting (Figure 10's data).
    alloc_stats: dict[PageType, AllocStats] = field(default_factory=dict)
    #: Cumulative pages allocated per type (Figure 4's data).
    page_distribution: dict[PageType, int] = field(default_factory=dict)
    pages_migrated: int = 0
    pages_demoted: int = 0
    scan_cost_ns: float = 0.0
    migration_cost_ns: float = 0.0
    swap_pages_out: int = 0
    swap_pages_in: int = 0
    #: Cumulative write traffic per device name (endurance accounting).
    device_write_bytes: dict[str, float] = field(default_factory=dict)
    #: Projected device lifetime (years) per device name at the run's
    #: write rate, assuming start-gap-grade wear levelling.
    device_lifetime_years: dict[str, float] = field(default_factory=dict)
    #: Frame-ownership violations found by the frame sanitizer when the
    #: run was configured with ``SimConfig(sanitize=True)``; empty on a
    #: clean (or unsanitized) run.
    sanitizer_reports: list = field(default_factory=list)
    #: Fault kind -> times it fired, when the run carried a non-empty
    #: ``repro.faults.FaultPlan``; empty otherwise (so a faultless run
    #: compares field-by-field equal to a run predating injection).
    fault_counts: dict = field(default_factory=dict)
    #: Per-epoch ``repro.obs.EpochSample`` list when the run carried a
    #: telemetry bus with an in-memory sink; ``None`` otherwise.  Not
    #: part of the determinism-equivalence surface: cached results store
    #: it as a sidecar, and the PR 3 harness compares results with the
    #: timeline stripped.
    timeline: list | None = None

    @property
    def runtime_sec(self) -> float:
        return self.stats.runtime_ns / NS_PER_SEC

    @property
    def mpki(self) -> float:
        return self.stats.mpki

    @property
    def metric_value(self) -> float:
        """The workload's headline number: seconds, ops/s, or MB/s."""
        if self.metric == "seconds":
            return self.runtime_sec
        if self.runtime_sec <= 0:
            return 0.0
        total_units = self.work_units_per_epoch * self.stats.epochs
        return total_units / self.runtime_sec

    def fastmem_miss_ratio(
        self, page_types: tuple[PageType, ...] | None = None
    ) -> float:
        """Whole-run FastMem allocation miss ratio, optionally restricted
        to the given page types (Figure 10)."""
        requested = 0
        fast = 0
        for page_type, stats in self.alloc_stats.items():
            if page_types is not None and page_type not in page_types:
                continue
            requested += stats.requested_pages
            fast += stats.fast_granted_pages
        if requested == 0:
            return 0.0
        return 1.0 - fast / requested

    @property
    def total_pages_allocated(self) -> int:
        return sum(self.page_distribution.values())


def gain_percent(result: RunResult, baseline: RunResult) -> float:
    """Percentage gain of ``result`` over ``baseline``.

    Both runtime and throughput metrics reduce to runtime ratios (the
    engines run a fixed amount of work), so gains are computed from
    runtimes: 100% means twice as fast.
    """
    if result.stats.runtime_ns <= 0:
        raise ConfigurationError("result has no runtime")
    return (baseline.stats.runtime_ns / result.stats.runtime_ns - 1.0) * 100.0


def slowdown_factor(result: RunResult, baseline: RunResult) -> float:
    """How many times slower ``result`` is than ``baseline``."""
    if baseline.stats.runtime_ns <= 0:
        raise ConfigurationError("baseline has no runtime")
    return result.stats.runtime_ns / baseline.stats.runtime_ns
