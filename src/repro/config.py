"""Top-level simulation configuration.

A :class:`SimConfig` describes one emulated platform: the FastMem device,
the SlowMem device (usually throttled DRAM, Section 2.1), capacities, the
LLC, the CPU, and the epoch length.  The defaults reproduce the paper's
evaluation platform: 16-core 2.67 GHz Xeon, 16 MB LLC, DRAM FastMem, and
SlowMem throttled to ~5x latency / ~9x less bandwidth (Section 5.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.hw.cache import CacheConfig
from repro.hw.memdevice import DRAM, MemoryDevice, MemoryKind
from repro.hw.throttle import DEFAULT_SLOWMEM, ThrottleConfig, throttled_device
from repro.hw.timing import CpuConfig
from repro.units import GIB, NS_PER_MS, pages_of_bytes

#: Environment switch for the array-backed epoch hot path
#: (:mod:`repro.sim.fast`) when ``SimConfig.fast_path`` is left unset.
#: ``"1"`` enables it; anything else (or unset) keeps the reference
#: path.  Results are pinned bit-identical either way
#: (tests/test_fast_equivalence.py), which is why the knob is never
#: part of any spec or cache key.
FAST_PATH_ENV = "REPRO_FAST"


@dataclass
class SimConfig:
    """One emulated platform + run parameters."""

    fast_capacity_bytes: int = 2 * GIB
    slow_capacity_bytes: int = 8 * GIB
    #: FastMem device template (capacity is overridden).
    fast_device: MemoryDevice = field(default_factory=lambda: DRAM)
    #: SlowMem is derived by throttling unless ``slow_device`` is given.
    slow_throttle: ThrottleConfig = field(default_factory=lambda: DEFAULT_SLOWMEM)
    slow_device: MemoryDevice | None = None
    llc: CacheConfig = field(default_factory=CacheConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    epoch_ms: float = 100.0
    cpus: int = 16
    seed: int = 7
    #: Attach the frame sanitizer (repro.devtools.sanitizer) to the
    #: guest: shadow-tracks every frame alloc/free/move and reports
    #: double-frees, leaks, use-after-free, and migration ownership
    #: races in RunResult.sanitizer_reports.  Slows the run; debug only.
    sanitize: bool = False
    #: Optional hotness-tracker override (scan costs, thresholds) —
    #: used by the Figure 8 overhead sweeps.
    hotness_config: object | None = None
    #: Deterministic fault schedule (repro.faults).  ``None`` or an
    #: empty plan means no injector is built at all — the simulator
    #: takes the exact seed code path (the no-perturbation contract).
    fault_plan: FaultPlan | None = None
    #: Array-backed epoch hot path (:mod:`repro.sim.fast`).  ``None``
    #: defers to the ``REPRO_FAST`` environment variable; ``True`` /
    #: ``False`` force it.  Purely an execution-speed knob: the fast
    #: path is bit-identical to the reference path by contract.
    fast_path: bool | None = None

    def __post_init__(self) -> None:
        if self.slow_capacity_bytes <= 0:
            raise ConfigurationError("SlowMem capacity must be positive")
        if self.fast_capacity_bytes < 0:
            raise ConfigurationError("FastMem capacity must be non-negative")
        if self.epoch_ms <= 0:
            raise ConfigurationError("epoch length must be positive")

    @property
    def epoch_ns(self) -> float:
        return self.epoch_ms * NS_PER_MS

    def resolved_fast_path(self) -> bool:
        """Whether this run takes the array-backed hot path.

        Explicit ``fast_path`` wins; otherwise ``REPRO_FAST=1`` in the
        environment enables it.  Never feeds a cache key or a spec
        hash — the two paths are interchangeable by the differential
        oracle (tests/test_fast_equivalence.py).
        """
        if self.fast_path is not None:
            return bool(self.fast_path)
        return os.environ.get(FAST_PATH_ENV) == "1"

    def resolved_fast_device(self) -> MemoryDevice:
        device = self.fast_device.with_capacity(self.fast_capacity_bytes)
        if device.kind is MemoryKind.DRAM:
            device = device.with_name("fastmem")
        return device

    def resolved_slow_device(self) -> MemoryDevice:
        if self.slow_device is not None:
            return self.slow_device.with_capacity(self.slow_capacity_bytes)
        return throttled_device(
            self.slow_throttle,
            base=self.fast_device,
            name="slowmem",
            capacity_bytes=self.slow_capacity_bytes,
        )

    @property
    def fast_pages(self) -> int:
        return pages_of_bytes(self.fast_capacity_bytes)

    @property
    def slow_pages(self) -> int:
        return pages_of_bytes(self.slow_capacity_bytes)
