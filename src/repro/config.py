"""Top-level simulation configuration.

A :class:`SimConfig` describes one emulated platform: the FastMem device,
the SlowMem device (usually throttled DRAM, Section 2.1), capacities, the
LLC, the CPU, and the epoch length.  The defaults reproduce the paper's
evaluation platform: 16-core 2.67 GHz Xeon, 16 MB LLC, DRAM FastMem, and
SlowMem throttled to ~5x latency / ~9x less bandwidth (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.hw.cache import CacheConfig
from repro.hw.memdevice import DRAM, MemoryDevice, MemoryKind
from repro.hw.throttle import DEFAULT_SLOWMEM, ThrottleConfig, throttled_device
from repro.hw.timing import CpuConfig
from repro.units import GIB, NS_PER_MS, pages_of_bytes


@dataclass
class SimConfig:
    """One emulated platform + run parameters."""

    fast_capacity_bytes: int = 2 * GIB
    slow_capacity_bytes: int = 8 * GIB
    #: FastMem device template (capacity is overridden).
    fast_device: MemoryDevice = field(default_factory=lambda: DRAM)
    #: SlowMem is derived by throttling unless ``slow_device`` is given.
    slow_throttle: ThrottleConfig = field(default_factory=lambda: DEFAULT_SLOWMEM)
    slow_device: MemoryDevice | None = None
    llc: CacheConfig = field(default_factory=CacheConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    epoch_ms: float = 100.0
    cpus: int = 16
    seed: int = 7
    #: Attach the frame sanitizer (repro.devtools.sanitizer) to the
    #: guest: shadow-tracks every frame alloc/free/move and reports
    #: double-frees, leaks, use-after-free, and migration ownership
    #: races in RunResult.sanitizer_reports.  Slows the run; debug only.
    sanitize: bool = False
    #: Optional hotness-tracker override (scan costs, thresholds) —
    #: used by the Figure 8 overhead sweeps.
    hotness_config: object | None = None
    #: Deterministic fault schedule (repro.faults).  ``None`` or an
    #: empty plan means no injector is built at all — the simulator
    #: takes the exact seed code path (the no-perturbation contract).
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.slow_capacity_bytes <= 0:
            raise ConfigurationError("SlowMem capacity must be positive")
        if self.fast_capacity_bytes < 0:
            raise ConfigurationError("FastMem capacity must be non-negative")
        if self.epoch_ms <= 0:
            raise ConfigurationError("epoch length must be positive")

    @property
    def epoch_ns(self) -> float:
        return self.epoch_ms * NS_PER_MS

    def resolved_fast_device(self) -> MemoryDevice:
        device = self.fast_device.with_capacity(self.fast_capacity_bytes)
        if device.kind is MemoryKind.DRAM:
            device = device.with_name("fastmem")
        return device

    def resolved_slow_device(self) -> MemoryDevice:
        if self.slow_device is not None:
            return self.slow_device.with_capacity(self.slow_capacity_bytes)
        return throttled_device(
            self.slow_throttle,
            base=self.fast_device,
            name="slowmem",
            capacity_bytes=self.slow_capacity_bytes,
        )

    @property
    def fast_pages(self) -> int:
        return pages_of_bytes(self.fast_capacity_bytes)

    @property
    def slow_pages(self) -> int:
        return pages_of_bytes(self.slow_capacity_bytes)
