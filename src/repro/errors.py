"""Exception hierarchy for the HeteroOS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers embedding the simulator can catch one type.  Subclasses mirror the
major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A simulation or device configuration is inconsistent."""


class OutOfMemoryError(ReproError):
    """A frame pool, node, or machine ran out of capacity."""


class SwapWriteError(ReproError):
    """A swap-device page write failed transiently (no state changed).

    Raised by :class:`repro.guestos.swap.SwapDevice` under fault
    injection; reclaim paths treat it as "this victim is temporarily
    unswappable" and move on to the next candidate."""


class AllocationError(ReproError):
    """An allocator was used incorrectly (double free, bad order, ...)."""


class PlacementError(ReproError):
    """A placement policy produced an invalid decision."""


class MigrationError(ReproError):
    """A page migration request was invalid."""


class ChannelError(ReproError):
    """Guest/VMM coordination channel misuse."""


class WorkloadError(ReproError):
    """A workload emitted an inconsistent demand stream."""


class SharingError(ReproError):
    """Multi-VM resource sharing (max-min / DRF) invariant violation."""


class SweepError(ReproError):
    """Parallel/cached experiment execution failed (repro.sim.parallel)."""


class ServeError(ReproError):
    """Experiment-service misuse or failure (repro.serve): bad job
    payloads, a client talking to a drained daemon, transport errors
    surfaced by :class:`repro.serve.client.ServeClient`."""


class ObservabilityError(ReproError):
    """Telemetry bus / sink / timeline misuse (repro.obs)."""


class DevtoolsError(ReproError):
    """Base class for the static-analysis / sanitizer tooling."""


class LintError(DevtoolsError):
    """heterolint misuse (bad rule registration, unreadable input)."""


class SanitizerError(DevtoolsError):
    """FrameSanitizer detected a frame-ownership violation (strict mode)."""
