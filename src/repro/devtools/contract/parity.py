"""The field-parity primitive.

Every contract rule is some instance of: two hand-maintained name sets
must stay equal, modulo an *explicitly declared* exclusion list that
carries a human reason.  ``field_parity`` checks one such pair and
emits findings anchored on the drifted declaration; stale exclusions
(entries that no longer exclude anything) are findings too, so the
declared lists cannot rot.

This is deliberately the extension hook for the planned array-backed
fast path (ROADMAP item 2): pinning its field set to the dict-backed
reference is one more ``field_parity`` call with the new extractor on
one side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.devtools.lint import Finding

__all__ = ["Exclusions", "FieldSet", "field_parity"]


@dataclass(frozen=True)
class FieldSet:
    """One side of a parity check: named fields with source anchors."""

    #: Human description used in messages ("ExperimentSpec fields").
    label: str
    #: File the set is declared in (finding path for missing names).
    path: str
    #: Line of the declaration itself (fallback finding anchor).
    line: int
    #: name -> declaration line (0 when unknown; falls back to `line`).
    fields: "Mapping[str, int]" = field(default_factory=dict)

    def line_of(self, name: str) -> int:
        return self.fields.get(name) or self.line


@dataclass(frozen=True)
class Exclusions:
    """A declared name -> reason map with its own source anchor."""

    #: Marker name as written in the source ("NON_ADDITIVE_FIELDS").
    label: str
    path: str
    line: int
    reasons: "Mapping[str, str]" = field(default_factory=dict)

    def covers(self, name: str) -> bool:
        return bool(self.reasons.get(name))


_NO_EXCLUSIONS = Exclusions(label="", path="", line=0, reasons={})


def field_parity(
    rule_id: str,
    left: FieldSet,
    right: FieldSet,
    excluded: "Exclusions | None" = None,
    check_right: bool = True,
    check_stale: bool = True,
    function: str = "",
) -> "Iterator[Finding]":
    """Findings for every parity violation between two field sets.

    ``excluded`` declares names allowed in ``left`` without a ``right``
    counterpart; each entry needs a non-empty reason, and entries that
    no longer name a ``left`` field (or whose field reappeared in
    ``right``) are reported as stale.  ``check_right=False`` makes the
    check one-directional (``right`` may be a superset);
    ``check_stale=False`` skips the stale-entry validation for callers
    that share one exclusion map across several parity checks and
    validate it once themselves.
    """
    exclusions = excluded if excluded is not None else _NO_EXCLUSIONS
    left_names = set(left.fields)
    right_names = set(right.fields)
    for name in sorted(left_names - right_names):
        if exclusions.covers(name):
            continue
        hint = (
            f" or declare it in {exclusions.label} with a reason"
            if exclusions.label
            else ""
        )
        yield Finding(
            rule_id=rule_id,
            path=left.path,
            line=left.line_of(name),
            col=0,
            message=(
                f"{left.label} field {name!r} has no counterpart in "
                f"{right.label} ({right.path}); add it{hint}"
            ),
            function=function,
        )
    if check_right:
        for name in sorted(right_names - left_names):
            yield Finding(
                rule_id=rule_id,
                path=right.path,
                line=right.line_of(name),
                col=0,
                message=(
                    f"{right.label} lists {name!r} but {left.label} has "
                    "no such field; remove it or add the field"
                ),
                function=function,
            )
    if not check_stale:
        return
    for name in sorted(exclusions.reasons):
        reason = exclusions.reasons[name]
        if not isinstance(reason, str) or not reason.strip():
            yield Finding(
                rule_id=rule_id,
                path=exclusions.path,
                line=exclusions.line,
                col=0,
                message=(
                    f"{exclusions.label} entry {name!r} needs a "
                    "non-empty reason string"
                ),
                function=function,
            )
            continue
        if name not in left_names:
            yield Finding(
                rule_id=rule_id,
                path=exclusions.path,
                line=exclusions.line,
                col=0,
                message=(
                    f"stale {exclusions.label} entry {name!r}: "
                    f"{left.label} has no such field"
                ),
                function=function,
            )
        elif name in right_names:
            yield Finding(
                rule_id=rule_id,
                path=exclusions.path,
                line=exclusions.line,
                col=0,
                message=(
                    f"stale {exclusions.label} entry {name!r}: the field "
                    f"is present in {right.label}, so the exclusion no "
                    "longer applies"
                ),
                function=function,
            )
