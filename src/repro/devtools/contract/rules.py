"""The six heterocontract rules.

Each rule instantiates the :mod:`~repro.devtools.contract.parity`
primitive (or the effect summaries) over a pair of hand-maintained
declarations that PR history shows drift apart:

* ``contract-spec-field`` — ExperimentSpec / ThrottleConfig /
  HotnessConfig / FaultPlan fields vs. the canonical-JSON cache key in
  ``sim/parallel.py``; a silently-dropped field is a silent cache
  collision across the whole sweep substrate.
* ``contract-sample-sum`` — EpochSample additive fields vs. RunStats /
  RunResult aggregates, both directions, modulo the declared
  ``NON_ADDITIVE_FIELDS`` / ``UNSAMPLED_AGGREGATES`` lists in
  ``obs/sample.py``.
* ``contract-fault-kind`` — every ``FAULT_KINDS`` entry has a
  ``KIND_SOURCES`` telemetry source naming a real module and a
  ``fires("<kind>")`` degradation handler reachable from the engine.
* ``contract-obs-pure`` — the PR 4 no-perturbation contract, certified
  statically: nothing reachable from ``obs/`` writes state outside
  obs-owned classes (plus the declared ``OBS_WRITE_ALLOWLIST``).
* ``contract-registry`` — policy/workload registries are exhaustive
  against the classes and factories actually defined.
* ``contract-fast-mirror`` — the ``DEVICE_DEMAND_FIELDS`` accumulator
  columns in ``sim/fast.py`` vs. the ``DeviceDemand`` dataclass in
  ``hw/timing.py``, both directions; a DeviceDemand field without a
  column is silently dropped by the array-backed fast path.

Findings reuse heterolint's :class:`Finding` shape, so suppression
comments, the committed baseline, and SARIF output all apply; the
SARIF log groups them under a fifth ``heterocontract`` tool run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.devtools.contract.extract import (
    call_sites_of,
    dataclass_fields,
    decorated_registrations,
    dict_literal_entries,
    load_marker,
    marker_site,
    returned_dict_keys,
    used_attribute_names,
    used_call_names,
)
from repro.devtools.contract.parity import (
    Exclusions,
    FieldSet,
    field_parity,
)
from repro.devtools.effect.summary import EffectAnalysis
from repro.devtools.flow.graph import ClassInfo, ProjectIndex
from repro.devtools.lint import FileContext, Finding

__all__ = ["ContractRules", "contract_rule_metadata"]


def contract_rule_metadata() -> "dict[str, str]":
    """Every contract rule id -> one-line rationale (the ``contract-``
    part of the namespace documented in docs/devtools.md)."""
    return {
        "contract-spec-field": (
            "a spec/config field that does not flow into the canonical "
            "cache key makes two different experiments share one cache "
            "entry — silent cache collisions across the sweep substrate"
        ),
        "contract-sample-sum": (
            "EpochSample additive fields and RunStats/RunResult "
            "aggregates must mirror each other (modulo the declared "
            "non-additive list) or timeline sums silently stop "
            "reproducing run totals"
        ),
        "contract-fault-kind": (
            "a fault kind without a reachable fires() degradation "
            "handler or a telemetry source is injectable but inert — "
            "chaos runs silently test nothing"
        ),
        "contract-obs-pure": (
            "nothing reachable from the observability plane may write "
            "non-obs state (the no-perturbation contract): telemetry "
            "observes, never steers"
        ),
        "contract-registry": (
            "a policy class or workload factory missing from its "
            "registry is invisible to sweeps, figures, and the "
            "equivalence harness — dead code that looks implemented"
        ),
        "contract-fast-mirror": (
            "the fast path accumulates DeviceDemand through the flat "
            "DEVICE_DEMAND_FIELDS columns; a dataclass field without a "
            "column is silently dropped from every fast-path result "
            "while the differential oracle still passes on old fields"
        ),
    }


@dataclass
class _Anchor:
    """Carries the finding's file context so ``deep_lint_paths`` can
    honor suppression comments, mirroring ``(FunctionInfo, Finding)``
    pairs from the other deep analyses."""

    ctx: FileContext


def _pattern_match(ident: str, patterns: "tuple[str, ...]") -> bool:
    for pattern in patterns:
        if pattern.endswith("*"):
            if ident.startswith(pattern[:-1]):
                return True
        elif ident == pattern:
            return True
    return False


class ContractRules:
    """Run the six contract rules over one project index.

    ``analysis`` (the heteroeffect fixpoint) powers the obs-purity rule
    and the fault-handler reachability check; pass ``None`` to skip
    those (the pure field-parity rules still run).
    """

    def __init__(
        self,
        index: ProjectIndex,
        analysis: "EffectAnalysis | None" = None,
    ) -> None:
        self.index = index
        self.analysis = analysis
        self._ctx_by_path: "dict[str, FileContext]" = {
            module.ctx.relpath: module.ctx
            for module in index.modules.values()
        }

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def check(self) -> "Iterator[tuple[_Anchor, Finding]]":
        for finding in self._spec_field():
            yield self._pair(finding)
        for finding in self._sample_sum():
            yield self._pair(finding)
        for finding in self._fault_kind():
            yield self._pair(finding)
        for finding in self._obs_pure():
            yield self._pair(finding)
        for finding in self._registry():
            yield self._pair(finding)
        for finding in self._fast_mirror():
            yield self._pair(finding)

    def _pair(self, finding: Finding) -> "tuple[_Anchor, Finding]":
        ctx = self._ctx_by_path.get(finding.path)
        if ctx is None:
            # Finding in a file the index did not parse; synthesize an
            # empty context so suppression lookup is a no-op.
            ctx = FileContext.parse("", finding.path)
        return _Anchor(ctx), finding

    # ------------------------------------------------------------------
    # Shared extraction helpers
    # ------------------------------------------------------------------

    def _class(self, module: str, name: str) -> "ClassInfo | None":
        return self.index.classes.get(f"{module}.{name}")

    def _class_fieldset(
        self, cinfo: ClassInfo, label: str
    ) -> FieldSet:
        module = self.index.modules[cinfo.module]
        return FieldSet(
            label=label,
            path=module.ctx.relpath,
            line=cinfo.node.lineno,
            fields=dataclass_fields(cinfo),
        )

    def _serializer_fieldset(
        self, qualname: str, label: str
    ) -> "FieldSet | None":
        info = self.index.functions.get(qualname)
        if info is None:
            return None
        return FieldSet(
            label=label,
            path=info.ctx.relpath,
            line=info.node.lineno,
            fields=returned_dict_keys(info),
        )

    def _exclusions(self, module_name: str, marker: str) -> Exclusions:
        """The declared exclusion map, or an empty one anchored at the
        module head when the marker is absent."""
        value = load_marker(self.index, module_name, marker)
        site = marker_site(self.index, module_name, marker)
        module = self.index.modules.get(module_name)
        path = module.ctx.relpath if module is not None else module_name
        if site is not None and isinstance(value, dict):
            return Exclusions(
                label=marker, path=site[0], line=site[1], reasons=value
            )
        return Exclusions(label=marker, path=path, line=1, reasons={})

    def _tuple_fieldset(
        self, module_name: str, marker: str, label: str
    ) -> "FieldSet | None":
        value = load_marker(self.index, module_name, marker)
        site = marker_site(self.index, module_name, marker)
        if site is None or not isinstance(value, (tuple, list)):
            return None
        return FieldSet(
            label=label,
            path=site[0],
            line=site[1],
            fields={str(name): site[1] for name in value},
        )

    def _reachable_from(
        self, root_modules: "tuple[str, ...]"
    ) -> "set[str]":
        """Qualnames reachable (BFS over effect reach edges) from every
        function defined in the given modules."""
        assert self.analysis is not None
        reached: "set[str]" = set()
        queue: "list[str]" = [
            qualname
            for qualname, info in self.index.functions.items()
            if info.module in root_modules
        ]
        reached.update(queue)
        while queue:
            current = queue.pop()
            for callee in self.analysis.reach_edges.get(current, ()):
                if callee not in reached:
                    reached.add(callee)
                    queue.append(callee)
        return reached

    # ------------------------------------------------------------------
    # contract-spec-field
    # ------------------------------------------------------------------

    #: (module, dataclass, canonical-serializer qualname) triples whose
    #: field sets must mirror their serializer's dict keys exactly.
    _CANONICAL_PAIRS = (
        ("sim.parallel", "ExperimentSpec", "ExperimentSpec.canonical"),
        ("faults", "FaultPlan", "FaultPlan.canonical"),
        ("faults", "FaultSpec", "FaultSpec.canonical"),
    )

    #: Config classes that reach the cache key through make_spec
    #: normalization: "attrs" means every field must be read by name in
    #: make_spec; "asdict" means a dataclasses.asdict() call carries
    #: all fields wholesale (future fields flow automatically).
    _SPEC_SOURCES = (
        ("hw.throttle", "ThrottleConfig", "attrs"),
        ("vmm.hotness", "HotnessConfig", "asdict"),
    )

    _SPEC_MODULE = "sim.parallel"

    def _spec_field(self) -> "Iterator[Finding]":
        rule = "contract-spec-field"
        excluded = self._exclusions(self._SPEC_MODULE, "CACHE_KEY_EXCLUDED")
        spec_field_names: "set[str]" = set()
        canonical_keys: "set[str]" = set()
        for module, cls_name, serializer in self._CANONICAL_PAIRS:
            cinfo = self._class(module, cls_name)
            keys = self._serializer_fieldset(
                f"{module}.{serializer}",
                f"{cls_name}.canonical() cache-key dict",
            )
            if cinfo is None or keys is None:
                continue
            fields = self._class_fieldset(cinfo, f"{cls_name}")
            if cls_name == "ExperimentSpec":
                spec_field_names = set(fields.fields)
                canonical_keys = set(keys.fields)
            yield from field_parity(
                rule, fields, keys,
                excluded=excluded if cls_name == "ExperimentSpec" else None,
                check_stale=False,
                function=f"{module}.{serializer}",
            )
        make_spec = self.index.functions.get(f"{self._SPEC_MODULE}.make_spec")
        spec_cls = self._class(self._SPEC_MODULE, "ExperimentSpec")
        if make_spec is not None and spec_cls is not None:
            params = {
                arg.arg: arg.lineno
                for arg in (
                    make_spec.node.args.posonlyargs
                    + make_spec.node.args.args
                    + make_spec.node.args.kwonlyargs
                )
                if arg.arg not in ("self", "cls")
            }
            param_set = FieldSet(
                label="make_spec() parameters",
                path=make_spec.ctx.relpath,
                line=make_spec.node.lineno,
                fields=params,
            )
            spec_fields = self._class_fieldset(
                spec_cls, "ExperimentSpec fields"
            )
            # A make_spec argument that never lands in the spec is
            # silently dropped from the key; a spec field make_spec
            # cannot populate is unreachable from every driver.
            yield from field_parity(
                rule, param_set, spec_fields,
                function=f"{self._SPEC_MODULE}.make_spec",
            )
            spec_attrs = used_attribute_names(make_spec)
            spec_calls = used_call_names(make_spec)
            for module, cls_name, mode in self._SPEC_SOURCES:
                cinfo = self._class(module, cls_name)
                if cinfo is None:
                    continue
                mod = self.index.modules[cinfo.module]
                if mode == "asdict":
                    if "asdict" not in spec_calls:
                        yield Finding(
                            rule_id=rule,
                            path=mod.ctx.relpath,
                            line=cinfo.node.lineno,
                            col=0,
                            message=(
                                f"{cls_name} is declared to flow into the "
                                "cache key wholesale, but make_spec() has "
                                "no dataclasses.asdict() call flattening "
                                "it; its fields no longer reach the key"
                            ),
                            function=f"{self._SPEC_MODULE}.make_spec",
                        )
                    continue
                for name, line in sorted(
                    dataclass_fields(cinfo).items()
                ):
                    if name in spec_attrs or excluded.covers(name):
                        continue
                    yield Finding(
                        rule_id=rule,
                        path=mod.ctx.relpath,
                        line=line,
                        col=0,
                        message=(
                            f"{cls_name} field {name!r} never flows into "
                            "the ExperimentSpec cache key (make_spec() "
                            "does not read it); normalize it in "
                            "make_spec or declare it in "
                            "CACHE_KEY_EXCLUDED with a reason"
                        ),
                        function=f"{self._SPEC_MODULE}.make_spec",
                    )
        run_spec = self.index.functions.get(f"{self._SPEC_MODULE}.run_spec")
        run_extras: "dict[str, int]" = {}
        if run_spec is not None:
            run_extras = {
                arg.arg: arg.lineno
                for arg in run_spec.node.args.args[1:]
                + run_spec.node.args.kwonlyargs
            }
            yield from field_parity(
                rule,
                FieldSet(
                    label="run_spec() non-spec parameters",
                    path=run_spec.ctx.relpath,
                    line=run_spec.node.lineno,
                    fields=run_extras,
                ),
                FieldSet(
                    label="the ExperimentSpec cache key",
                    path=run_spec.ctx.relpath,
                    line=run_spec.node.lineno,
                ),
                excluded=excluded,
                check_right=False,
                check_stale=False,
                function=f"{self._SPEC_MODULE}.run_spec",
            )
        # Validate the shared exclusion map once: every entry must still
        # name either a non-spec run input or a spec field deliberately
        # kept out of the canonical key.
        for name in sorted(excluded.reasons):
            reason = excluded.reasons[name]
            if not isinstance(reason, str) or not reason.strip():
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"CACHE_KEY_EXCLUDED entry {name!r} needs a "
                        "non-empty reason string"
                    ),
                    function=f"{self._SPEC_MODULE}.run_spec",
                )
            elif name in canonical_keys:
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"stale CACHE_KEY_EXCLUDED entry {name!r}: the "
                        "field is part of the canonical cache key after "
                        "all"
                    ),
                    function=f"{self._SPEC_MODULE}.run_spec",
                )
            elif name not in run_extras and name not in spec_field_names:
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"stale CACHE_KEY_EXCLUDED entry {name!r}: "
                        "neither a run_spec parameter nor an "
                        "ExperimentSpec field uses that name"
                    ),
                    function=f"{self._SPEC_MODULE}.run_spec",
                )

    # ------------------------------------------------------------------
    # contract-sample-sum
    # ------------------------------------------------------------------

    _SAMPLE_MODULE = "obs.sample"
    _STATS_MODULE = "sim.stats"

    def _sample_sum(self) -> "Iterator[Finding]":
        rule = "contract-sample-sum"
        sample_cls = self._class(self._SAMPLE_MODULE, "EpochSample")
        stats_cls = self._class(self._STATS_MODULE, "RunStats")
        result_cls = self._class(self._STATS_MODULE, "RunResult")
        if sample_cls is None or stats_cls is None:
            return
        sample_fields = self._class_fieldset(sample_cls, "EpochSample")
        # (a) The dataclass and the serialization-order tuples must
        # agree exactly, or to_dict()/from_dict() silently drop fields.
        scalar = self._tuple_fieldset(
            self._SAMPLE_MODULE, "_SCALAR_FIELDS", "_SCALAR_FIELDS"
        )
        dicts = self._tuple_fieldset(
            self._SAMPLE_MODULE, "_DICT_FIELDS", "_DICT_FIELDS"
        )
        if scalar is not None and dicts is not None:
            serialized = FieldSet(
                label="the _SCALAR_FIELDS/_DICT_FIELDS serialization order",
                path=scalar.path,
                line=scalar.line,
                fields={**scalar.fields, **dicts.fields},
            )
            yield from field_parity(
                rule, sample_fields, serialized,
                function=f"{self._SAMPLE_MODULE}.EpochSample.to_dict",
            )
        # (b) Additive sample fields must re-sum into a same-named
        # RunStats/RunResult aggregate; declared non-additive fields
        # (gauges, ordinals, cumulative counter readings) are exempt.
        aggregates: "dict[str, int]" = dict(
            dataclass_fields(stats_cls)
        )
        if result_cls is not None:
            for name, line in dataclass_fields(result_cls).items():
                aggregates.setdefault(name, line)
        stats_path = self.index.modules[stats_cls.module].ctx.relpath
        aggregate_set = FieldSet(
            label="RunStats/RunResult aggregates",
            path=stats_path,
            line=stats_cls.node.lineno,
            fields=aggregates,
        )
        non_additive = self._exclusions(
            self._SAMPLE_MODULE, "NON_ADDITIVE_FIELDS"
        )
        yield from field_parity(
            rule, sample_fields, aggregate_set,
            excluded=non_additive,
            check_right=False,
            function=f"{self._SAMPLE_MODULE}.EpochSample",
        )
        # (c) Reverse direction: every RunStats aggregate is fed by a
        # same-named sample field or is declared unsampled.
        unsampled = self._exclusions(
            self._SAMPLE_MODULE, "UNSAMPLED_AGGREGATES"
        )
        yield from field_parity(
            rule,
            FieldSet(
                label="RunStats",
                path=stats_path,
                line=stats_cls.node.lineno,
                fields=dataclass_fields(stats_cls),
            ),
            FieldSet(
                label="EpochSample per-epoch fields",
                path=sample_fields.path,
                line=sample_fields.line,
                fields=sample_fields.fields,
            ),
            excluded=unsampled,
            check_right=False,
            function=f"{self._STATS_MODULE}.RunStats",
        )

    # ------------------------------------------------------------------
    # contract-fault-kind
    # ------------------------------------------------------------------

    _FAULTS_MODULE = "faults"
    #: Modules whose functions root the engine-reachability walk for
    #: degradation handlers (the simulation paths a sweep exercises).
    _ENGINE_ROOTS = ("sim.engine", "sim.runner", "sim.parallel")

    def _fault_kind(self) -> "Iterator[Finding]":
        rule = "contract-fault-kind"
        kinds = self._tuple_fieldset(
            self._FAULTS_MODULE, "FAULT_KINDS", "FAULT_KINDS"
        )
        if kinds is None:
            return
        sources = load_marker(
            self.index, self._FAULTS_MODULE, "KIND_SOURCES"
        )
        sources_site = marker_site(
            self.index, self._FAULTS_MODULE, "KIND_SOURCES"
        )
        if isinstance(sources, dict) and sources_site is not None:
            source_set = FieldSet(
                label="KIND_SOURCES telemetry sources",
                path=sources_site[0],
                line=sources_site[1],
                fields={name: sources_site[1] for name in sources},
            )
            yield from field_parity(
                rule, kinds, source_set,
                function=f"{self._FAULTS_MODULE}.KIND_SOURCES",
            )
            for kind in sorted(sources):
                component = sources[kind]
                if (
                    isinstance(component, str)
                    and component in self.index.modules
                ):
                    continue
                yield Finding(
                    rule_id=rule,
                    path=source_set.path,
                    line=source_set.line,
                    col=0,
                    message=(
                        f"KIND_SOURCES[{kind!r}] names component "
                        f"{component!r}, which is not a project module; "
                        "telemetry events would carry a dangling source"
                    ),
                    function=f"{self._FAULTS_MODULE}.KIND_SOURCES",
                )
        sites: "dict[str, list]" = {}
        for info, kind, line, col in call_sites_of(self.index, "fires"):
            if info.module == self._FAULTS_MODULE:
                continue
            sites.setdefault(kind, []).append((info, line, col))
        for kind, kind_sites in sorted(sites.items()):
            if kind in kinds.fields:
                continue
            info, line, col = kind_sites[0]
            yield Finding(
                rule_id=rule,
                path=info.ctx.relpath,
                line=line,
                col=col,
                message=(
                    f"fires({kind!r}) names a fault kind missing from "
                    "FAULT_KINDS; the spec validator would reject any "
                    "plan that could ever trigger this handler"
                ),
                function=info.qualname,
            )
        reachable: "set[str] | None" = None
        constructed: "set[str] | None" = None
        if self.analysis is not None:
            reachable = self._reachable_from(self._ENGINE_ROOTS)
            constructed = self._constructed_class_names()
        for kind in sorted(kinds.fields):
            kind_sites = sites.get(kind, [])
            if not kind_sites:
                yield Finding(
                    rule_id=rule,
                    path=kinds.path,
                    line=kinds.line,
                    col=0,
                    message=(
                        f"fault kind {kind!r} has no fires({kind!r}) "
                        "degradation handler in any component; it is "
                        "injectable but inert"
                    ),
                    function=f"{self._FAULTS_MODULE}.FAULT_KINDS",
                )
                continue
            if reachable is None:
                continue
            # A handler is live if the call graph reaches it from the
            # engine, something resolvable calls it, or (for methods
            # invoked through dynamic dispatch the graph cannot
            # resolve) its component class is constructed somewhere.
            if not any(
                self._handler_live(info, reachable, constructed or set())
                for info, _l, _c in kind_sites
            ):
                info, line, col = kind_sites[0]
                yield Finding(
                    rule_id=rule,
                    path=info.ctx.relpath,
                    line=line,
                    col=col,
                    message=(
                        f"the fires({kind!r}) handler in "
                        f"{info.qualname} is dead code: not reachable "
                        "from the simulation engine, never called, and "
                        "its component class is never constructed — "
                        "the fault can never actually degrade a run"
                    ),
                    function=info.qualname,
                )

    def _handler_live(
        self, info, reachable: "set[str]", constructed: "set[str]"
    ) -> bool:
        if info.qualname in reachable:
            return True
        if self.index.callers.get(info.qualname):
            return True
        parts = info.qualname.rsplit(".", 2)
        if len(parts) == 3 and parts[1] in constructed:
            return True
        return False

    def _constructed_class_names(self) -> "set[str]":
        """Simple names of project classes constructed anywhere."""
        import ast as ast_module

        class_names = {
            cinfo.name for cinfo in self.index.classes.values()
        }
        constructed: "set[str]" = set()
        for info in self.index.functions.values():
            for node in ast_module.walk(info.node):
                if not isinstance(node, ast_module.Call):
                    continue
                func = node.func
                name = None
                if isinstance(func, ast_module.Name):
                    name = func.id
                elif isinstance(func, ast_module.Attribute):
                    name = func.attr
                if name in class_names:
                    constructed.add(name)
        return constructed

    # ------------------------------------------------------------------
    # contract-obs-pure
    # ------------------------------------------------------------------

    _OBS_PREFIX = "obs"

    def _obs_pure(self) -> "Iterator[Finding]":
        rule = "contract-obs-pure"
        if self.analysis is None:
            return
        obs_functions = [
            info
            for qualname, info in sorted(self.index.functions.items())
            if info.module == self._OBS_PREFIX
            or info.module.startswith(self._OBS_PREFIX + ".")
        ]
        if not obs_functions:
            return
        allowed_owners = {
            cinfo.name
            for cinfo in self.index.classes.values()
            if cinfo.module == self._OBS_PREFIX
            or cinfo.module.startswith(self._OBS_PREFIX + ".")
        }
        allowlist = load_marker(
            self.index, self._OBS_PREFIX, "OBS_WRITE_ALLOWLIST"
        )
        patterns: "tuple[str, ...]" = ()
        if isinstance(allowlist, (tuple, list)):
            patterns = tuple(str(item) for item in allowlist)
        reported: "set[str]" = set()
        for info in obs_functions:
            summary = self.analysis.summaries[info.qualname]
            direct_lines = {
                (site.kind, site.ident): (site.line, site.col)
                for site in self.analysis.direct[info.qualname]
            }
            for ident in sorted(summary.global_writes):
                yield from self._obs_violation(
                    rule, info, "global-write", ident,
                    summary.global_writes[ident], direct_lines, reported,
                    f"writes module global {ident!r}",
                )
            for ident in sorted(summary.forks):
                yield from self._obs_violation(
                    rule, info, "fork", ident,
                    summary.forks[ident], direct_lines, reported,
                    f"calls {ident}()",
                )
            for ident in sorted(summary.attr_writes):
                owner = ident.split(".", 1)[0]
                if owner in allowed_owners:
                    continue
                if _pattern_match(ident, patterns):
                    continue
                detail = (
                    f"writes attribute {ident!r} of a non-obs object"
                    if owner != "?"
                    else (
                        f"writes attribute {ident!r} on a receiver the "
                        "analysis cannot prove is obs-owned"
                    )
                )
                yield from self._obs_violation(
                    rule, info, "attr-write", ident,
                    summary.attr_writes[ident], direct_lines, reported,
                    detail,
                )

    def _obs_violation(
        self,
        rule: str,
        info,
        kind: str,
        ident: str,
        via: str,
        direct_lines: "dict[tuple[str, str], tuple[int, int]]",
        reported: "set[str]",
        detail: str,
    ) -> "Iterator[Finding]":
        # One finding per offending ident across the whole plane; prefer
        # the function holding the direct site (via == "").
        key = f"{kind}:{ident}"
        if key in reported:
            return
        if via:
            # Only report transitive evidence if no obs function holds
            # the effect directly (the direct holder reports it better).
            for other_q, other_summary in self.analysis.summaries.items():
                other = self.index.functions.get(other_q)
                if other is None:
                    continue
                if not (
                    other.module == self._OBS_PREFIX
                    or other.module.startswith(self._OBS_PREFIX + ".")
                ):
                    continue
                table = {
                    "global-write": other_summary.global_writes,
                    "fork": other_summary.forks,
                    "attr-write": other_summary.attr_writes,
                }[kind]
                if table.get(ident) == "":
                    return
        reported.add(key)
        line, col = direct_lines.get(
            (kind, ident), (info.node.lineno, info.node.col_offset)
        )
        chain = f" [via {via}]" if via else ""
        yield Finding(
            rule_id=rule,
            path=info.ctx.relpath,
            line=line,
            col=col,
            message=(
                f"observability code {detail}{chain}; telemetry must "
                "observe, never steer — move the write out of the obs "
                "plane or add the owner to OBS_WRITE_ALLOWLIST with "
                "justification"
            ),
            function=info.qualname,
        )

    # ------------------------------------------------------------------
    # contract-registry
    # ------------------------------------------------------------------

    _WORKLOADS_PREFIX = "workloads."
    _WORKLOAD_REGISTRY = "workloads.registry"
    _POLICY_BASE = "core.policy.PlacementPolicy"

    def _registry(self) -> "Iterator[Finding]":
        rule = "contract-registry"
        yield from self._workload_registry(rule)
        yield from self._policy_registry(rule)

    def _workload_registry(self, rule: str) -> "Iterator[Finding]":
        registry_module = self.index.modules.get(self._WORKLOAD_REGISTRY)
        if registry_module is None:
            return
        site = marker_site(self.index, self._WORKLOAD_REGISTRY, "_REGISTRY")
        if site is None:
            return
        import ast as ast_module

        node = None
        for candidate in registry_module.ctx.tree.body:
            if (
                isinstance(candidate, ast_module.AnnAssign)
                and isinstance(candidate.target, ast_module.Name)
                and candidate.target.id == "_REGISTRY"
            ):
                node = candidate.value
            elif (
                isinstance(candidate, ast_module.Assign)
                and len(candidate.targets) == 1
                and isinstance(candidate.targets[0], ast_module.Name)
                and candidate.targets[0].id == "_REGISTRY"
            ):
                node = candidate.value
        if node is None:
            return
        registered: "dict[str, int]" = {}
        seen_apps: "set[str]" = set()
        for app, value, line in dict_literal_entries(node):
            if app in seen_apps:
                yield Finding(
                    rule_id=rule,
                    path=site[0],
                    line=line,
                    col=0,
                    message=(
                        f"workload registry key {app!r} appears twice; "
                        "the second entry silently shadows the first"
                    ),
                    function=self._WORKLOAD_REGISTRY,
                )
            seen_apps.add(app)
            if isinstance(value, ast_module.Name):
                registered[value.id] = line
        factories: "dict[str, int]" = {}
        factory_paths: "dict[str, str]" = {}
        for qualname, info in sorted(self.index.functions.items()):
            if not info.module.startswith(self._WORKLOADS_PREFIX):
                continue
            if info.module == self._WORKLOAD_REGISTRY:
                continue
            if qualname != f"{info.module}.{info.name}":
                continue  # methods and nested functions are not factories
            if info.name.startswith("make_"):
                factories[info.name] = info.node.lineno
                factory_paths[info.name] = info.ctx.relpath
        excluded = self._exclusions(
            self._WORKLOAD_REGISTRY, "UNREGISTERED_FACTORIES"
        )
        registered_set = FieldSet(
            label="the workload registry (_REGISTRY)",
            path=site[0],
            line=site[1],
            fields=registered,
        )
        for name in sorted(factories):
            if name in registered or excluded.covers(name):
                continue
            yield Finding(
                rule_id=rule,
                path=factory_paths[name],
                line=factories[name],
                col=0,
                message=(
                    f"workload factory {name}() is not in the registry "
                    "(_REGISTRY) and not declared in "
                    "UNREGISTERED_FACTORIES; sweeps and figures cannot "
                    "reach it"
                ),
                function=self._WORKLOAD_REGISTRY,
            )
        for name in sorted(registered):
            if name not in factories:
                yield Finding(
                    rule_id=rule,
                    path=site[0],
                    line=registered[name],
                    col=0,
                    message=(
                        f"the workload registry references {name}(), "
                        "which is not a factory defined under "
                        "workloads/; make_workload would raise at call "
                        "time"
                    ),
                    function=self._WORKLOAD_REGISTRY,
                )
        # Stale exclusion declarations rot like any other parallel list.
        for name in sorted(excluded.reasons):
            reason = excluded.reasons[name]
            if not isinstance(reason, str) or not reason.strip():
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"UNREGISTERED_FACTORIES entry {name!r} needs a "
                        "non-empty reason string"
                    ),
                    function=self._WORKLOAD_REGISTRY,
                )
            elif name not in factories:
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"stale UNREGISTERED_FACTORIES entry {name!r}: "
                        "no such workload factory exists"
                    ),
                    function=self._WORKLOAD_REGISTRY,
                )
            elif name in registered_set.fields:
                yield Finding(
                    rule_id=rule,
                    path=excluded.path,
                    line=excluded.line,
                    col=0,
                    message=(
                        f"stale UNREGISTERED_FACTORIES entry {name!r}: "
                        "the factory is registered after all"
                    ),
                    function=self._WORKLOAD_REGISTRY,
                )

    def _policy_registry(self, rule: str) -> "Iterator[Finding]":
        base = self.index.classes.get(self._POLICY_BASE)
        if base is None:
            return
        registrations = decorated_registrations(
            self.index, "register_policy", "core"
        )
        registered_classes = {cinfo.qualname for _n, cinfo, _l in registrations}
        names_seen: "dict[str, str]" = {}
        for name, cinfo, line in registrations:
            module = self.index.modules[cinfo.module]
            if name in names_seen:
                yield Finding(
                    rule_id=rule,
                    path=module.ctx.relpath,
                    line=line,
                    col=0,
                    message=(
                        f"policy name {name!r} is registered twice "
                        f"(also by {names_seen[name]}); importing the "
                        "package would raise at registration time"
                    ),
                    function=cinfo.qualname,
                )
            names_seen.setdefault(name, cinfo.qualname)
        for cinfo in self.index.subclasses_of(base):
            if not cinfo.module.startswith("core"):
                continue
            if cinfo.qualname in registered_classes:
                continue
            if self._is_abstract(cinfo):
                continue
            module = self.index.modules[cinfo.module]
            yield Finding(
                rule_id=rule,
                path=module.ctx.relpath,
                line=cinfo.node.lineno,
                col=0,
                message=(
                    f"placement policy {cinfo.name} is not registered "
                    "with @register_policy; sweeps, the CLI, and the "
                    "equivalence harness cannot instantiate it"
                ),
                function=cinfo.qualname,
            )

    # ------------------------------------------------------------------
    # contract-fast-mirror
    # ------------------------------------------------------------------

    _FAST_MODULE = "sim.fast"
    _TIMING_MODULE = "hw.timing"

    def _fast_mirror(self) -> "Iterator[Finding]":
        """The fast path's flat accumulator columns must mirror the
        ``DeviceDemand`` dataclass exactly, both directions: a dataclass
        field without a column is dropped from every fast-path result
        (the oracle only compares fields that exist when it was
        written), and a column naming no field is a stale accumulator
        nothing ever reads."""
        rule = "contract-fast-mirror"
        columns = self._tuple_fieldset(
            self._FAST_MODULE, "DEVICE_DEMAND_FIELDS", "DEVICE_DEMAND_FIELDS"
        )
        demand_cls = self._class(self._TIMING_MODULE, "DeviceDemand")
        if columns is None or demand_cls is None:
            return
        demand_fields = self._class_fieldset(demand_cls, "DeviceDemand")
        yield from field_parity(
            rule, demand_fields, columns,
            function=f"{self._FAST_MODULE}.DEVICE_DEMAND_FIELDS",
        )

    @staticmethod
    def _is_abstract(cinfo: ClassInfo) -> bool:
        import ast as ast_module

        if any("ABC" in base for base in cinfo.bases):
            return True
        for node in cinfo.node.body:
            if isinstance(
                node,
                (ast_module.FunctionDef, ast_module.AsyncFunctionDef),
            ):
                for decorator in node.decorator_list:
                    text = ast_module.dump(decorator)
                    if "abstractmethod" in text:
                        return True
        return False
