"""Static field-set and registry extractors over the project index.

Every heterocontract rule reduces to "these two hand-maintained field
sets must agree"; this module extracts those sets from the AST without
importing the modules under analysis (the same no-import discipline as
``worker_entry_points`` and the phase certifier's ``STEP_PHASES``
loader).  Extractors return names *with source positions* so findings
anchor on the drifted declaration, not on the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.flow.graph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)

__all__ = [
    "call_sites_of",
    "dataclass_fields",
    "decorated_registrations",
    "dict_literal_entries",
    "load_marker",
    "marker_site",
    "returned_dict_keys",
    "used_attribute_names",
    "used_call_names",
    "used_string_constants",
]


def _module_assign(
    module: ModuleInfo, name: str
) -> "ast.Assign | ast.AnnAssign | None":
    """The top-level assignment binding ``name``, if any."""
    for node in module.ctx.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            return node
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            return node
    return None


def load_marker(index: ProjectIndex, module_name: str, name: str):
    """``ast.literal_eval`` of a module-level pure-literal marker, or
    ``None`` when the module or marker is absent / not a literal."""
    module = index.modules.get(module_name)
    if module is None:
        return None
    node = _module_assign(module, name)
    if node is None:
        return None
    try:
        return ast.literal_eval(node.value)
    except ValueError:
        return None


def marker_site(
    index: ProjectIndex, module_name: str, name: str
) -> "tuple[str, int] | None":
    """``(relpath, line)`` of a module-level marker assignment."""
    module = index.modules.get(module_name)
    if module is None:
        return None
    node = _module_assign(module, name)
    if node is None:
        return None
    return module.ctx.relpath, node.lineno


def dataclass_fields(cinfo: ClassInfo) -> "dict[str, int]":
    """Field name -> line for every annotated field in the class body.

    ``ClassVar`` annotations and underscore-prefixed names are not
    instance fields and are skipped.
    """
    fields: "dict[str, int]" = {}
    for node in cinfo.node.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields[name] = node.lineno
    return fields


def dict_literal_entries(
    node: ast.expr,
) -> "list[tuple[str, ast.expr, int]]":
    """``(key, value-node, line)`` for every string key of a dict
    literal; empty for any other expression shape."""
    entries: "list[tuple[str, ast.expr, int]]" = []
    if not isinstance(node, ast.Dict):
        return entries
    for key, value in zip(node.keys, node.values):
        if (
            key is not None
            and isinstance(key, ast.Constant)
            and isinstance(key.value, str)
        ):
            entries.append((key.value, value, key.lineno))
    return entries


def returned_dict_keys(info: FunctionInfo) -> "dict[str, int]":
    """String keys (-> line) of every dict literal the function returns.

    This is the static shape of a ``canonical()``/``to_dict()``
    serializer: ``return {"field": self.field, ...}``.
    """
    keys: "dict[str, int]" = {}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Return) and node.value is not None:
            for key, _value, line in dict_literal_entries(node.value):
                keys.setdefault(key, line)
    return keys


def used_attribute_names(info: FunctionInfo) -> "set[str]":
    """Every attribute name read or written anywhere in the body."""
    return {
        node.attr
        for node in ast.walk(info.node)
        if isinstance(node, ast.Attribute)
    }


def used_string_constants(info: FunctionInfo) -> "set[str]":
    return {
        node.value
        for node in ast.walk(info.node)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def used_call_names(info: FunctionInfo) -> "set[str]":
    """Called names, both bare (``asdict``) and dotted-last
    (``dataclasses.asdict`` contributes both forms)."""
    names: "set[str]" = set()
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute):
            names.add(func.attr)
            parts: "list[str]" = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                parts.append(value.id)
                names.add(".".join(reversed(parts)))
    return names


def call_sites_of(
    index: ProjectIndex, method_name: str
) -> "Iterator[tuple[FunctionInfo, str, int, int]]":
    """Every ``<recv>.<method_name>("literal")`` call in the project:
    ``(enclosing function, first-arg string, line, col)``."""
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method_name
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield info, node.args[0].value, node.lineno, node.col_offset


def decorated_registrations(
    index: ProjectIndex, decorator_name: str, module_prefix: str
) -> "list[tuple[str, ClassInfo, int]]":
    """Every ``@<decorator_name>("literal")``-decorated class under the
    module prefix: ``(registered name, class, decorator line)``."""
    registrations: "list[tuple[str, ClassInfo, int]]" = []
    for qualname in sorted(index.classes):
        cinfo = index.classes[qualname]
        if not cinfo.module.startswith(module_prefix):
            continue
        for decorator in cinfo.node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == decorator_name
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)
            ):
                registrations.append(
                    (decorator.args[0].value, cinfo, decorator.lineno)
                )
    return registrations
