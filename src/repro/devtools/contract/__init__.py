"""heterocontract — cross-layer contract-drift analysis.

Fourth member of the devtools family (heterolint sees one file,
heteroflow sees the call graph, heteroeffect sees state, heterocontract
sees *parallel declarations*): the repo's correctness story rests on
several hand-maintained mirrored lists — spec fields vs. the canonical
cache key, sample fields vs. run aggregates, fault kinds vs. their
degradation handlers, policy/workload classes vs. their registries —
and each upcoming ROADMAP item adds entries to every one of them.
heterocontract turns that drift into a build break:

* a small declarative core — field-set extractors over dataclasses,
  registry literals, and canonical-JSON serializers
  (:mod:`~repro.devtools.contract.extract`) plus a generic
  *field-parity* primitive (:mod:`~repro.devtools.contract.parity`);
* six rules (:mod:`~repro.devtools.contract.rules`) instantiating it,
  run as ``repro lint --contracts`` (``contract-`` rule ids, fifth
  SARIF tool run, same suppressions/baseline as every other layer).

Modules under analysis declare their deliberate exceptions as
pure-literal markers read statically (``CACHE_KEY_EXCLUDED``,
``NON_ADDITIVE_FIELDS``, ``UNSAMPLED_AGGREGATES``,
``OBS_WRITE_ALLOWLIST``, ``UNREGISTERED_FACTORIES``) — the same
no-import idiom as ``WORKER_ENTRY_POINTS`` and ``STEP_PHASES``.
"""

from __future__ import annotations

from repro.devtools.contract.extract import (
    dataclass_fields,
    load_marker,
    returned_dict_keys,
)
from repro.devtools.contract.parity import (
    Exclusions,
    FieldSet,
    field_parity,
)
from repro.devtools.contract.rules import (
    ContractRules,
    contract_rule_metadata,
)

__all__ = [
    "ContractRules",
    "Exclusions",
    "FieldSet",
    "contract_rule_metadata",
    "dataclass_fields",
    "field_parity",
    "load_marker",
    "returned_dict_keys",
]
