"""Developer tooling for the simulator: static analysis + runtime checkers.

Three parts, sharing one rule-ID namespace (see docs/devtools.md):

* :mod:`repro.devtools.lint` — **heterolint**, an AST rule engine that
  mechanically enforces the invariants DESIGN.md relies on (determinism,
  the ``ReproError`` hierarchy, ``repro.units`` constants, layering, ...).
  Bare kebab-case rule ids.
* :mod:`repro.devtools.flow` — **heteroflow**, whole-program dimension
  inference, protocol typestate checking, and determinism taint over the
  project call graph, run as ``repro lint --deep``.  ``flow-`` rule ids.
* :mod:`repro.devtools.sanitizer` — **FrameSanitizer**, an ASan-style
  shadow-state checker for frame ownership (double-free, leak,
  use-after-free, migration ownership races), enabled with
  ``SimConfig(sanitize=True)`` or ``repro sanitize-check``.  ``san-``
  defect-class ids in SARIF output.
"""

from __future__ import annotations

from repro.devtools.flow import (
    Baseline,
    BaselineEntry,
    ProjectIndex,
    deep_lint_paths,
    deep_rule_metadata,
    report_to_sarif,
    sarif_json,
)
from repro.devtools.lint import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.devtools.sanitizer import FrameSanitizer, SanitizerReport

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "deep_lint_paths",
    "deep_rule_metadata",
    "lint_paths",
    "lint_source",
    "register",
    "report_to_sarif",
    "sarif_json",
    "FrameSanitizer",
    "SanitizerReport",
]
