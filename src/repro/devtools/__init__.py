"""Developer tooling for the simulator: static analysis + runtime checkers.

Two halves:

* :mod:`repro.devtools.lint` — **heterolint**, an AST rule engine that
  mechanically enforces the invariants DESIGN.md relies on (determinism,
  the ``ReproError`` hierarchy, ``repro.units`` constants, layering, ...).
* :mod:`repro.devtools.sanitizer` — **FrameSanitizer**, an ASan-style
  shadow-state checker for frame ownership (double-free, leak,
  use-after-free, migration ownership races), enabled with
  ``SimConfig(sanitize=True)`` or ``repro sanitize-check``.
"""

from __future__ import annotations

from repro.devtools.lint import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.devtools.sanitizer import FrameSanitizer, SanitizerReport

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "FrameSanitizer",
    "SanitizerReport",
]
