"""heterolint — simulator-specific static analysis.

The simulator's correctness rests on invariants the type system cannot
see: every run must be deterministic given a seed (Eq. 1's hot-page
ranking is meaningless otherwise), every cost is charged through
``repro.units``, every library error derives from ``ReproError``, and
the package layering of DESIGN.md must hold so subsystems stay
substitutable.  heterolint walks the AST of each source file and
enforces those invariants mechanically, before they can corrupt a
benchmark number.

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register`, and the runner picks it up.  Findings can be
suppressed per line (``# heterolint: disable=rule-id``) or per file
(``# heterolint: disable-file=rule-id``); ``all`` suppresses every
rule.  Output is human-readable or JSON (``--format json``), and the
pass is dependency-free by design.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import repro.units as units
from repro.errors import LintError

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "register",
    "lint_source",
    "lint_paths",
]


# ----------------------------------------------------------------------
# Findings and per-file context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: Qualified name of the enclosing function (deep findings only);
    #: the stable anchor baseline entries match against.
    function: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.function:
            data["function"] = self.function
        return data


_SUPPRESS_RE = re.compile(
    r"#\s*heterolint:\s*(disable|disable-next-line|disable-file)"
    r"\s*=\s*([A-Za-z0-9_\-, ]+)"
)


@dataclass
class FileContext:
    """Everything rules need to know about one source file."""

    relpath: str
    tree: ast.Module
    source: str
    #: Dotted package chain below ``repro`` ("hw", "guestos", ...);
    #: top-level modules use their own name ("units", "cli", ...).
    package: str
    #: line number -> rule ids suppressed on that line.
    line_suppressions: dict[int, set] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_suppressions: set = field(default_factory=set)
    _parents: "dict[ast.AST, ast.AST]" = field(default_factory=dict)
    _type_checking_nodes: "set[int]" = field(default_factory=set)

    @classmethod
    def parse(cls, source: str, relpath: str) -> "FileContext":
        tree = ast.parse(source, filename=relpath)
        ctx = cls(
            relpath=relpath,
            tree=tree,
            source=source,
            package=_package_of(relpath),
        )
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(2).split(",")}
            rules.discard("")
            directive = match.group(1)
            if directive == "disable-file":
                ctx.file_suppressions |= rules
            elif directive == "disable-next-line":
                ctx.line_suppressions.setdefault(lineno + 1, set()).update(rules)
            else:
                ctx.line_suppressions.setdefault(lineno, set()).update(rules)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[child] = parent
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for inner in ast.walk(node):
                    ctx._type_checking_nodes.add(id(inner))
        return ctx

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self._parents.get(node)

    def in_type_checking_block(self, node: ast.AST) -> bool:
        return id(node) in self._type_checking_nodes

    def suppressed(self, finding: Finding) -> bool:
        if self.file_suppressions & {finding.rule_id, "all"}:
            return True
        on_line = self.line_suppressions.get(finding.line, set())
        return bool(on_line & {finding.rule_id, "all"})


def _package_of(relpath: str) -> str:
    parts = Path(relpath).parts
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[last + 1:]
    if len(parts) > 1:
        return parts[0]
    if parts:
        return Path(parts[0]).stem
    return ""


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


# ----------------------------------------------------------------------
# Rule base class + registry
# ----------------------------------------------------------------------


class Rule:
    """One lint check.  Subclass, set the class attributes, implement
    :meth:`check`, and decorate with :func:`register`."""

    #: Stable kebab-case identifier used in output and suppressions.
    rule_id: str = ""
    #: One-line rationale tied to a DESIGN.md invariant.
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: "dict[str, type]" = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    rule_id = getattr(rule_cls, "rule_id", "")
    if not rule_id:
        raise LintError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> "dict[str, type]":
    """rule id -> rule class, in registration order."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

#: ``random`` module functions that use the hidden global RNG.
_GLOBAL_RNG_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
        "expovariate", "triangular",
    }
)

#: Wall-clock reads; virtual time must come from the timing model.
_WALL_CLOCK_FNS = frozenset(
    {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns"}
)


@register
class UnseededRandomRule(Rule):
    """Determinism (DESIGN.md decision 7): all randomness flows from
    seeded ``random.Random`` instances owned by configs; no global RNG,
    no wall-clock reads."""

    rule_id = "unseeded-random"
    rationale = (
        "runs must be reproducible from SimConfig.seed alone; the global "
        "RNG and wall-clock reads make epoch results nondeterministic"
    )

    @staticmethod
    def _import_tables(
        ctx: FileContext,
    ) -> "tuple[dict[str, str], dict[str, tuple[str, str]]]":
        """(module alias -> real module, from-import local name ->
        (module, original name)) for the modules this rule watches —
        ``import random as rnd`` and ``from random import randint``
        must not dodge it."""
        watched = ("random", "time", "datetime")
        module_aliases = {name: name for name in watched}
        from_imports: "dict[str, tuple[str, str]]" = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in watched:
                        module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in watched:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        node.module, alias.name
                    )
        return module_aliases, from_imports

    def _check_member(
        self, ctx: FileContext, node: ast.Call, module: str, member: str
    ) -> "Finding | None":
        """One call of ``module.member`` (spelled any way), or None."""
        if module == "random" and member in _GLOBAL_RNG_FNS:
            return self.finding(
                ctx, node,
                f"random.{member}() uses the hidden global RNG; "
                "draw from a seeded random.Random owned by a config",
            )
        if (
            module == "random"
            and member == "Random"
            and not node.args
            and not node.keywords
        ):
            return self.finding(
                ctx, node,
                "random.Random() without a seed is seeded from the OS; "
                "pass an explicit seed",
            )
        if module == "time" and member in _WALL_CLOCK_FNS:
            return self.finding(
                ctx, node,
                f"time.{member}() reads the wall clock; simulator "
                "time is virtual and comes from the timing model",
            )
        if module == "datetime" and member in ("now", "utcnow", "today"):
            return self.finding(
                ctx, node,
                f"datetime.{member}() reads the wall clock inside "
                "the simulator",
            )
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_aliases, from_imports = self._import_tables(ctx)
        # ast.walk descends into comprehensions and lambdas too, so a
        # draw inside either is found in its enclosing statement.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                module = module_aliases.get(func.value.id)
                if module is not None:
                    finding = self._check_member(ctx, node, module, func.attr)
                    if finding is not None:
                        yield finding
            elif isinstance(func, ast.Name) and func.id in from_imports:
                module, member = from_imports[func.id]
                finding = self._check_member(ctx, node, module, member)
                if finding is not None:
                    yield finding


#: Builtin raises permitted for argument validation, per file basename.
_VALIDATION_ALLOWLIST = {
    "units.py": frozenset({"ValueError", "TypeError"}),
}

#: Exception names allowed everywhere in addition to the ReproError tree.
_ALWAYS_ALLOWED_RAISES = frozenset(
    {"NotImplementedError", "SystemExit", "KeyboardInterrupt", "StopIteration"}
)


def _repro_error_names() -> "frozenset[str]":
    import repro.errors as errors_module

    names = {
        name
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, errors_module.ReproError)
    }
    return frozenset(names)


@register
class ForeignRaiseRule(Rule):
    """Exception discipline: everything raised from the library derives
    from :class:`~repro.errors.ReproError`, so embedders catch one type.
    ``units.py``-style argument validation may raise ``ValueError`` /
    ``TypeError`` (allowlisted)."""

    rule_id = "foreign-raise"
    rationale = (
        "callers embedding the simulator catch ReproError; foreign "
        "exception types escape that contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = set(_repro_error_names()) | set(_ALWAYS_ALLOWED_RAISES)
        allowed |= _VALIDATION_ALLOWLIST.get(Path(ctx.relpath).name, frozenset())
        # Local classes deriving (transitively) from an allowed name are
        # allowed too; iterate to a fixpoint for chains within the file.
        local_classes = [
            node for node in ast.walk(ctx.tree) if isinstance(node, ast.ClassDef)
        ]
        changed = True
        while changed:
            changed = False
            for cls in local_classes:
                if cls.name in allowed:
                    continue
                bases = {_final_name(base) for base in cls.bases}
                if bases & allowed:
                    allowed.add(cls.name)
                    changed = True
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = _final_name(target)
            if name is None:
                continue
            if name in allowed:
                continue
            if name[:1].islower():
                # A variable holding a caught exception (``raise err``);
                # not statically resolvable, assume a re-raise.
                continue
            yield self.finding(
                ctx, node,
                f"raise {name}: not part of the ReproError hierarchy "
                "(see repro.errors); embedders catch ReproError",
            )


def _final_name(node: "ast.AST | None") -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


#: Literal value -> the repro.units constant that should replace it.
_MAGIC_LITERALS = {
    units.PAGE_SIZE: "units.PAGE_SIZE",
    units.KIB: "units.KIB",
    units.MIB: "units.MIB",
    units.GIB: "units.GIB",
    int(units.NS_PER_SEC): "units.NS_PER_SEC",
}


@register
class MagicNumberRule(Rule):
    """Byte/latency arithmetic goes through ``repro.units`` so capacity
    maths stays greppable and the off-by-1024 bug class stays dead.
    ``N * 1024`` / ``N << 10`` page-count idioms are exempt."""

    rule_id = "magic-number"
    rationale = (
        "repro.units keeps unit conversions in one module; inline byte "
        "constants reintroduce the off-by-1024 bug class"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if Path(ctx.relpath).name == "units.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            replacement = _MAGIC_LITERALS.get(value)
            if replacement is None:
                continue
            if value == units.KIB:
                parent = ctx.parent(node)
                if isinstance(parent, ast.BinOp) and isinstance(
                    parent.op, (ast.Mult, ast.LShift)
                ):
                    continue  # ``64 * 1024`` page-count idiom
            yield self.finding(
                ctx, node,
                f"magic literal {value}: use repro.{replacement} "
                "(suppress if this is a page count, not bytes)",
            )


_TIME_SUFFIXES = ("_ns", "_us", "_ms", "_sec")


def _is_time_valued(node: ast.AST) -> "str | None":
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and name.endswith(_TIME_SUFFIXES):
        return name
    return None


@register
class FloatTimeEqRule(Rule):
    """Virtual-time values are floats accumulated over thousands of
    epochs; ``==`` on them compares rounding noise.  Use ordering
    comparisons or ``math.isclose``."""

    rule_id = "float-time-eq"
    rationale = (
        "virtual-time floats accumulate rounding error; exact equality "
        "is order-of-accumulation-dependent and breaks determinism checks"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left] + list(node.comparators):
                name = _is_time_valued(operand)
                if name is not None:
                    yield self.finding(
                        ctx, node,
                        f"float ==/!= on virtual-time value {name!r}; use "
                        "ordering or math.isclose",
                    )
                    break


@register
class MutableDefaultRule(Rule):
    """A mutable default argument is shared across calls — state leaks
    between epochs and between simulator instances."""

    rule_id = "mutable-default"
    rationale = (
        "a shared default list/dict leaks state across SimulationEngine "
        "instances, silently coupling independent runs"
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    yield self.finding(
                        ctx, default,
                        "mutable default argument; use None and create "
                        "inside, or dataclasses.field(default_factory=...)",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                ):
                    yield self.finding(
                        ctx, default,
                        f"mutable default {default.func.id}(); use None "
                        "and create inside",
                    )


@register
class BareExceptRule(Rule):
    """``except:`` swallows ``SystemExit``/``KeyboardInterrupt`` and
    every accounting bug; catch specific ``ReproError`` subclasses."""

    rule_id = "bare-except"
    rationale = (
        "a bare except hides AllocationError-class accounting bugs that "
        "the invariant checks exist to surface"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare except: catches everything, including the "
                    "simulator's own invariant violations",
                )


@register
class SwallowedReproErrorRule(Rule):
    """``except SomeReproError: pass`` turns a structured failure the
    simulator deliberately raised into silence.  Degrading is fine —
    but degradation must *do* something (account the cost, fall back,
    log); an empty handler hides the event entirely."""

    rule_id = "swallowed-repro-error"
    rationale = (
        "ReproError subclasses carry recovery contracts (e.g. "
        "SwapWriteError guarantees no state changed so the caller can "
        "retry or charge the cost); an empty handler discards the "
        "contract and the accounting with it"
    )

    @staticmethod
    def _caught_names(node: ast.ExceptHandler) -> "list[str]":
        if isinstance(node.type, ast.Tuple):
            candidates = node.type.elts
        else:
            candidates = [node.type] if node.type is not None else []
        names = [_final_name(target) for target in candidates]
        return [name for name in names if name is not None]

    @staticmethod
    def _body_is_empty(body: "list[ast.stmt]") -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and (stmt.value.value is Ellipsis
                     or isinstance(stmt.value.value, str))
            ):
                continue  # docstring or ``...`` placeholder
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        error_names = _repro_error_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._body_is_empty(node.body):
                continue
            swallowed = [
                name for name in self._caught_names(node)
                if name in error_names
            ]
            if swallowed:
                yield self.finding(
                    ctx, node,
                    f"except {', '.join(swallowed)}: pass swallows a "
                    "structured simulator error; degrade explicitly "
                    "(account the cost, fall back, or continue with a "
                    "comment saying why dropping it is correct)",
                )


#: DESIGN.md layering: a package may import strictly lower ranks only.
#: Equal-rank packages are siblings and must not import each other.
LAYER_RANKS = {
    "units": 0,
    "errors": 0,
    "faults": 1,
    "hw": 1,
    "mem": 1,
    "config": 2,
    "guestos": 2,
    "workloads": 2,
    "vmm": 3,
    "core": 4,
    "devtools": 4,
    "obs": 4,
    "sim": 5,
    "experiments": 6,
    "serve": 7,
    "__init__": 7,
    "cli": 8,
    "__main__": 9,
}


@register
class LayerImportRule(Rule):
    """The DESIGN.md system inventory is a strict layering (hw/mem below
    guestos below vmm below core below sim...).  An upward import (e.g.
    ``repro.hw`` importing ``repro.guestos``) couples a substrate to a
    consumer and breaks substitutability."""

    rule_id = "layer-import"
    rationale = (
        "DESIGN.md layering keeps substrates substitutable; an upward "
        "import makes the hardware model depend on the OS built on it"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        own_rank = LAYER_RANKS.get(ctx.package)
        if own_rank is None:
            return
        for node in ast.walk(ctx.tree):
            if ctx.in_type_checking_block(node):
                continue
            targets: "list[str]" = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module] if node.module else []
            for dotted in targets:
                parts = dotted.split(".")
                if parts[0] != "repro":
                    continue
                target_pkg = parts[1] if len(parts) > 1 else "__init__"
                target_rank = LAYER_RANKS.get(target_pkg)
                if target_rank is None or target_pkg == ctx.package:
                    continue
                if target_rank >= own_rank:
                    yield self.finding(
                        ctx, node,
                        f"layer violation: {ctx.package} (rank {own_rank}) "
                        f"imports repro.{target_pkg} (rank {target_rank}); "
                        "DESIGN.md layering allows lower ranks only",
                    )


#: Packages whose modules make placement decisions.
_DECISION_PACKAGES = frozenset({"core", "vmm"})
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def _is_dict_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not node.keywords
    )


@register
class UnorderedPlacementRule(Rule):
    """Placement decisions (core/vmm) must rank candidates with an
    explicit sort key.  ``max``/``min`` over a dict view — or a
    dict-view loop that ``break``s early — lets insertion order pick
    the winner, which is exactly the silent nondeterminism the PEBS
    study warns corrupts placement."""

    rule_id = "unordered-placement"
    rationale = (
        "tie-breaking by dict insertion order makes the chosen "
        "promotion/eviction victim an accident of allocation history"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in _DECISION_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("max", "min")
                    and any(_is_dict_view_call(arg) for arg in node.args)
                ):
                    yield self.finding(
                        ctx, node,
                        f"{func.id}() over a dict view ties-breaks by "
                        "insertion order; sort with an explicit key first",
                    )
            elif isinstance(node, ast.For) and _is_dict_view_call(node.iter):
                if any(isinstance(n, ast.Break) for n in ast.walk(node)):
                    yield self.finding(
                        ctx, node,
                        "dict-view loop with an early break: which entries "
                        "are reached depends on insertion order; iterate a "
                        "sorted list or document why order is deterministic",
                    )


#: Packages that ARE the human-facing surface and may print freely.
_PRINT_EXEMPT_PACKAGES = frozenset({"cli", "__main__"})


@register
class NoPrintRule(Rule):
    """Library code must not ``print()``: embedders (sweep workers,
    figure drivers, tests) own stdout, and run-time observations belong
    on the telemetry bus (``repro.obs``) where they are recorded, not
    interleaved with table output.  The CLI is the one human-facing
    surface and is exempt."""

    rule_id = "no-print"
    rationale = (
        "stray prints from library code corrupt driver/CLI table output "
        "and bypass the telemetry bus; emit events via repro.obs instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package in _PRINT_EXEMPT_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx, node,
                    "print() in library code; report through the telemetry "
                    "bus (repro.obs) or return data to the caller",
                )


@register
class NumpyImportRule(Rule):
    """numpy stays quarantined in ``repro.sim.fast``: the package must
    import (and the reference simulation must run) on a bare
    interpreter, so the optional array backend is the only module
    allowed to import numpy — everywhere else gets the dependency for
    free the moment someone types ``import numpy``, and the fallback
    contract (``tests/test_fast_fallback.py``) silently dies."""

    rule_id = "numpy-import"
    rationale = (
        "numpy is an optional accelerator (the 'fast' extra) confined to "
        "repro.sim.fast behind an import guard; importing it anywhere "
        "else makes it a hard dependency and breaks numpy-less installs"
    )

    _ALLOWED_SUFFIX = "sim/fast.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath.replace("\\", "/").endswith(self._ALLOWED_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        yield self.finding(
                            ctx, node,
                            "numpy import outside repro.sim.fast; route "
                            "array-backed code through the fast module or "
                            "keep this path dependency-free",
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module == "numpy" or node.module.startswith("numpy."):
                    yield self.finding(
                        ctx, node,
                        "numpy import outside repro.sim.fast; route "
                        "array-backed code through the fast module or "
                        "keep this path dependency-free",
                    )


#: Modules that may import the host-metrics plane.  The sweep recorder
#: observes the harness (``sim/parallel.py`` hooks, ``cli.py``
#: rendering, the ``serve/`` daemon's scrape endpoint); letting
#: simulation or policy code import it would open a hole in the
#: no-perturbation contract (metrics feeding results).
_METRICS_ALLOWED_SUFFIXES = ("sim/parallel.py", "cli.py")
_METRICS_ALLOWED_PACKAGES = ("obs", "serve")
_METRICS_MODULES = ("repro.obs.metrics", "repro.obs.flight")
_METRICS_NAMES = frozenset(
    {
        "Counter",
        "Gauge",
        "Histogram",
        "MetricsRegistry",
        "SweepRecorder",
        "snapshot_delta",
    }
)


@register
class MetricsConfinementRule(Rule):
    """Host metrics stay confined to the observability plane plus the
    harness modules that feed/render them (``sim/parallel.py``,
    ``cli.py``, the ``serve/`` daemon).  A simulator or policy module
    importing the metrics registry is one step from steering results
    with observations — the exact hole the ``contract-obs-pure``
    no-perturbation contract exists to close."""

    rule_id = "metrics-confinement"
    rationale = (
        "the sweep metrics registry and flight recorder are harness "
        "observation only; importing them outside obs/, serve/, "
        "sim/parallel.py or cli.py risks observation steering "
        "simulation results"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        relpath = ctx.relpath.replace("\\", "/")
        if relpath.endswith(_METRICS_ALLOWED_SUFFIXES) or any(
            f"/{pkg}/" in relpath or relpath.startswith(f"{pkg}/")
            for pkg in _METRICS_ALLOWED_PACKAGES
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _METRICS_MODULES:
                        yield self.finding(
                            ctx, node,
                            f"{alias.name} imported outside the "
                            "observability plane; metrics are harness "
                            "observation (allowed: obs/, serve/, "
                            "sim/parallel.py, cli.py)",
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module in _METRICS_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"{node.module} imported outside the observability "
                        "plane; metrics are harness observation (allowed: "
                        "obs/, serve/, sim/parallel.py, cli.py)",
                    )
                elif node.module == "repro.obs":
                    confined = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in _METRICS_NAMES
                    )
                    if confined:
                        yield self.finding(
                            ctx, node,
                            f"{', '.join(confined)} imported outside the "
                            "observability plane; metrics are harness "
                            "observation (allowed: obs/, serve/, "
                            "sim/parallel.py, cli.py)",
                        )


#: Networking modules confined to the experiment service.  The daemon
#: (``repro.serve``) is the one place the library opens sockets; a
#: simulator, policy, or experiment module importing an HTTP stack
#: would couple deterministic simulation code to wall-clock network
#: I/O and widen the attack/test surface of every embedder.
_SERVE_ONLY_MODULES = ("http", "socketserver")
_SERVE_ALLOWED_PACKAGE = "serve"


@register
class ServeConfinementRule(Rule):
    """``http``/``socketserver`` imports stay inside ``repro.serve``.
    Everything below the service layer must import (and simulate) on a
    machine with no network stack at all; the daemon is the single
    module family allowed to speak HTTP."""

    rule_id = "serve-confinement"
    rationale = (
        "the serve daemon is the library's only network surface; an "
        "http/socketserver import elsewhere couples deterministic "
        "simulation code to sockets and wall-clock I/O"
    )

    @staticmethod
    def _confined(dotted: str) -> bool:
        root = dotted.split(".", 1)[0]
        return root in _SERVE_ONLY_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package == _SERVE_ALLOWED_PACKAGE:
            return
        for node in ast.walk(ctx.tree):
            if ctx.in_type_checking_block(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._confined(alias.name):
                        yield self.finding(
                            ctx, node,
                            f"import {alias.name}: networking imports are "
                            "confined to repro.serve; route service work "
                            "through the daemon",
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.level == 0 and self._confined(node.module):
                    yield self.finding(
                        ctx, node,
                        f"from {node.module} import ...: networking "
                        "imports are confined to repro.serve; route "
                        "service work through the daemon",
                    )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one lint pass."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[Finding]" = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "finding_count": len(self.findings),
                "suppressed_count": len(self.suppressed),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"heterolint: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def _make_rules(rule_ids: "Iterable[str] | None") -> "list[Rule]":
    registry = all_rules()
    if rule_ids is None:
        return [rule_cls() for rule_cls in registry.values()]
    rules = []
    for rule_id in rule_ids:
        if rule_id not in registry:
            raise LintError(
                f"unknown rule {rule_id!r}; known: {sorted(registry)}"
            )
        rules.append(registry[rule_id]())
    return rules


def lint_source(
    source: str,
    relpath: str = "module.py",
    rule_ids: "Iterable[str] | None" = None,
) -> LintReport:
    """Lint one in-memory source blob (the unit tests' entry point)."""
    report = LintReport(files_checked=1)
    try:
        ctx = FileContext.parse(source, relpath)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule_id="parse-error",
                path=relpath,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
            )
        )
        return report
    for rule in _make_rules(rule_ids):
        for finding in rule.check(ctx):
            if ctx.suppressed(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report


def iter_python_files(paths: "Iterable[str | Path]") -> "list[Path]":
    """Expand files/directories into a sorted, deduplicated file list."""
    files: "set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: "Iterable[str | Path]",
    rule_ids: "Iterable[str] | None" = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``; deterministic order."""
    report = LintReport()
    for path in iter_python_files(paths):
        sub = lint_source(
            path.read_text(encoding="utf-8"),
            relpath=str(path),
            rule_ids=rule_ids,
        )
        report.findings.extend(sub.findings)
        report.suppressed.extend(sub.suppressed)
        report.files_checked += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report
