"""heteroeffect race/fork-safety rules.

Four rules over the effect summaries, aimed at the parallel sweep
path (``repro.sim.parallel`` forks worker processes) and the planned
event kernel:

* ``effect-shared-write`` — a function reachable from a forked worker
  entry point writes a module global; parent and workers race on it
  and worker writes are silently lost at join.
* ``effect-fork-unsafe`` — a worker-reachable function uses a
  module-global OS handle (opened at import time, shared across
  ``fork``), or calls ``os.fork`` directly outside the sweep runner.
* ``effect-rng-aliasing`` — one function draws from two distinct RNG
  streams, or draws from a stream it also hands to a callee that
  draws from it; either way the draw interleaving is an accident of
  statement order and defeats per-stream accounting.
* ``effect-order-dep`` — a loop over an unordered container whose body
  (transitively) draws RNG or writes shared state; iteration order
  becomes part of the result.

Findings carry the worker-entry reachability chain or the callee
summary that produced them, so every report shows its interprocedural
evidence.  They reuse heterolint's :class:`Finding` shape, so
suppression comments, the baseline file, and SARIF output all apply.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.effect.summary import EffectAnalysis
from repro.devtools.flow.graph import FunctionInfo, ProjectIndex
from repro.devtools.lint import Finding

__all__ = [
    "DEFAULT_WORKER_ENTRY_POINTS",
    "EffectRules",
    "effect_rule_metadata",
    "worker_entry_points",
]

#: Used when the tree has no ``WORKER_ENTRY_POINTS`` marker of its own.
DEFAULT_WORKER_ENTRY_POINTS = ("_run_chunk", "_run_one", "run_spec")

#: Module (index-normalized) whose functions run inside forked workers.
_WORKER_MODULE = "sim.parallel"


def effect_rule_metadata() -> "dict[str, str]":
    """Every effect rule id -> one-line rationale (the ``effect-`` part
    of the namespace documented in docs/devtools.md)."""
    return {
        "effect-shared-write": (
            "a module global written on a forked-worker path is a "
            "parent/worker race; worker writes vanish at join"
        ),
        "effect-fork-unsafe": (
            "module-global OS handles and os.fork() on the worker path "
            "share descriptors/offsets across fork"
        ),
        "effect-rng-aliasing": (
            "drawing from two RNG streams in one function (or splitting "
            "one stream across a call boundary) pins statement order "
            "into the stream and breaks per-stream reproducibility"
        ),
        "effect-order-dep": (
            "iterating an unordered dict/set view while drawing RNG or "
            "writing shared state makes the result depend on insertion "
            "order"
        ),
    }


def worker_entry_points(index: ProjectIndex) -> "tuple[str, ...]":
    """The worker-root function names: ``sim.parallel``'s own
    ``WORKER_ENTRY_POINTS`` marker when present (read statically, no
    import), else the defaults."""
    module = index.modules.get(_WORKER_MODULE)
    if module is not None:
        for node in module.ctx.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "WORKER_ENTRY_POINTS"
            ):
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    break
                if isinstance(value, (tuple, list)) and all(
                    isinstance(item, str) for item in value
                ):
                    return tuple(value)
    return DEFAULT_WORKER_ENTRY_POINTS


class EffectRules:
    """Run the four effect rules over one analysis."""

    def __init__(self, analysis: EffectAnalysis) -> None:
        self.analysis = analysis
        self.index = analysis.index
        self._reachable = self._worker_reachable()

    # ------------------------------------------------------------------
    # Worker reachability
    # ------------------------------------------------------------------

    def _worker_reachable(self) -> "dict[str, list[str]]":
        """qualname -> call chain from a worker entry point (BFS over
        resolved + override edges; deterministic, shortest-first)."""
        roots = [
            f"{_WORKER_MODULE}.{name}"
            for name in worker_entry_points(self.index)
            if f"{_WORKER_MODULE}.{name}" in self.index.functions
        ]
        chains: "dict[str, list[str]]" = {}
        queue: "list[str]" = []
        for root in roots:
            chains[root] = [root]
            queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(
                self.analysis.reach_edges.get(current, ())
            ):
                if callee in chains:
                    continue
                chains[callee] = chains[current] + [callee]
                queue.append(callee)
        return chains

    def _chain_text(self, qualname: str) -> str:
        chain = self._reachable.get(qualname, [])
        if len(chain) > 5:
            chain = chain[:2] + ["..."] + chain[-2:]
        return " -> ".join(chain)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def check(self) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            yield from self._check_shared_write(info)
            yield from self._check_fork_unsafe(info)
            yield from self._check_rng_aliasing(info)
            yield from self._check_order_dep(info)

    def _check_shared_write(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        if info.qualname not in self._reachable:
            return
        for site in self.analysis.direct[info.qualname]:
            if site.kind != "global-write":
                continue
            suffix = f" ({site.detail})" if site.detail else ""
            yield self._finding(
                info, "effect-shared-write", site,
                f"module global {site.ident!r} is written here{suffix} "
                "on a forked-worker path "
                f"[{self._chain_text(info.qualname)}]; parent and "
                "workers race on it and worker writes are lost at join",
            )

    def _check_fork_unsafe(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for site in self.analysis.direct[info.qualname]:
            if site.kind == "fork" and info.module != _WORKER_MODULE:
                yield self._finding(
                    info, "effect-fork-unsafe", site,
                    f"direct {site.ident}() outside the sweep runner; "
                    "forked children inherit simulator state the "
                    "equivalence harness cannot see",
                )
            elif (
                site.kind == "handle-use"
                and info.qualname in self._reachable
            ):
                yield self._finding(
                    info, "effect-fork-unsafe", site,
                    f"module-global OS handle {site.ident!r} is used on "
                    "a forked-worker path "
                    f"[{self._chain_text(info.qualname)}]; children "
                    "share the descriptor and its offset after fork",
                )

    def _check_rng_aliasing(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        direct_streams = {
            site.ident: site
            for site in self.analysis.direct[info.qualname]
            if site.kind == "rng" and self._identified(site.ident)
        }
        # (a) Two distinct identified streams drawn in one body.
        if len(direct_streams) >= 2:
            first, second = sorted(direct_streams)[:2]
            site = direct_streams[second]
            yield self._finding(
                info, "effect-rng-aliasing", site,
                f"draws from RNG streams {first!r} and {second!r} in one "
                "function; the interleaving is an accident of statement "
                "order and defeats per-stream draw accounting",
            )
        # (b) Draws from a stream it also passes to a callee that draws
        # from the matching parameter (callee-summary evidence).
        if not direct_streams:
            return
        for call in self._resolved_calls(info):
            callee = self.index.resolve_call(info, call)
            if callee is None:
                continue
            callee_summary = self.analysis.summaries.get(callee.qualname)
            if callee_summary is None:
                continue
            for stream in callee_summary.rng_streams:
                if not stream.startswith("param:"):
                    continue
                mapped = self.analysis._map_callee_stream(
                    info, call, callee, stream
                )
                if mapped in direct_streams:
                    yield info, Finding(
                        rule_id="effect-rng-aliasing",
                        path=info.ctx.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"draws from {mapped!r} directly and again "
                            f"inside {callee.name}() (its summary draws "
                            f"from {stream!r}); splitting one stream "
                            "across a call boundary pins the call order "
                            "into the stream"
                        ),
                        function=info.qualname,
                    )

    def _check_order_dep(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for site in self.analysis.direct[info.qualname]:
            if site.kind != "order-dep":
                continue
            desc = site.ident.split("[", 1)[-1].rstrip("]")
            yield self._finding(
                info, "effect-order-dep", site,
                f"loop over an unordered {desc} whose body {site.detail}; "
                "iteration order becomes part of the result — sort the "
                "iterable with an explicit key first",
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _identified(stream: str) -> bool:
        return stream != "?" and not stream.startswith("global:")

    def _resolved_calls(self, info: FunctionInfo):
        from repro.devtools.flow.graph import ordered_calls

        return ordered_calls(info.node)

    def _finding(
        self, info: FunctionInfo, rule_id: str, site, message: str
    ) -> "tuple[FunctionInfo, Finding]":
        return info, Finding(
            rule_id=rule_id,
            path=info.ctx.relpath,
            line=site.line,
            col=site.col,
            message=message,
            function=info.qualname,
        )
