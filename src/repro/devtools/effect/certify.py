"""Phase-purity certification for the vectorized fast path.

``SimulationEngine.step`` declares its phase structure in a static
``STEP_PHASES`` marker (read here with ``ast.literal_eval`` — the
certifier never imports the engine): per phase, the methods it
executes (``roots``), the attribute locations it is allowed to mutate
(``writes``, trailing ``*`` wildcards), and the opaque/polymorphic
call patterns accepted on trust with a justification (``assume``).

A phase is **certified** when the effect summaries of its roots show
nothing beyond the declaration: no RNG draws, no order-dependent
iteration, no module-global writes, no fork/handle use, every
attribute write matching a declared pattern, and every escaping call
matching an ``assume`` pattern.  Certified phases own their state the
way HeteroOS's guest kernel owns its data structures — which is
exactly the property the ROADMAP-item-2 numpy fast path needs before
it can batch a phase across epochs.

The result is the **ledger** (``heteroeffect-ledger.json``): a
deterministic JSON document pinned by CI, so a refactor that silently
impurifies a certified phase fails the build with the exact effect
that appeared.
"""

from __future__ import annotations

import ast
import json

from repro.devtools.effect.summary import EffectAnalysis
from repro.devtools.flow.graph import ProjectIndex
from repro.errors import LintError

__all__ = [
    "DEFAULT_LEDGER",
    "LEDGER_VERSION",
    "compute_ledger",
    "diff_ledgers",
    "ledger_json",
]

DEFAULT_LEDGER = "heteroeffect-ledger.json"
LEDGER_VERSION = 1

#: Module (index-normalized) and marker the phase contract lives in.
_ENGINE_MODULE = "sim.engine"
_MARKER = "STEP_PHASES"


def _load_marker(index: ProjectIndex, module_name: str) -> "dict | None":
    module = index.modules.get(module_name)
    if module is None:
        return None
    for node in module.ctx.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _MARKER
        ):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return None
            return value if isinstance(value, dict) else None
    return None


def _matches(ident: str, pattern: str) -> bool:
    if pattern.endswith("*"):
        return ident.startswith(pattern[:-1])
    return ident == pattern


def _matches_any(ident: str, patterns) -> "str | None":
    for pattern in patterns:
        if _matches(ident, pattern):
            return pattern
    return None


def _entry(ident: str, via: str) -> str:
    return f"{ident} (via {via})" if via else ident


def compute_ledger(
    index: ProjectIndex,
    analysis: "EffectAnalysis | None" = None,
    module_name: str = _ENGINE_MODULE,
) -> dict:
    """Certify every declared phase; returns the ledger document.

    Raises :class:`~repro.errors.LintError` when the tree has no
    ``STEP_PHASES`` marker — certification without a contract is
    meaningless.
    """
    marker = _load_marker(index, module_name)
    if marker is None:
        raise LintError(
            f"no {_MARKER} marker found in module {module_name!r}; "
            "the engine must declare its phase contract"
        )
    if analysis is None:
        analysis = EffectAnalysis(index)
    phases: "dict[str, dict]" = {}
    for phase_name in sorted(marker):
        declaration = marker[phase_name] or {}
        roots = list(declaration.get("roots", []))
        declared_writes = sorted(declaration.get("writes", []))
        assume = dict(declaration.get("assume", {}))
        violations: "set[str]" = set()
        observed_writes: "set[str]" = set()
        assumed_used: "set[str]" = set()
        for root in roots:
            qualname = f"{module_name}.{root}"
            summary = analysis.summaries.get(qualname)
            if summary is None:
                violations.add(f"missing-root {qualname}")
                continue
            for stream, via in sorted(summary.rng_streams.items()):
                violations.add(_entry(f"rng-draw {stream}", via))
            for ident, via in sorted(summary.order_dep.items()):
                violations.add(_entry(f"order-dep {ident}", via))
            for ident, via in sorted(summary.global_writes.items()):
                violations.add(_entry(f"global-write {ident}", via))
            for ident, via in sorted(summary.forks.items()):
                violations.add(_entry(f"fork {ident}", via))
            for ident, via in sorted(summary.handle_uses.items()):
                violations.add(_entry(f"handle-use {ident}", via))
            for ident, via in sorted(summary.attr_writes.items()):
                if _matches_any(ident, declared_writes) is not None:
                    observed_writes.add(ident)
                else:
                    violations.add(_entry(f"undeclared-write {ident}", via))
            for table, label in (
                (summary.opaque_calls, "unknown-call"),
                (summary.poly_calls, "polymorphic-call"),
            ):
                for ident, via in sorted(table.items()):
                    matched = _matches_any(ident, assume)
                    if matched is not None:
                        assumed_used.add(matched)
                    else:
                        violations.add(_entry(f"{label} {ident}", via))
        phases[phase_name] = {
            "certified": not violations,
            "roots": roots,
            "declared_writes": declared_writes,
            "observed_writes": sorted(observed_writes),
            "assumed": {
                pattern: assume[pattern] for pattern in sorted(assumed_used)
            },
            "violations": sorted(violations),
        }
    return {
        "version": LEDGER_VERSION,
        "generator": "heteroeffect",
        "module": module_name,
        "phases": phases,
    }


def ledger_json(ledger: dict) -> str:
    """Canonical (deterministic, diff-friendly) ledger serialization."""
    return json.dumps(ledger, indent=2, sort_keys=True) + "\n"


def diff_ledgers(committed: dict, fresh: dict) -> "list[str]":
    """Human-readable differences (empty = ledgers agree)."""
    problems: "list[str]" = []
    if committed.get("version") != fresh.get("version"):
        problems.append(
            f"ledger version {committed.get('version')} != "
            f"{fresh.get('version')}"
        )
    committed_phases = committed.get("phases", {})
    fresh_phases = fresh.get("phases", {})
    for name in sorted(set(committed_phases) | set(fresh_phases)):
        before = committed_phases.get(name)
        after = fresh_phases.get(name)
        if before is None:
            problems.append(f"phase {name!r}: new (not in committed ledger)")
            continue
        if after is None:
            problems.append(f"phase {name!r}: gone from the fresh run")
            continue
        if before.get("certified") and not after.get("certified"):
            gained = sorted(
                set(after.get("violations", []))
                - set(before.get("violations", []))
            )
            problems.append(
                f"phase {name!r}: DECERTIFIED — new uncertified effect(s): "
                + "; ".join(gained or ["(none listed)"])
            )
            continue
        if before != after:
            for key in sorted(set(before) | set(after)):
                if before.get(key) != after.get(key):
                    problems.append(
                        f"phase {name!r}: {key} changed "
                        f"({before.get(key)!r} -> {after.get(key)!r})"
                    )
    return problems
