"""heteroeffect — interprocedural effect inference and phase purity.

Third member of the devtools family (heterolint sees one file,
heteroflow sees the call graph, heteroeffect sees *state*): a
fixpoint over heteroflow's :class:`~repro.devtools.flow.graph.ProjectIndex`
computes, per function, which module globals and object attributes it
transitively writes, which RNG streams it draws from, where it
iterates unordered containers while doing either, and which calls
escape the analysis.  Two clients share the summaries:

* the race/fork-safety **rules** (``repro lint --effects``,
  ``effect-*`` rule ids) guard the forked sweep workers;
* the phase **certifier** (``repro certify``) proves which
  ``SimulationEngine.step`` phases are free of cross-phase hidden
  state and writes the ``heteroeffect-ledger.json`` CI pins.

See docs/devtools.md for the rule table and a certification
walkthrough.
"""

from __future__ import annotations

from repro.devtools.effect.certify import (
    DEFAULT_LEDGER,
    LEDGER_VERSION,
    compute_ledger,
    diff_ledgers,
    ledger_json,
)
from repro.devtools.effect.rules import (
    DEFAULT_WORKER_ENTRY_POINTS,
    EffectRules,
    effect_rule_metadata,
    worker_entry_points,
)
from repro.devtools.effect.summary import (
    EffectAnalysis,
    EffectSite,
    EffectSummary,
    analysis_cache_key,
    cached_effect_analysis,
)

__all__ = [
    "DEFAULT_LEDGER",
    "DEFAULT_WORKER_ENTRY_POINTS",
    "EffectAnalysis",
    "EffectRules",
    "EffectSite",
    "EffectSummary",
    "LEDGER_VERSION",
    "analysis_cache_key",
    "cached_effect_analysis",
    "compute_ledger",
    "diff_ledgers",
    "effect_rule_metadata",
    "ledger_json",
    "worker_entry_points",
]
