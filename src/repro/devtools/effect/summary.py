"""Interprocedural effect summaries.

Every heteroeffect client — the race rules and the phase certifier —
reads the same per-function :class:`EffectSummary`: which module
globals and object attributes a function (transitively) writes, which
RNG streams it draws from, where it iterates an unordered container
while doing either, and which calls escape the analysis (opaque or
polymorphic dispatch).  Summaries are computed by a bounded fixpoint
over heteroflow's :class:`~repro.devtools.flow.graph.ProjectIndex`
call graph, the same shape as the determinism-taint pass: direct
effects are extracted once per function, then callee summaries are
folded in until nothing changes.

Every transitive entry keeps a ``via`` provenance chain (the callee
path that introduced it), so findings and ledger violations can show
*how* an effect reaches a function, not just that it does.

Deliberate blind spots, documented here once: calls into non-indexed
(stdlib/third-party) modules are assumed effect-free on simulator
state except ``os.fork`` and ``random.*`` draws; RNG receivers are
recognized by name (``*rng*``/``*random*``/``*stream*`` or a draw-only
method); attribute writes are attributed to the receiver's static
class without escape analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.devtools.flow.graph import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    ordered_calls,
    ordered_nodes,
)

__all__ = [
    "EffectSite",
    "EffectSummary",
    "EffectAnalysis",
    "analysis_cache_key",
    "cached_effect_analysis",
]

#: Method names that always mean an RNG draw, whatever the receiver.
_DRAW_ALWAYS = frozenset(
    {
        "randint", "randrange", "getrandbits", "shuffle", "choices",
        "gauss", "betavariate", "expovariate", "triangular",
        "normalvariate", "lognormvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "randbytes",
    }
)

#: Draw methods shared with non-RNG APIs; need an RNG-looking receiver.
_DRAW_NAMED = frozenset({"random", "sample", "choice", "uniform"})

#: Receiver-name fragments that mark an object as an RNG stream.
_RNG_NAME_FRAGMENTS = ("rng", "random", "stream")

#: In-place mutators on containers; a call on a global/attribute
#: receiver is a write to it.
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "setdefault",
        "clear", "extend", "remove", "discard", "insert", "sort",
        "reverse",
    }
)

#: Builtins (and builtin-like names) that cannot touch simulator state
#: beyond their arguments' own methods.
_PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "callable", "dict",
        "divmod", "enumerate", "filter", "float", "format", "frozenset",
        "getattr", "hasattr", "hash", "id", "int", "isinstance",
        "issubclass", "iter", "len", "list", "map", "max", "min",
        "next", "object", "ord", "pow", "print", "range", "repr",
        "reversed", "round", "set", "sorted", "str", "sum", "tuple",
        "type", "vars", "zip",
    }
)

#: Read-only container/str methods never worth an opaque-call entry.
_PURE_METHODS = frozenset(
    {
        "get", "items", "keys", "values", "copy", "index", "count",
        "split", "rsplit", "join", "startswith", "endswith", "format",
        "strip", "lstrip", "rstrip", "encode", "decode", "lower",
        "upper", "replace", "most_common", "union", "intersection",
        "difference", "mean", "total_seconds", "as_posix", "resolve",
        "exists", "is_dir", "is_file", "relative_to", "with_suffix",
        "hexdigest", "digest", "dumps", "loads", "isoformat",
    }
)

#: Module-level calls whose result is an OS handle shared across fork.
_HANDLE_FACTORIES = frozenset({"open", "socket", "Popen", "popen"})

#: Unordered-iteration sources (matches the taint pass).
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def _is_dict_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not node.keywords
    )


def _dotted_text(node: ast.expr) -> "str | None":
    """``self.binding.rng`` as text, or None for non-dotted shapes."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _looks_like_rng(text: "str | None") -> bool:
    if not text:
        return False
    last = text.split(".")[-1].lower()
    return any(fragment in last for fragment in _RNG_NAME_FRAGMENTS)


@dataclass(frozen=True)
class EffectSite:
    """One direct effect at one source location."""

    kind: str  # global-write | attr-write | rng | order-dep | opaque-call
    #        | poly-call | fork | handle-use
    ident: str
    line: int
    col: int
    detail: str = ""


@dataclass
class EffectSummary:
    """Transitive effects of one function; ident -> ``via`` chain
    ("" when the effect is in the function's own body)."""

    global_writes: "dict[str, str]" = field(default_factory=dict)
    attr_writes: "dict[str, str]" = field(default_factory=dict)
    rng_streams: "dict[str, str]" = field(default_factory=dict)
    order_dep: "dict[str, str]" = field(default_factory=dict)
    opaque_calls: "dict[str, str]" = field(default_factory=dict)
    poly_calls: "dict[str, str]" = field(default_factory=dict)
    forks: "dict[str, str]" = field(default_factory=dict)
    handle_uses: "dict[str, str]" = field(default_factory=dict)

    def _maps(self) -> "tuple[dict[str, str], ...]":
        return (
            self.global_writes, self.attr_writes, self.rng_streams,
            self.order_dep, self.opaque_calls, self.poly_calls,
            self.forks, self.handle_uses,
        )

    @property
    def size(self) -> int:
        return sum(len(table) for table in self._maps())


def _chain(callee_qualname: str, via: str, limit: int = 4) -> str:
    """Provenance for an effect absorbed from ``callee``."""
    if not via:
        return callee_qualname
    hops = via.split(" -> ")
    if len(hops) >= limit:
        hops = hops[: limit - 1] + ["..."]
    return " -> ".join([callee_qualname] + hops)


class _ModuleFacts:
    """Per-module name tables shared by every function in the module."""

    def __init__(self, tree: ast.Module) -> None:
        #: Names assigned at module top level.
        self.globals: "set[str]" = set()
        #: Globals whose top-level value is an OS-handle factory call.
        self.handles: "set[str]" = set()
        for node in tree.body:
            targets: "list[ast.expr]" = []
            value: "ast.expr | None" = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    self.globals.add(target.id)
                    if self._is_handle_factory(value):
                        self.handles.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            self.globals.add(element.id)

    @staticmethod
    def _is_handle_factory(value: "ast.expr | None") -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in _HANDLE_FACTORIES
        if isinstance(func, ast.Attribute):
            return func.attr in _HANDLE_FACTORIES
        return False


class EffectAnalysis:
    """Per-function effect summaries over the whole project.

    ``_restored`` short-circuits the expensive site extraction and
    fixpoint with ``(summaries, direct, reach_edges)`` previously
    persisted by :func:`cached_effect_analysis`; callers must have
    validated the call-graph key themselves (the cache layer does).
    """

    def __init__(
        self,
        index: ProjectIndex,
        max_rounds: int = 12,
        _restored=None,
    ) -> None:
        self.index = index
        self.module_facts: "dict[str, _ModuleFacts]" = {
            name: _ModuleFacts(module.ctx.tree)
            for name, module in index.modules.items()
        }
        if _restored is not None:
            self.summaries, self.direct, self.reach_edges = _restored
            return
        self.summaries: "dict[str, EffectSummary]" = {
            qualname: EffectSummary() for qualname in index.functions
        }
        #: qualname -> direct sites, for findings at precise locations.
        self.direct: "dict[str, list[EffectSite]]" = {}
        #: qualname -> resolved callee qualnames (calls + constructions
        #: + override closure), the edge set race reachability walks.
        self.reach_edges: "dict[str, set[str]]" = {}
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            self.direct[qualname] = self._direct_sites(info)
        self._fixpoint(max_rounds)

    # ------------------------------------------------------------------
    # Direct effect extraction
    # ------------------------------------------------------------------

    def _local_names(self, info: FunctionInfo) -> "set[str]":
        """Names bound inside the function (stores make names local
        unless declared ``global``)."""
        names = {arg.arg for arg in info.all_args}
        names.add(info.node.args.vararg.arg if info.node.args.vararg else "")
        names.add(info.node.args.kwarg.arg if info.node.args.kwarg else "")
        globals_declared: "set[str]" = set()
        for node in ordered_nodes(info.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                names.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
        names.discard("")
        return names - globals_declared

    def _attr_ident(
        self, info: FunctionInfo, target: ast.Attribute
    ) -> str:
        """``Class.attr`` for an attribute store, ``?.attr`` when the
        receiver's class is unknowable."""
        receiver = self.index._receiver_class(info, target.value)
        if receiver is not None:
            return f"{receiver.name}.{target.attr}"
        dotted = _dotted_text(target.value)
        if dotted is not None and dotted.startswith("self."):
            cinfo = self.index.class_of(info)
            owner = cinfo.name if cinfo is not None else "?"
            return f"{owner}.{dotted[len('self.'):]}.{target.attr}"
        return f"?.{target.attr}"

    def _stream_id(self, info: FunctionInfo, node: ast.expr) -> str:
        """Stable identity of an RNG stream expression."""
        param_names = {arg.arg for arg in info.all_args}
        if isinstance(node, ast.Name):
            if node.id in param_names:
                return f"param:{node.id}"
            module = self.index.modules.get(info.module)
            if (
                module is not None
                and module.imports.get(node.id, "").split(".")[0] == "random"
            ):
                return "global:random"
            return f"local:{node.id}"
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "random"
            ):
                return "global:random"
            base = self.index._receiver_class(info, node.value)
            if base is not None:
                return f"{base.name}.{node.attr}"
            dotted = _dotted_text(node)
            if dotted is not None and dotted.startswith("self."):
                cinfo = self.index.class_of(info)
                if cinfo is not None:
                    return f"{cinfo.name}.{dotted[len('self.'):]}"
            return "?"
        return "?"

    def _store_sites(
        self, info: FunctionInfo, target: ast.expr, local: "set[str]",
        facts: _ModuleFacts, line: int, col: int,
    ) -> "Iterable[EffectSite]":
        """Effects of one assignment/del/augmented-store target."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._store_sites(
                    info, element, local, facts, line, col
                )
            return
        if isinstance(target, ast.Starred):
            yield from self._store_sites(
                info, target.value, local, facts, line, col
            )
            return
        if isinstance(target, ast.Name):
            if target.id not in local and target.id in facts.globals:
                yield EffectSite(
                    "global-write", f"{info.module}:{target.id}", line, col
                )
            return
        if isinstance(target, ast.Attribute):
            yield EffectSite(
                "attr-write", self._attr_ident(info, target), line, col
            )
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name):
                if base.id not in local and base.id in facts.globals:
                    yield EffectSite(
                        "global-write", f"{info.module}:{base.id}", line, col,
                        detail="item assignment",
                    )
            elif isinstance(base, ast.Attribute):
                yield EffectSite(
                    "attr-write", self._attr_ident(info, base), line, col,
                    detail="item assignment",
                )

    def _call_sites(
        self, info: FunctionInfo, call: ast.Call, local: "set[str]",
        facts: _ModuleFacts,
    ) -> "Iterable[EffectSite]":
        """Effects of one call site, excluding callee propagation."""
        func = call.func
        line, col = call.lineno, call.col_offset
        module = self.index.modules.get(info.module)
        if isinstance(func, ast.Name):
            if func.id in _PURE_BUILTINS:
                return
            if (
                self.index.resolve_call(info, call) is not None
                or self.index.resolve_constructor(info, call) is not None
            ):
                return
            if func.id in local:
                # A callable bound locally (callback parameter, closure):
                # nothing is known about it.
                yield EffectSite("opaque-call", f"?:{func.id}", line, col)
                return
            if module is not None and func.id in module.imports:
                # From-import of a non-indexed (stdlib) function: assumed
                # effect-free on simulator state (see module docstring).
                return
            yield EffectSite("opaque-call", f"?:{func.id}", line, col)
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = func.value
        dotted = _dotted_text(receiver)
        # Stdlib-module-qualified calls: os.fork / random draws are
        # effects; everything else is assumed pure on simulator state.
        if isinstance(receiver, ast.Name) and module is not None:
            imported = module.imports.get(receiver.id)
            if imported is not None and self.index.resolve_dotted(
                imported
            ) is None:
                root = imported.split(".")[0]
                if root == "os" and attr in ("fork", "forkpty"):
                    yield EffectSite("fork", f"os.{attr}", line, col)
                elif root == "random" and (
                    attr in _DRAW_ALWAYS or attr in _DRAW_NAMED
                ):
                    yield EffectSite("rng", "global:random", line, col)
                return
        # RNG draws by method name (+ receiver heuristics).
        if attr in _DRAW_ALWAYS or (
            attr in _DRAW_NAMED and _looks_like_rng(dotted)
        ):
            yield EffectSite(
                "rng", self._stream_id(info, receiver), line, col,
                detail=attr,
            )
            return
        # In-place mutation of a global / attribute receiver.
        if attr in _MUTATING_METHODS:
            if isinstance(receiver, ast.Name):
                if receiver.id not in local and receiver.id in facts.globals:
                    yield EffectSite(
                        "global-write", f"{info.module}:{receiver.id}",
                        line, col, detail=f".{attr}()",
                    )
                return
            if isinstance(receiver, ast.Attribute):
                yield EffectSite(
                    "attr-write", self._attr_ident(info, receiver),
                    line, col, detail=f".{attr}()",
                )
                return
            return
        if attr in _PURE_METHODS or attr.startswith("__"):
            return
        callee = self.index.resolve_call(info, call)
        if callee is not None:
            # Dynamic dispatch: the resolved method has project
            # overrides, so the static summary is a lower bound.
            owner = self.index.classes.get(
                callee.qualname.rsplit(".", 1)[0]
            )
            if owner is not None and any(
                attr in sub.methods
                for sub in self.index.subclasses_of(owner)
            ):
                yield EffectSite(
                    "poly-call", f"{owner.name}.{attr}", line, col
                )
            return
        if self.index.resolve_constructor(info, call) is not None:
            return
        receiver_class = self.index._receiver_class(info, receiver)
        if receiver_class is not None:
            yield EffectSite(
                "opaque-call", f"{receiver_class.name}.{attr}", line, col
            )
            return
        yield EffectSite("opaque-call", f"?.{attr}", line, col)

    def _body_effects_reach(
        self, info: FunctionInfo, body: "list[ast.stmt]",
        local: "set[str]", facts: _ModuleFacts,
    ) -> "tuple[bool, str]":
        """Does a loop body (transitively) draw RNG or write shared
        state?  Returns (yes, short description)."""
        for stmt in body:
            for node in ordered_nodes(stmt):
                sites: "list[EffectSite]" = []
                if isinstance(node, ast.Call):
                    sites.extend(self._call_sites(info, node, local, facts))
                    callee = self.index.resolve_call(info, node)
                    if callee is not None:
                        summary = self.summaries.get(callee.qualname)
                        if summary is not None:
                            if summary.rng_streams:
                                stream = sorted(summary.rng_streams)[0]
                                return True, (
                                    f"{callee.name}() draws from RNG "
                                    f"stream {stream!r}"
                                )
                            if summary.global_writes:
                                ident = sorted(summary.global_writes)[0]
                                return True, (
                                    f"{callee.name}() writes module "
                                    f"global {ident!r}"
                                )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        sites.extend(
                            self._store_sites(
                                info, target, local, facts,
                                node.lineno, node.col_offset,
                            )
                        )
                for site in sites:
                    if site.kind == "rng":
                        return True, f"draws from RNG stream {site.ident!r}"
                    if site.kind == "global-write":
                        return True, f"writes module global {site.ident!r}"
        return False, ""

    def _direct_sites(self, info: FunctionInfo) -> "list[EffectSite]":
        facts = self.module_facts.get(info.module)
        if facts is None:
            facts = _ModuleFacts(ast.parse(""))
        local = self._local_names(info)
        sites: "list[EffectSite]" = []
        for node in ordered_nodes(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    sites.extend(
                        self._store_sites(
                            info, target, local, facts,
                            node.lineno, node.col_offset,
                        )
                    )
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                sites.extend(
                    self._store_sites(
                        info, node.target, local, facts,
                        node.lineno, node.col_offset,
                    )
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    sites.extend(
                        self._store_sites(
                            info, target, local, facts,
                            node.lineno, node.col_offset,
                        )
                    )
            elif isinstance(node, ast.Call):
                sites.extend(self._call_sites(info, node, local, facts))
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node.id in facts.handles and node.id not in local:
                    sites.append(
                        EffectSite(
                            "handle-use", f"{info.module}:{node.id}",
                            node.lineno, node.col_offset,
                        )
                    )
        return sites

    def _order_dep_sites(self, info: FunctionInfo) -> "list[EffectSite]":
        """Loops over unordered iterables whose body draws RNG or writes
        a module global (computed post-fixpoint: needs callee
        summaries)."""
        facts = self.module_facts.get(info.module)
        if facts is None:
            return []
        local = self._local_names(info)
        sites: "list[EffectSite]" = []
        for node in ordered_nodes(info.node):
            if not isinstance(node, ast.For):
                continue
            iterable = node.iter
            if _is_dict_view_call(iterable):
                desc = f"dict .{iterable.func.attr}() view"
            elif isinstance(iterable, (ast.Set, ast.SetComp)):
                desc = "set literal"
            elif isinstance(iterable, ast.Call) and isinstance(
                iterable.func, ast.Name
            ) and iterable.func.id == "set":
                desc = "set()"
            else:
                continue
            effectful, what = self._body_effects_reach(
                info, node.body, local, facts
            )
            if effectful:
                sites.append(
                    EffectSite(
                        "order-dep",
                        f"{info.qualname}[{desc}]",
                        node.lineno, node.col_offset,
                        detail=what,
                    )
                )
        return sites

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------

    def _absorb_direct(self, qualname: str) -> None:
        summary = self.summaries[qualname]
        tables = {
            "global-write": summary.global_writes,
            "attr-write": summary.attr_writes,
            "rng": summary.rng_streams,
            "order-dep": summary.order_dep,
            "opaque-call": summary.opaque_calls,
            "poly-call": summary.poly_calls,
            "fork": summary.forks,
            "handle-use": summary.handle_uses,
        }
        for site in self.direct[qualname]:
            tables[site.kind].setdefault(site.ident, "")

    def _map_callee_stream(
        self, info: FunctionInfo, call: ast.Call,
        callee: FunctionInfo, stream: str,
    ) -> str:
        """Translate a callee stream id into the caller's frame."""
        if not stream.startswith("param:"):
            return stream
        wanted = stream[len("param:"):]
        params = callee.params
        for position, arg in enumerate(call.args):
            if position < len(params) and params[position].arg == wanted:
                return self._stream_id(info, arg)
        for keyword in call.keywords:
            if keyword.arg == wanted:
                return self._stream_id(info, keyword.value)
        return "?"

    def _absorb_callee(
        self, info: FunctionInfo, call: ast.Call, callee_qualname: str,
        constructed: "ClassInfo | None",
    ) -> bool:
        """Fold one callee summary into the caller's; True if changed."""
        callee_summary = self.summaries.get(callee_qualname)
        callee = self.index.functions.get(callee_qualname)
        if callee_summary is None or callee is None:
            return False
        summary = self.summaries[info.qualname]
        changed = False
        pairs = zip(summary._maps(), callee_summary._maps())
        for position, (mine, theirs) in enumerate(pairs):
            for ident, via in theirs.items():
                if position == 1 and constructed is not None and (
                    ident.startswith(constructed.name + ".")
                ):
                    # Constructor writes to the freshly built object are
                    # initialization, not shared-state mutation.
                    continue
                if position == 2:
                    ident = self._map_callee_stream(
                        info, call, callee, ident
                    )
                    if ident == "?" or ident.startswith("local:"):
                        # A stream identified only inside the callee's
                        # frame: keep it attributed to the callee.
                        ident = f"{callee.name}()~stream"
                if ident not in mine:
                    mine[ident] = _chain(callee_qualname, via)
                    changed = True
        return changed

    def _call_targets(
        self, info: FunctionInfo
    ) -> "list[tuple[ast.Call, str, ClassInfo | None]]":
        """(call, callee qualname, constructed class) per resolvable
        call site — ordinary calls plus ``__init__`` of constructions."""
        targets: "list[tuple[ast.Call, str, ClassInfo | None]]" = []
        for call in ordered_calls(info.node):
            callee = self.index.resolve_call(info, call)
            if callee is not None:
                targets.append((call, callee.qualname, None))
                continue
            constructed = self.index.resolve_constructor(info, call)
            if constructed is not None and "__init__" in constructed.methods:
                targets.append(
                    (call, constructed.methods["__init__"].qualname,
                     constructed)
                )
        return targets

    def _fixpoint(self, max_rounds: int) -> None:
        call_targets = {
            qualname: self._call_targets(info)
            for qualname, info in self.index.functions.items()
        }
        # Reachability edges: resolved targets plus override closure
        # (a call resolved to a base method may execute any override).
        for qualname, targets in call_targets.items():
            edges: "set[str]" = set()
            for _call, callee_qualname, _constructed in targets:
                edges.add(callee_qualname)
                callee = self.index.functions.get(callee_qualname)
                if callee is None or callee.cls is None:
                    continue
                owner = self.index.classes.get(
                    callee_qualname.rsplit(".", 1)[0]
                )
                if owner is None:
                    continue
                for sub in self.index.subclasses_of(owner):
                    override = sub.methods.get(callee.name)
                    if override is not None:
                        edges.add(override.qualname)
            self.reach_edges[qualname] = edges
        for qualname in sorted(self.index.functions):
            self._absorb_direct(qualname)
        for _ in range(max_rounds):
            changed = False
            for qualname in sorted(self.index.functions):
                info = self.index.functions[qualname]
                for call, callee_qualname, constructed in call_targets[
                    qualname
                ]:
                    if self._absorb_callee(
                        info, call, callee_qualname, constructed
                    ):
                        changed = True
            if not changed:
                break
        # Order-dependence needs converged callee summaries, then one
        # more propagation round so callers inherit the sites.
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            extra = self._order_dep_sites(info)
            if extra:
                self.direct[qualname].extend(extra)
                for site in extra:
                    self.summaries[qualname].order_dep.setdefault(
                        site.ident, ""
                    )
        for _ in range(max_rounds):
            changed = False
            for qualname in sorted(self.index.functions):
                info = self.index.functions[qualname]
                summary = self.summaries[qualname]
                for call, callee_qualname, _constructed in call_targets[
                    qualname
                ]:
                    callee_summary = self.summaries.get(callee_qualname)
                    if callee_summary is None:
                        continue
                    for ident, via in callee_summary.order_dep.items():
                        if ident not in summary.order_dep:
                            summary.order_dep[ident] = _chain(
                                callee_qualname, via
                            )
                            changed = True
            if not changed:
                break


# ----------------------------------------------------------------------
# Fixpoint persistence (AST-cache payload v3)
# ----------------------------------------------------------------------

#: Bumped whenever summary extraction or the fixpoint change meaning,
#: so persisted summaries from an older analysis never satisfy a newer
#: one even over identical sources.
EFFECT_CACHE_VERSION = 1


def analysis_cache_key(index: ProjectIndex, max_rounds: int = 12) -> str:
    """A call-graph hash: digest over every indexed module's source
    (the graph and the summaries derive deterministically from them),
    the analysis version, and the fixpoint bound."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(f"effect-cache-v{EFFECT_CACHE_VERSION}:{max_rounds}".encode())
    for name in sorted(index.modules):
        ctx = index.modules[name].ctx
        digest.update(name.encode("utf-8"))
        digest.update(
            hashlib.sha256(ctx.source.encode("utf-8")).digest()
        )
    return digest.hexdigest()


def cached_effect_analysis(
    index: ProjectIndex,
    cache_dir=None,
    max_rounds: int = 12,
) -> EffectAnalysis:
    """An :class:`EffectAnalysis`, restored from the AST cache when the
    persisted call-graph key matches (warm runs skip the fixpoint
    entirely) and recomputed + persisted otherwise."""
    if cache_dir is None:
        return EffectAnalysis(index, max_rounds)
    from repro.devtools.flow.cache import (
        load_effect_summaries,
        store_effect_summaries,
    )

    key = analysis_cache_key(index, max_rounds)
    restored = load_effect_summaries(cache_dir, key)
    if restored is not None:
        return EffectAnalysis(index, max_rounds, _restored=restored)
    analysis = EffectAnalysis(index, max_rounds)
    store_effect_summaries(
        cache_dir,
        key,
        (analysis.summaries, analysis.direct, analysis.reach_edges),
    )
    return analysis
