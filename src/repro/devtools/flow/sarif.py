"""SARIF 2.1.0 output for the whole devtools family.

GitHub code scanning renders SARIF uploads as inline PR annotations,
which turns a CI lint failure from a log line into a review comment on
the offending line.  One run object per tool pass; every rule carries
its identifier, rationale, and the shared rule-ID namespace documented
in docs/devtools.md (bare kebab-case for shallow heterolint rules,
``flow-`` for heteroflow analyses, ``san-`` for FrameSanitizer defect
classes, ``effect-`` for heteroeffect race/fork-safety rules,
``contract-`` for heterocontract drift rules).
"""

from __future__ import annotations

import json

from repro.devtools.lint import Finding, LintReport

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "report_to_sarif", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool metadata per rule-ID namespace.
_TOOL_INFO = {
    "lint": ("heterolint", "simulator-specific single-file AST rules"),
    "flow": ("heteroflow", "whole-program dimension/typestate/taint analysis"),
    "san": ("framesan", "runtime frame-ownership sanitizer"),
    "effect": (
        "heteroeffect",
        "interprocedural effect/race analysis and phase certification",
    ),
    "contract": (
        "heterocontract",
        "cross-layer contract-drift analysis over mirrored declarations",
    ),
}


def _tool_key(rule_id: str) -> str:
    if rule_id.startswith("flow-"):
        return "flow"
    if rule_id.startswith("san-"):
        return "san"
    if rule_id.startswith("effect-"):
        return "effect"
    if rule_id.startswith("contract-"):
        return "contract"
    return "lint"


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col + 1, 1),
                    },
                },
            }
        ],
    }
    if finding.function:
        result["locations"][0]["logicalLocations"] = [
            {"fullyQualifiedName": finding.function, "kind": "function"}
        ]
    return result


def report_to_sarif(
    report: LintReport,
    rule_metadata: "dict[str, str] | None" = None,
) -> dict:
    """A :class:`LintReport` (shallow, deep, or combined) as a SARIF
    2.1.0 log object.  ``rule_metadata`` maps rule ids to one-line
    rationales for the rule table."""
    rule_metadata = rule_metadata or {}
    by_tool: "dict[str, list[Finding]]" = {}
    for finding in report.findings:
        by_tool.setdefault(_tool_key(finding.rule_id), []).append(finding)
    runs = []
    for tool_key in sorted(by_tool):
        findings = by_tool[tool_key]
        name, description = _TOOL_INFO[tool_key]
        rule_ids = sorted({finding.rule_id for finding in findings})
        rules = [
            {
                "id": rule_id,
                "shortDescription": {
                    "text": rule_metadata.get(rule_id, rule_id)
                },
                "defaultConfiguration": {"level": "error"},
            }
            for rule_id in rule_ids
        ]
        rule_index = {rule_id: position for position, rule_id in enumerate(rule_ids)}
        results = []
        for finding in findings:
            result = _result(finding)
            result["ruleIndex"] = rule_index[finding.rule_id]
            results.append(result)
        runs.append(
            {
                "tool": {
                    "driver": {
                        "name": name,
                        "informationUri": (
                            "https://github.com/heteroos-repro/docs/devtools.md"
                        ),
                        "version": "1.0.0",
                        "shortDescription": {"text": description},
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        )
    if not runs:
        # A clean pass still emits a valid log with one empty run.
        runs = [
            {
                "tool": {
                    "driver": {
                        "name": "heterolint",
                        "version": "1.0.0",
                        "rules": [],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [],
            }
        ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }


def sarif_json(
    report: LintReport, rule_metadata: "dict[str, str] | None" = None
) -> str:
    return json.dumps(report_to_sarif(report, rule_metadata), indent=2)
