"""Interprocedural determinism taint.

heterolint's ``unordered-placement`` rule catches ``max()`` over a dict
view *on one line*.  The dangerous cases hide across calls: a helper
returns ``d.items()`` (or a set), the caller ranks candidates with it,
and the chosen promotion victim becomes an accident of allocation
history.  This pass marks unordered iterables at their source —
``.keys()``/``.values()``/``.items()`` calls, ``set`` constructors and
literals, set comprehensions — propagates the taint through
assignments and **return values** (fixpoint over the call graph), and
reports when a tainted value reaches an order-sensitive decision sink
inside ``repro.core``/``repro.vmm``:

* ``max()``/``min()`` without a deterministic tie-break,
* ``next(iter(...))`` / ``list(...)[0]`` first-element selection,
* a ``for`` loop that ``break``s early.

``sorted(...)`` launders the taint (that is the fix).  Sinks whose
source is a dict view *on the same line* are left to the shallow rule —
running both passes must not double-report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.flow.graph import (
    FunctionInfo,
    ProjectIndex,
    ordered_nodes,
)
from repro.devtools.lint import Finding

__all__ = ["TaintAnalysis"]

#: Packages whose modules make placement/migration decisions (matches
#: heterolint's unordered-placement scope).
_DECISION_PACKAGES = frozenset({"core", "vmm"})

_DICT_VIEWS = frozenset({"items", "keys", "values"})

_LAUNDERERS = frozenset({"sorted", "len", "sum", "frozenset", "dict"})


def _is_dict_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not node.keywords
    )


@dataclass
class _TaintSummary:
    """Whether a function's return value iterates in unordered order."""

    returns_tainted: bool = False
    #: Param names whose taint flows straight through to the return.
    passthrough: "set[str]" = field(default_factory=set)


class TaintAnalysis:
    """Tracks unordered-iteration taint across the project call graph."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: "dict[str, _TaintSummary]" = {
            qualname: _TaintSummary() for qualname in index.functions
        }
        self._fixpoint()

    # ------------------------------------------------------------------
    # Taint of an expression
    # ------------------------------------------------------------------

    def _tainted(
        self,
        info: FunctionInfo,
        node: ast.expr,
        env: "dict[str, bool]",
    ) -> bool:
        if _is_dict_view_call(node):
            return True
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.IfExp):
            return self._tainted(info, node.body, env) or self._tainted(
                info, node.orelse, env
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _LAUNDERERS:
                    return False
                if func.id == "set":
                    return True
                if func.id in ("list", "tuple", "iter", "reversed"):
                    # Order-preserving wrappers keep the taint.
                    return any(
                        self._tainted(info, arg, env) for arg in node.args
                    )
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                return True
            callee = self.index.resolve_call(info, node)
            if callee is not None:
                summary = self.summaries.get(callee.qualname)
                if summary is not None:
                    if summary.returns_tainted:
                        return True
                    if summary.passthrough:
                        params = callee.params
                        for position, arg in enumerate(node.args):
                            if position >= len(params):
                                break
                            if params[position].arg in summary.passthrough:
                                if self._tainted(info, arg, env):
                                    return True
            return False
        return False

    # ------------------------------------------------------------------
    # Function summaries
    # ------------------------------------------------------------------

    def _fixpoint(self) -> None:
        for _ in range(5):
            changed = False
            for qualname, info in self.index.functions.items():
                summary = self.summaries[qualname]
                env = self._env_after_body(info)
                returns_tainted = False
                passthrough: "set[str]" = set()
                param_names = {arg.arg for arg in info.all_args}
                for node in ordered_nodes(info.node):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    value = node.value
                    if self._tainted(info, value, env):
                        returns_tainted = True
                    if (
                        isinstance(value, ast.Name)
                        and value.id in param_names
                    ):
                        passthrough.add(value.id)
                    elif isinstance(value, ast.Call) and isinstance(
                        value.func, ast.Name
                    ) and value.func.id in ("list", "tuple", "iter"):
                        for arg in value.args:
                            if (
                                isinstance(arg, ast.Name)
                                and arg.id in param_names
                            ):
                                passthrough.add(arg.id)
                if (
                    returns_tainted != summary.returns_tainted
                    or passthrough != summary.passthrough
                ):
                    summary.returns_tainted = returns_tainted
                    summary.passthrough = passthrough
                    changed = True
            if not changed:
                break

    def _env_after_body(self, info: FunctionInfo) -> "dict[str, bool]":
        """Name -> tainted, from a single in-order pass over the body."""
        env: "dict[str, bool]" = {}
        for node in ordered_nodes(info.node):
            if isinstance(node, ast.Assign):
                tainted = self._tainted(info, node.value, env)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = tainted
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = self._tainted(info, node.value, env)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr == "sort" and isinstance(
                node.func.value, ast.Name
            ):
                env[node.func.value.id] = False  # in-place sort launders
        return env

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check(self) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            if info.ctx.package not in _DECISION_PACKAGES:
                continue
            yield from self._check_function(info)

    def _check_function(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        env: "dict[str, bool]" = {}
        for node in ordered_nodes(info.node):
            if isinstance(node, ast.Assign):
                tainted = self._tainted(info, node.value, env)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = tainted
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr == "sort" and isinstance(
                node.func.value, ast.Name
            ):
                env[node.func.value.id] = False
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                name = node.func.id
                if name in ("max", "min") and len(node.args) == 1:
                    arg = node.args[0]
                    if _is_dict_view_call(arg):
                        continue  # shallow unordered-placement owns this
                    if self._tainted(info, arg, env):
                        yield self._finding(
                            info, node,
                            f"{name}() ranks an unordered iterable that "
                            "flowed in through the call graph; sort with an "
                            "explicit key first",
                        )
                elif name == "next" and node.args:
                    inner = node.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "iter"
                        and inner.args
                        and self._tainted(info, inner.args[0], env)
                    ):
                        yield self._finding(
                            info, node,
                            "next(iter(...)) picks the first element of an "
                            "unordered iterable; the winner is an accident "
                            "of insertion order",
                        )
            elif isinstance(node, ast.Subscript):
                if (
                    isinstance(node.slice, ast.Constant)
                    and node.slice.value == 0
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in ("list", "tuple")
                    and node.value.args
                    and self._tainted(info, node.value.args[0], env)
                ):
                    yield self._finding(
                        info, node,
                        "first element of a list() over an unordered "
                        "iterable; the winner is an accident of insertion "
                        "order",
                    )
            elif isinstance(node, ast.For):
                if _is_dict_view_call(node.iter):
                    continue  # shallow unordered-placement owns this
                if self._tainted(info, node.iter, env) and any(
                    isinstance(inner, ast.Break)
                    for inner in ast.walk(node)
                ):
                    yield self._finding(
                        info, node,
                        "early-break loop over an unordered iterable that "
                        "flowed in through the call graph; which entries "
                        "are reached depends on insertion order",
                    )

    def _finding(
        self, info: FunctionInfo, node: ast.AST, message: str
    ) -> "tuple[FunctionInfo, Finding]":
        return info, Finding(
            rule_id="flow-unordered-flow",
            path=info.ctx.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            function=info.qualname,
        )
