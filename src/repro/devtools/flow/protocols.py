"""Protocol typestate checking.

The simulator's core contracts are *temporal*: a PTE access-bit clear is
only correct if a TLB flush is charged before the next epoch reads the
bits (Observation 4 / Table 6's cost assumptions); a migration pass
must commit or abort what it began; balloon-hidden spans must be
surrendered or revealed, never abandoned; a freed region must not be
touched.  Each contract is a small finite-state machine declared as a
:class:`ProtocolSpec`, keyed on the *names* of the calls that move it.

Checking is per-function over the call sequence in source order —
control flow is linearized, which trades a little soundness for zero
configuration — with two interprocedural credits:

* a call to a project function **splices in that callee's summary**, so
  a helper that completes a protocol (clear *and* flush) satisfies its
  callers, and a helper that only closes (just the flush) closes an
  open protocol at its call site;
* a function that ends with the protocol open is **credited** when
  every one of its in-project callers demonstrably closes the protocol
  after the call — the helper-opens/caller-closes split.

A function that ends open with no such alibi is reported at the call
that opened the protocol.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.flow.graph import (
    FunctionInfo,
    ProjectIndex,
    ordered_calls,
)
from repro.devtools.lint import Finding

__all__ = ["ProtocolSpec", "ProtocolAnalysis", "CORE_PROTOCOLS"]


@dataclass(frozen=True)
class ProtocolSpec:
    """One declarative typestate contract.

    ``opens``/``closes``/``forbidden`` are method or function names; a
    call whose terminal name matches moves the machine.  When
    ``arg_keyed`` is true the machine tracks one state per first-argument
    symbol (use-after-free style contracts); otherwise one state per
    function.  ``must_close`` demands the machine be closed at function
    exit; ``forbidden`` calls are errors while the machine is open.
    """

    protocol_id: str
    description: str
    opens: "frozenset[str]"
    closes: "frozenset[str]"
    forbidden: "frozenset[str]" = frozenset()
    #: Calls that must not precede the open for the same key: reported
    #: only when the same function later opens that key, so a resource
    #: set up by a caller never false-positives.
    premature: "frozenset[str]" = frozenset()
    must_close: bool = True
    arg_keyed: bool = False
    #: Function names whose bodies implement the primitives themselves
    #: (the event source must not be checked against its own protocol).
    exclude: "frozenset[str]" = frozenset()
    open_message: str = "protocol left open at function exit"
    forbidden_message: str = "call is invalid while the protocol is open"
    premature_message: str = "call precedes the open it depends on"


#: The simulator's core contracts (see docs/devtools.md for the prose).
CORE_PROTOCOLS: "tuple[ProtocolSpec, ...]" = (
    ProtocolSpec(
        protocol_id="flow-protocol-scan",
        description=(
            "an access-bit clear must be followed by a charged TLB flush "
            "before the function returns (Observation 4: cleared bits are "
            "invisible until the hardware re-walks the page table)"
        ),
        opens=frozenset({"clear_hardware_bits"}),
        closes=frozenset({"flush"}),
        open_message=(
            "clear_hardware_bits() without a charged tlb.flush() before "
            "exit: the next epoch reads stale access bits and the scan "
            "cost model under-charges (Table 6 assumes the flush)"
        ),
    ),
    ProtocolSpec(
        protocol_id="flow-protocol-migration",
        description=(
            "a migration pass opened with begin_pass() must be resolved "
            "with commit_pass() or abort_pass()"
        ),
        opens=frozenset({"begin_pass"}),
        closes=frozenset({"commit_pass", "abort_pass"}),
        open_message=(
            "begin_pass() without commit_pass()/abort_pass(): the pass "
            "stays in flight and its pages never reach the totals"
        ),
    ),
    ProtocolSpec(
        protocol_id="flow-protocol-balloon",
        description=(
            "pages hidden from a guest (hide_pages) must be surrendered "
            "to the machine pool or revealed back before exit — hidden "
            "spans held past teardown are unaccountable"
        ),
        opens=frozenset({"hide_pages"}),
        closes=frozenset({"surrender", "reveal_pages"}),
        exclude=frozenset({"hide_pages"}),
        open_message=(
            "hide_pages() without surrender()/reveal_pages(): the span "
            "stays hidden with no owner the kernel can account for"
        ),
    ),
    ProtocolSpec(
        protocol_id="flow-protocol-region",
        description=(
            "a freed region's frames are back in the buddy allocator: "
            "touching it is a use-after-free"
        ),
        opens=frozenset({"free_region"}),
        closes=frozenset({"allocate_region"}),
        forbidden=frozenset({"touch_region"}),
        must_close=False,
        arg_keyed=True,
        exclude=frozenset({"free_region", "touch_region", "allocate_region"}),
        forbidden_message=(
            "region is touched after free_region(): its frames are back "
            "in the buddy allocator (use-after-free)"
        ),
    ),
    ProtocolSpec(
        protocol_id="flow-protocol-frames",
        description=(
            "frames must be allocated before they are touched: a region "
            "touched earlier in the same function than its allocation "
            "never had frames behind the access"
        ),
        opens=frozenset({"allocate_region"}),
        closes=frozenset({"free_region"}),
        premature=frozenset({"touch_region"}),
        must_close=False,
        arg_keyed=True,
        exclude=frozenset({"free_region", "touch_region", "allocate_region"}),
        premature_message=(
            "region is touched before allocate_region() creates it: the "
            "access has no frames behind it"
        ),
    ),
)


#: A summary event key: None (unkeyed), ("param", i) or ("literal", value).
_Key = object


@dataclass(frozen=True)
class _Event:
    kind: str  # "open" | "close" | "forbidden"
    key: "tuple | None"
    node: ast.AST


@dataclass
class _Summary:
    """Net protocol effect of one function, for splicing at call sites."""

    #: Emits a close before any open (completes a caller's open state).
    closes_first: bool = False
    #: Leaves the machine open at exit.
    leaves_open: bool = False
    #: The call node of the unclosed open (for reporting).
    open_node: "ast.AST | None" = None
    #: True when the unclosed open is emitted directly, not spliced in.
    open_is_direct: bool = False


class ProtocolAnalysis:
    """Runs every :class:`ProtocolSpec` over a :class:`ProjectIndex`."""

    def __init__(
        self,
        index: ProjectIndex,
        specs: "tuple[ProtocolSpec, ...]" = CORE_PROTOCOLS,
    ) -> None:
        self.index = index
        self.specs = specs
        #: (protocol id, qualname) -> summary.
        self._summaries: "dict[tuple[str, str], _Summary]" = {}
        #: (protocol id, qualname) -> keyed findings raised during summary.
        self._local_findings: "dict[tuple[str, str], list[tuple[FunctionInfo, Finding]]]" = {}
        for spec in self.specs:
            self._summarize(spec)

    # ------------------------------------------------------------------
    # Event extraction
    # ------------------------------------------------------------------

    @staticmethod
    def _call_name(call: ast.Call) -> "str | None":
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    @staticmethod
    def _arg_key(info: FunctionInfo, call: ast.Call) -> "tuple | None":
        """First-argument identity for arg-keyed protocols."""
        if not call.args:
            return None
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, (str, int)):
            return ("literal", arg.value)
        if isinstance(arg, ast.Name):
            for position, param in enumerate(info.params):
                if param.arg == arg.id:
                    return ("param", position)
            return ("local", arg.id)
        return None

    def _events(
        self, spec: ProtocolSpec, info: FunctionInfo
    ) -> "list[_Event]":
        """The function's protocol event sequence, callee summaries
        spliced in at their call sites."""
        events: "list[_Event]" = []
        for call in ordered_calls(info.node):
            name = self._call_name(call)
            if name is None:
                continue
            key = self._arg_key(info, call) if spec.arg_keyed else None
            if name in spec.opens:
                events.append(_Event("open", key, call))
            elif name in spec.closes:
                events.append(_Event("close", key, call))
            elif name in spec.forbidden:
                events.append(_Event("forbidden", key, call))
            elif name in spec.premature:
                events.append(_Event("premature", key, call))
            else:
                callee = self.index.resolve_call(info, call)
                if callee is None or callee.qualname == info.qualname:
                    continue
                summary = self._summaries.get(
                    (spec.protocol_id, callee.qualname)
                )
                if summary is None:
                    continue
                if summary.closes_first:
                    events.append(_Event("close", None, call))
                if summary.leaves_open:
                    events.append(_Event("spliced-open", None, call))
        return events

    # ------------------------------------------------------------------
    # Summaries (bottom-up fixpoint)
    # ------------------------------------------------------------------

    def _summarize(self, spec: ProtocolSpec) -> None:
        for _ in range(6):
            changed = False
            for qualname in self.index.functions:
                updated = self._summarize_one(spec, qualname)
                key = (spec.protocol_id, qualname)
                if self._summaries.get(key) != updated:
                    self._summaries[key] = updated
                    changed = True
            if not changed:
                break

    def _summarize_one(self, spec: ProtocolSpec, qualname: str) -> _Summary:
        info = self.index.functions[qualname]
        summary = _Summary()
        if info.name in spec.exclude:
            return summary
        findings: "list[tuple[FunctionInfo, Finding]]" = []
        # Unkeyed machine state plus one machine per tracked key.
        open_state: "dict[tuple | None, tuple[ast.AST, bool] | None]" = {}
        seen_any_event_for: "set[tuple | None]" = set()
        #: key -> first premature call seen while that key was closed.
        pending_premature: "dict[tuple, ast.AST]" = {}
        for event in self._events(spec, info):
            key = event.key
            if event.kind in ("open", "spliced-open"):
                if key is not None and key in pending_premature:
                    findings.append(
                        _make_finding(
                            info, pending_premature.pop(key),
                            spec.protocol_id, spec.premature_message,
                        )
                    )
                open_state[key] = (event.node, event.kind == "open")
                seen_any_event_for.add(key)
            elif event.kind == "close":
                if key is None:
                    # An unkeyed close closes every open machine — a
                    # teardown helper closes whatever the caller opened.
                    if not any(open_state.values()) and not summary.closes_first:
                        if not seen_any_event_for:
                            summary.closes_first = True
                    open_state = {k: None for k in open_state}
                else:
                    open_state[key] = None
                seen_any_event_for.add(key)
            elif event.kind == "forbidden":
                state = open_state.get(key)
                if state is None and key is not None:
                    # A literal-keyed machine also matches unkeyed opens.
                    state = open_state.get(None)
                if state is not None:
                    findings.append(
                        _make_finding(
                            info, event.node, spec.protocol_id,
                            spec.forbidden_message,
                        )
                    )
                    open_state[key] = None
            elif event.kind == "premature":
                # Only meaningful for keys this function itself controls:
                # a parameter key may be opened by the caller.
                if (
                    key is not None
                    and key[0] in ("literal", "local")
                    and open_state.get(key) is None
                    and key not in pending_premature
                ):
                    pending_premature[key] = event.node
        self._local_findings[(spec.protocol_id, qualname)] = findings
        still_open = [
            state for state in open_state.values() if state is not None
        ]
        if spec.must_close and still_open:
            node, direct = still_open[0]
            summary.leaves_open = True
            summary.open_node = node
            summary.open_is_direct = direct
        return summary

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _eventually_closed(
        self, spec: ProtocolSpec, qualname: str, seen: "set[str]"
    ) -> bool:
        """True when every in-project caller of ``qualname`` ends with
        the protocol closed (directly or through its own callers)."""
        if qualname in seen:
            return False
        seen.add(qualname)
        call_sites = self.index.callers.get(qualname, [])
        if not call_sites:
            return False
        for caller_qualname, _call in call_sites:
            caller_summary = self._summaries.get(
                (spec.protocol_id, caller_qualname), _Summary()
            )
            if not caller_summary.leaves_open:
                continue
            if not self._eventually_closed(spec, caller_qualname, seen):
                return False
        return True

    def check(self) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for spec in self.specs:
            for qualname in sorted(self.index.functions):
                info = self.index.functions[qualname]
                for item in self._local_findings.get(
                    (spec.protocol_id, qualname), []
                ):
                    yield item
                summary = self._summaries.get((spec.protocol_id, qualname))
                if (
                    summary is None
                    or not summary.leaves_open
                    or not summary.open_is_direct
                ):
                    continue
                if self._eventually_closed(spec, qualname, set()):
                    continue
                yield _make_finding(
                    info, summary.open_node, spec.protocol_id,
                    spec.open_message,
                )


def _make_finding(
    info: FunctionInfo, node: "ast.AST | None", rule: str, message: str
) -> "tuple[FunctionInfo, Finding]":
    return info, Finding(
        rule_id=rule,
        path=info.ctx.relpath,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
        function=info.qualname,
    )
