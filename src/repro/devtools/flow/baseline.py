"""Accepted-findings baseline.

Some deep findings are intentional — a dimension mix that is really a
documented conversion, a protocol opened here and closed by a runtime
mechanism the static pass cannot see.  Rather than scattering
suppression comments for cross-module facts, accepted findings live in
one committed JSON file, each with a one-line justification, and the
tree is pinned to *zero unbaselined* findings by
``tests/test_flow_clean.py``.

Entries match on ``(rule, path suffix, function, message)`` — never on
line numbers, so unrelated edits do not invalidate the baseline.  Stale
entries (matching nothing) are reported so the file cannot rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint import Finding
from repro.errors import LintError

__all__ = ["Baseline", "BaselineEntry"]

#: Default committed baseline, relative to the working directory.
DEFAULT_BASELINE = "heteroflow-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    function: str
    message: str
    justification: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule_id == self.rule
            and finding.function == self.function
            and finding.message == self.message
            and (
                finding.path == self.path
                or finding.path.endswith(self.path)
                or self.path.endswith(finding.path)
            )
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "function": self.function,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A set of accepted findings loaded from / saved to JSON."""

    entries: "list[BaselineEntry]" = field(default_factory=list)
    #: Entries that matched at least one finding this run.
    _used: "set[int]" = field(default_factory=set)

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise LintError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for raw in data["entries"]:
            entries.append(
                BaselineEntry(
                    rule=raw.get("rule", ""),
                    path=raw.get("path", ""),
                    function=raw.get("function", ""),
                    message=raw.get("message", ""),
                    justification=raw.get("justification", ""),
                )
            )
        return cls(entries=entries)

    def save(self, path: "str | Path") -> None:
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def accepts(self, finding: Finding) -> bool:
        for position, entry in enumerate(self.entries):
            if entry.matches(finding):
                self._used.add(position)
                return True
        return False

    def stale_entries(self) -> "list[BaselineEntry]":
        """Entries that matched nothing (call after filtering a report)."""
        return [
            entry
            for position, entry in enumerate(self.entries)
            if position not in self._used
        ]

    @classmethod
    def from_findings(
        cls, findings: "list[Finding]", justification: str = "TODO: justify"
    ) -> "Baseline":
        entries = []
        seen = set()
        for finding in findings:
            entry = BaselineEntry(
                rule=finding.rule_id,
                path=finding.path,
                function=finding.function,
                message=finding.message,
                justification=justification,
            )
            key = entry.to_dict()
            key.pop("justification")
            fingerprint = tuple(sorted(key.items()))
            if fingerprint not in seen:
                seen.add(fingerprint)
                entries.append(entry)
        return cls(entries=entries)
