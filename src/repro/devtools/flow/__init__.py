"""heteroflow — whole-program dimension, typestate, and taint analysis.

heterolint (PR 1) checks one file at a time; heteroflow parses all of
``src/repro`` once, builds a project symbol table and call graph
(:mod:`~repro.devtools.flow.graph`), and runs three interprocedural
analyses over it:

* **dimension inference** (:mod:`~repro.devtools.flow.dims`) — seeds
  ns/bytes/pages/instructions/epochs from :mod:`repro.units` aliases,
  constants, and naming conventions, propagates them through
  assignments, returns, and call arguments, and flags mixed-dimension
  arithmetic (``flow-dim-mix``/``-assign``/``-arg``/``-return``);
* **protocol typestate** (:mod:`~repro.devtools.flow.protocols`) —
  declarative finite-state contracts: access-bit clear needs a charged
  TLB flush, migration passes commit or abort, hidden balloon spans are
  surrendered or revealed, freed regions stay untouched
  (``flow-protocol-*``);
* **determinism taint** (:mod:`~repro.devtools.flow.taint`) — unordered
  dict/set iteration tracked through return values and call chains into
  placement decisions (``flow-unordered-flow``).

Run it as ``python -m repro lint --deep``; findings reuse heterolint's
:class:`~repro.devtools.lint.Finding` type, suppression comments, and
exit codes, plus a committed baseline file for accepted findings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.devtools.flow.baseline import DEFAULT_BASELINE, Baseline, BaselineEntry
from repro.devtools.flow.cache import load_contexts, store_contexts
from repro.devtools.flow.dims import DIMENSIONS, DimensionAnalysis
from repro.devtools.flow.graph import ProjectIndex
from repro.devtools.flow.protocols import (
    CORE_PROTOCOLS,
    ProtocolAnalysis,
    ProtocolSpec,
)
from repro.devtools.flow.sarif import report_to_sarif, sarif_json
from repro.devtools.flow.taint import TaintAnalysis
from repro.devtools.lint import (
    FileContext,
    Finding,
    LintReport,
    _make_rules,
    all_rules,
    iter_python_files,
)
from repro.errors import LintError

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "DIMENSIONS",
    "CORE_PROTOCOLS",
    "ProtocolSpec",
    "ProjectIndex",
    "changed_python_files",
    "deep_lint_paths",
    "deep_rule_metadata",
    "report_to_sarif",
    "sarif_json",
    "scope_to_changed",
]


def deep_rule_metadata() -> "dict[str, str]":
    """Every deep rule id -> one-line rationale (the ``flow-`` half of
    the namespace documented in docs/devtools.md)."""
    metadata = {
        "flow-dim-mix": (
            "adding/comparing values of different dimensions (ns, bytes, "
            "pages, instructions, epochs) corrupts every downstream number"
        ),
        "flow-dim-assign": (
            "a name/annotation declares one dimension but the assigned "
            "value carries another"
        ),
        "flow-dim-arg": (
            "a call passes a value of one dimension into a parameter "
            "declared as another (the page-count-into-bytes-API bug)"
        ),
        "flow-dim-return": (
            "a function annotated to return one dimension returns another"
        ),
        "flow-unordered-flow": (
            "unordered dict/set iteration reaching a placement decision "
            "through the call graph makes the victim an accident of "
            "allocation history"
        ),
    }
    for spec in CORE_PROTOCOLS:
        metadata[spec.protocol_id] = spec.description
    return metadata


def combined_rule_metadata() -> "dict[str, str]":
    """Shallow + deep + effect + contract rule ids -> rationale, for
    SARIF rule tables."""
    from repro.devtools.contract import contract_rule_metadata
    from repro.devtools.effect import effect_rule_metadata

    metadata = {
        rule_id: rule_cls.rationale
        for rule_id, rule_cls in all_rules().items()
    }
    metadata.update(deep_rule_metadata())
    metadata.update(effect_rule_metadata())
    metadata.update(contract_rule_metadata())
    return metadata


def changed_python_files(
    paths: "Iterable[str | Path]",
) -> "set[Path] | None":
    """Resolved paths of every ``.py`` file under ``paths`` that git
    reports as modified (vs HEAD) or untracked; None when git or a
    work tree is unavailable (callers should fall back to a full run).
    """
    import subprocess

    def _git(*argv: str, cwd: "str | None" = None) -> str:
        return subprocess.run(
            ["git", *argv],
            capture_output=True, text=True, check=True, cwd=cwd,
        ).stdout

    try:
        top = _git("rev-parse", "--show-toplevel").strip()
        listed = _git("diff", "--name-only", "HEAD", "--", cwd=top)
        listed += _git(
            "ls-files", "--others", "--exclude-standard", cwd=top
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    roots = [Path(p).resolve() for p in paths]
    changed: "set[Path]" = set()
    for line in listed.splitlines():
        if not line.endswith(".py"):
            continue
        path = (Path(top) / line).resolve()
        if not path.is_file():  # deleted files have nothing to lint
            continue
        if any(path == root or root in path.parents for root in roots):
            changed.add(path)
    return changed


def scope_to_changed(
    report: LintReport,
    index: ProjectIndex,
    changed: "set[Path]",
) -> LintReport:
    """Drop findings outside the changed-file closure, in place.

    The deep analyses are whole-program, so a change in one file can
    surface a finding anchored in an *unchanged* caller (a dimension
    mismatch at a call site, a contract consumer).  The closure is the
    changed files plus every file holding a transitive caller of a
    function they define — the reverse call-graph cone that a change
    can actually affect.
    """
    keep = set(changed)
    frontier = [
        qualname
        for qualname, info in index.functions.items()
        if Path(info.ctx.relpath).resolve() in keep
    ]
    seen = set(frontier)
    while frontier:
        qualname = frontier.pop()
        for caller_qualname, _call in index.callers.get(qualname, ()):
            if caller_qualname in seen:
                continue
            seen.add(caller_qualname)
            frontier.append(caller_qualname)
            info = index.functions.get(caller_qualname)
            if info is not None:
                keep.add(Path(info.ctx.relpath).resolve())
    report.findings = [
        finding
        for finding in report.findings
        if Path(finding.path).resolve() in keep
    ]
    return report


def _parse_all(
    paths: "Iterable[str | Path]",
    cache_dir: "str | Path | None",
) -> "tuple[list[Path], dict[str, FileContext]]":
    files = iter_python_files(paths)
    contexts: "dict[str, FileContext]" = {}
    if cache_dir is not None:
        contexts = load_contexts(cache_dir, files)
    for path in files:
        relpath = str(path)
        if relpath in contexts:
            continue
        try:
            contexts[relpath] = FileContext.parse(
                path.read_text(encoding="utf-8"), relpath
            )
        except SyntaxError:
            continue
    if cache_dir is not None:
        store_contexts(cache_dir, contexts)
    return files, contexts


def deep_lint_paths(
    paths: "Iterable[str | Path]",
    rule_ids: "Iterable[str] | None" = None,
    baseline: "Baseline | None" = None,
    cache_dir: "str | Path | None" = None,
    include_shallow: bool = True,
    include_deep: bool = True,
    include_effects: bool = False,
    include_contracts: bool = False,
    protocols: "tuple[ProtocolSpec, ...]" = CORE_PROTOCOLS,
) -> "tuple[LintReport, ProjectIndex]":
    """Run heteroflow (and, by default, the shallow heterolint rules)
    over every ``.py`` file under ``paths``.

    ``include_effects`` adds the heteroeffect race/fork-safety rules
    (``effect-*``); ``include_contracts`` adds the heterocontract
    drift rules (``contract-*``); ``include_deep=False`` skips the
    heteroflow analyses so ``--effects``/``--contracts`` can run
    without ``--deep``.  When both effect and contract passes run they
    share one (cache-restorable) :class:`EffectAnalysis`.  Returns the
    combined report and the project index it was computed from.
    Suppression comments apply to deep findings exactly as they do to
    shallow ones; ``baseline``-accepted findings are moved to the
    report's suppressed list.
    """
    from repro.devtools.contract import contract_rule_metadata
    from repro.devtools.effect import effect_rule_metadata

    wanted = set(rule_ids) if rule_ids is not None else None
    if wanted is not None:
        known = (
            set(all_rules())
            | set(deep_rule_metadata())
            | set(effect_rule_metadata())
            | set(contract_rule_metadata())
        )
        unknown = sorted(wanted - known)
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
    files, contexts = _parse_all(paths, cache_dir)
    report = LintReport(files_checked=len(files))
    index = ProjectIndex.build(paths, contexts=contexts)

    shallow_lines: "set[tuple[str, int]]" = set()
    if include_shallow:
        if wanted is None:
            shallow_rules = _make_rules(None)
        else:
            shallow_ids = [r for r in wanted if r in all_rules()]
            shallow_rules = _make_rules(shallow_ids) if shallow_ids else []
        for relpath in sorted(contexts):
            ctx = contexts[relpath]
            for rule in shallow_rules:
                for finding in rule.check(ctx):
                    if finding.rule_id == "unordered-placement":
                        # Even when suppressed, the shallow rule owns the
                        # line — the deep taint pass must not re-report it.
                        shallow_lines.add((finding.path, finding.line))
                    if ctx.suppressed(finding):
                        report.suppressed.append(finding)
                    elif baseline is not None and baseline.accepts(finding):
                        report.suppressed.append(finding)
                    else:
                        report.findings.append(finding)

    deep_pairs = []
    if include_deep:
        dimension_analysis = DimensionAnalysis(index)
        deep_pairs.extend(dimension_analysis.check())
        protocol_analysis = ProtocolAnalysis(index, specs=protocols)
        deep_pairs.extend(protocol_analysis.check())
        taint_analysis = TaintAnalysis(index)
        deep_pairs.extend(taint_analysis.check())
    if include_effects or include_contracts:
        from repro.devtools.effect import EffectRules, cached_effect_analysis

        analysis = cached_effect_analysis(index, cache_dir)
        if include_effects:
            deep_pairs.extend(EffectRules(analysis).check())
        if include_contracts:
            from repro.devtools.contract import ContractRules

            deep_pairs.extend(ContractRules(index, analysis).check())

    seen: "set[tuple]" = set()
    for ctx_info, finding in deep_pairs:
        if wanted is not None and finding.rule_id not in wanted:
            continue
        fingerprint = (
            finding.rule_id, finding.path, finding.line, finding.col,
            finding.message,
        )
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        if (
            finding.rule_id == "flow-unordered-flow"
            and (finding.path, finding.line) in shallow_lines
        ):
            # The shallow unordered-placement rule already reported this
            # line; one finding per defect.
            continue
        ctx = ctx_info.ctx
        if ctx.suppressed(finding):
            report.suppressed.append(finding)
        elif baseline is not None and baseline.accepts(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report, index
