"""Project symbol table and call graph for heteroflow.

heterolint's rules see one file at a time; every heteroflow analysis
needs to see *across* files — which function calls which, what type a
receiver has, what a callee returns.  :class:`ProjectIndex` parses the
whole source tree once (reusing heterolint's :class:`FileContext`, so
suppression comments keep working), then builds:

* a **module table** (dotted module name -> parsed file + import map),
* a **function table** (qualified name -> definition + enclosing class),
* a **class table** (methods, annotated field types, bases),
* a **call graph** (caller qualname -> resolved callee qualnames).

Call resolution is deliberately conservative: a call is resolved when
the receiver is ``self``, an imported module, a parameter or field with
a class annotation — or when exactly one class in the whole project
defines a method of that name.  Anything ambiguous stays unresolved and
the analyses treat it as unknown rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.lint import FileContext, iter_python_files

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "ordered_calls",
    "ordered_nodes",
]


def ordered_nodes(node: ast.AST) -> "Iterator[ast.AST]":
    """Every node under ``node`` in source (depth-first, pre-order)
    order, without descending into nested function/class definitions —
    nested definitions are indexed and analyzed as functions of their
    own."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield child
        for inner in ordered_nodes(child):
            yield inner


def ordered_calls(node: ast.AST) -> "Iterator[ast.Call]":
    """Every ``ast.Call`` under ``node`` in source (depth-first) order,
    without descending into nested function/class definitions."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(child, ast.Call):
            # Arguments evaluate before the call itself completes, but
            # for event ordering the call site position is what matters.
            for inner in ordered_calls(child):
                yield inner
            yield child
        else:
            for inner in ordered_calls(child):
                yield inner


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    cls: "str | None"
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ctx: FileContext

    @property
    def params(self) -> "list[ast.arg]":
        """Positional parameters, ``self``/``cls`` stripped for methods."""
        args = list(self.node.args.posonlyargs) + list(self.node.args.args)
        if self.cls is not None and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        return args

    @property
    def all_args(self) -> "list[ast.arg]":
        args = (
            list(self.node.args.posonlyargs)
            + list(self.node.args.args)
            + list(self.node.args.kwonlyargs)
        )
        return args


@dataclass
class ClassInfo:
    """One class definition with its methods and annotated fields."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    #: field name -> annotation expression (AnnAssign targets in the body).
    field_annotations: "dict[str, ast.expr]" = field(default_factory=dict)
    #: base-class simple names (resolution happens through the module).
    bases: "list[str]" = field(default_factory=list)
    #: field name -> class simple name inferred from method-body
    #: assignments (``self.x = ClassName(...)``, ``self.x = typed_param``);
    #: annotation-free fields the constructor gives a knowable type.
    inferred_fields: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    ctx: FileContext
    #: local alias -> dotted target ("units" -> "repro.units",
    #: "Pages" -> "repro.units.Pages").
    imports: "dict[str, str]" = field(default_factory=dict)
    #: top-level function names defined here.
    functions: "set[str]" = field(default_factory=set)
    #: top-level class names defined here.
    classes: "set[str]" = field(default_factory=set)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for ``path``; everything up to and including a
    ``repro`` path component is stripped so real-tree and fixture-tree
    names resolve the same way."""
    try:
        parts = list(path.relative_to(root).parts)
    except ValueError:
        parts = list(path.parts)
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[last + 1:]
    if not parts:
        return ""
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def normalize_dotted(dotted: str) -> str:
    """Strip a leading ``repro.`` so index lookups are root-agnostic."""
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro."):]
    return dotted


class ProjectIndex:
    """Whole-program symbol table + call graph over one file set."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        #: method name -> every FunctionInfo with that name defined in a class.
        self.method_index: "dict[str, list[FunctionInfo]]" = {}
        #: caller qualname -> [(call node, callee qualname)].
        self.call_edges: "dict[str, list[tuple[ast.Call, str]]]" = {}
        #: callee qualname -> [(caller qualname, call node)].
        self.callers: "dict[str, list[tuple[str, ast.Call]]]" = {}
        self.files_indexed = 0
        #: function qualname -> {local name -> ClassInfo} (lazy).
        self._envs: "dict[str, dict[str, ClassInfo]]" = {}
        #: class qualname -> subclasses defined anywhere in the project.
        self._subclasses: "dict[str, list[ClassInfo]] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, paths: "Iterable[str | Path]",
        contexts: "dict[str, FileContext] | None" = None,
    ) -> "ProjectIndex":
        """Parse every ``.py`` file under ``paths`` and index it.

        ``contexts`` (relpath -> pre-parsed :class:`FileContext`) lets the
        cache layer skip re-parsing unchanged files.
        """
        index = cls()
        files = iter_python_files(paths)
        roots = [Path(p) for p in paths if Path(p).is_dir()]
        root = roots[0] if len(roots) == 1 else Path(".")
        for path in files:
            relpath = str(path)
            ctx = (contexts or {}).get(relpath)
            if ctx is None:
                try:
                    ctx = FileContext.parse(
                        path.read_text(encoding="utf-8"), relpath
                    )
                except SyntaxError:
                    continue
            index._index_file(ctx, _module_name(path, root))
        index._link_calls()
        return index

    def _index_file(self, ctx: FileContext, module_name: str) -> None:
        module = ModuleInfo(name=module_name, ctx=ctx)
        self.modules[module_name] = module
        self.files_indexed += 1
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against this module's package.
                    package_parts = module_name.split(".")[:-1]
                    if node.level > 1:
                        package_parts = package_parts[: 1 - node.level] or []
                    prefix = ".".join(package_parts)
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                for alias in node.names:
                    target = f"{base}.{alias.name}".strip(".")
                    module.imports[alias.asname or alias.name] = target
        self._index_scope(ctx, module, ctx.tree.body, prefix=module_name, cls=None)

    def _index_scope(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        body: "list[ast.stmt]",
        prefix: str,
        cls: "str | None",
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}".strip(".")
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    name=node.name,
                    cls=cls,
                    node=node,
                    ctx=ctx,
                )
                self.functions[qualname] = info
                if cls is None and prefix == module.name:
                    module.functions.add(node.name)
                if cls is not None:
                    class_qual = prefix
                    if class_qual in self.classes:
                        self.classes[class_qual].methods[node.name] = info
                    self.method_index.setdefault(node.name, []).append(info)
                # Nested defs are indexed too (sanitizer-style wrappers).
                self._index_scope(
                    ctx, module, node.body, prefix=qualname, cls=cls
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}".strip(".")
                cinfo = ClassInfo(
                    qualname=qualname,
                    module=module.name,
                    name=node.name,
                    node=node,
                )
                for base in node.bases:
                    simple = _annotation_name(base)
                    if simple:
                        cinfo.bases.append(simple)
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        cinfo.field_annotations[stmt.target.id] = stmt.annotation
                self.classes[qualname] = cinfo
                if prefix == module.name:
                    module.classes.add(node.name)
                self._index_scope(
                    ctx, module, node.body, prefix=qualname, cls=node.name
                )

    def _infer_fields(self) -> None:
        """Record the class of annotation-free ``self.x`` fields from the
        assignments that create them (``self.x = ClassName(...)``,
        ``self.x = typed_param``, ``or``/conditional fallbacks)."""
        for info in self.functions.values():
            if info.cls is None:
                continue
            cinfo = self.class_of(info)
            if cinfo is None:
                continue
            for node in ordered_nodes(info.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if (
                        target.attr in cinfo.field_annotations
                        or target.attr in cinfo.inferred_fields
                    ):
                        continue
                    name = self._value_class_name(info, value)
                    if name:
                        cinfo.inferred_fields[target.attr] = name

    def _value_class_name(
        self, info: FunctionInfo, value: ast.expr
    ) -> "str | None":
        """Simple class name an assigned expression constructs/carries."""
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                name = self._value_class_name(info, operand)
                if name:
                    return name
            return None
        if isinstance(value, ast.IfExp):
            return self._value_class_name(
                info, value.body
            ) or self._value_class_name(info, value.orelse)
        module = self.modules.get(info.module)
        if isinstance(value, ast.Call):
            ctor = _annotation_name(value.func)
            if (
                ctor
                and module is not None
                and self.resolve_class_name(ctor, module) is not None
            ):
                return ctor
            return None
        if isinstance(value, ast.Name):
            for arg in info.all_args:
                if arg.arg == value.id and arg.annotation is not None:
                    name = _annotation_name(arg.annotation)
                    if (
                        name
                        and module is not None
                        and self.resolve_class_name(name, module) is not None
                    ):
                        return name
        return None

    def _link_calls(self) -> None:
        self._infer_fields()
        for qualname, info in self.functions.items():
            edges: "list[tuple[ast.Call, str]]" = []
            for call in ordered_calls(info.node):
                callee = self.resolve_call(info, call)
                if callee is not None:
                    edges.append((call, callee.qualname))
                    self.callers.setdefault(callee.qualname, []).append(
                        (qualname, call)
                    )
            self.call_edges[qualname] = edges

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_dotted(self, dotted: str) -> "FunctionInfo | ClassInfo | ModuleInfo | None":
        """A dotted import target -> indexed module/class/function."""
        dotted = normalize_dotted(dotted)
        if dotted in self.modules:
            return self.modules[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        if dotted in self.functions:
            return self.functions[dotted]
        return None

    def resolve_class_name(
        self, name: str, module: ModuleInfo
    ) -> "ClassInfo | None":
        """A simple class name as visible from ``module`` -> ClassInfo."""
        local = f"{module.name}.{name}".strip(".")
        if local in self.classes:
            return self.classes[local]
        dotted = module.imports.get(name)
        if dotted is not None:
            resolved = self.resolve_dotted(dotted)
            if isinstance(resolved, ClassInfo):
                return resolved
        # Unique class name anywhere in the project.
        matches = [c for c in self.classes.values() if c.name == name]
        if len(matches) == 1:
            return matches[0]
        return None

    def class_of(self, info: FunctionInfo) -> "ClassInfo | None":
        if info.cls is None:
            return None
        qualname = info.qualname.rsplit(".", 1)[0]
        return self.classes.get(qualname)

    def method_on(
        self, cinfo: "ClassInfo | None", name: str
    ) -> "FunctionInfo | None":
        """Look up ``name`` on a class, walking same-project bases."""
        seen: "set[str]" = set()
        while cinfo is not None and cinfo.qualname not in seen:
            seen.add(cinfo.qualname)
            if name in cinfo.methods:
                return cinfo.methods[name]
            parent = None
            module = self.modules.get(cinfo.module)
            for base in cinfo.bases:
                if module is not None:
                    parent = self.resolve_class_name(base, module)
                if parent is not None:
                    break
            cinfo = parent
        return None

    def field_class(
        self, cinfo: "ClassInfo | None", attr: str
    ) -> "ClassInfo | None":
        """Class of field ``attr`` on ``cinfo`` (annotated or inferred),
        walking same-project bases."""
        seen: "set[str]" = set()
        while cinfo is not None and cinfo.qualname not in seen:
            seen.add(cinfo.qualname)
            module = self.modules.get(cinfo.module)
            if attr in cinfo.field_annotations:
                name = _annotation_name(cinfo.field_annotations[attr])
                if name and module is not None:
                    return self.resolve_class_name(name, module)
                return None
            if attr in cinfo.inferred_fields:
                if module is not None:
                    return self.resolve_class_name(
                        cinfo.inferred_fields[attr], module
                    )
                return None
            parent = None
            for base in cinfo.bases:
                if module is not None:
                    parent = self.resolve_class_name(base, module)
                if parent is not None:
                    break
            cinfo = parent
        return None

    def local_env(self, info: FunctionInfo) -> "dict[str, ClassInfo]":
        """Local name -> class, from one in-order pass over the body.

        Only single-target assignments whose value has a knowable class
        (construction, typed field/param, call with an annotated return)
        bind a name; reassignment to anything unknowable unbinds it."""
        cached = self._envs.get(info.qualname)
        if cached is not None:
            return cached
        env: "dict[str, ClassInfo]" = {}
        # Registered before the pass so recursive resolution during the
        # pass sees the (partial, in-order) environment, never recurses.
        self._envs[info.qualname] = env
        for node in ordered_nodes(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                cls = self._receiver_class(info, node.value)
                if cls is not None:
                    env[node.targets[0].id] = cls
                else:
                    env.pop(node.targets[0].id, None)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = _annotation_name(node.annotation)
                module = self.modules.get(info.module)
                cls = (
                    self.resolve_class_name(name, module)
                    if name and module is not None
                    else None
                )
                if cls is not None:
                    env[node.target.id] = cls
        return env

    def subclasses_of(self, cinfo: ClassInfo) -> "list[ClassInfo]":
        """Every project class whose (transitive) bases include ``cinfo``."""
        if self._subclasses is None:
            self._subclasses = {}
            for candidate in self.classes.values():
                seen: "set[str]" = set()
                stack = [candidate]
                while stack:
                    current = stack.pop()
                    if current.qualname in seen:
                        continue
                    seen.add(current.qualname)
                    module = self.modules.get(current.module)
                    for base in current.bases:
                        parent = (
                            self.resolve_class_name(base, module)
                            if module is not None
                            else None
                        )
                        if parent is None:
                            continue
                        self._subclasses.setdefault(
                            parent.qualname, []
                        ).append(candidate)
                        stack.append(parent)
        return self._subclasses.get(cinfo.qualname, [])

    def resolve_constructor(
        self, info: FunctionInfo, call: ast.Call
    ) -> "ClassInfo | None":
        """The class a bare-name/attribute call constructs, if any."""
        func = call.func
        module = self.modules.get(info.module)
        if module is None:
            return None
        if isinstance(func, ast.Name):
            # A name that is also a project function is a call, not a
            # construction.
            if func.id in module.functions:
                return None
            return self.resolve_class_name(func.id, module)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            dotted = module.imports.get(func.value.id)
            if dotted is not None:
                resolved = self.resolve_dotted(f"{dotted}.{func.attr}")
                if isinstance(resolved, ClassInfo):
                    return resolved
        return None

    def _receiver_class(
        self, info: FunctionInfo, value: ast.expr
    ) -> "ClassInfo | None":
        """Static type of a call receiver expression, when knowable."""
        module = self.modules.get(info.module)
        if isinstance(value, ast.Name):
            if value.id == "self":
                return self.class_of(info)
            # A parameter with a class annotation.
            for arg in info.all_args:
                if arg.arg == value.id and arg.annotation is not None:
                    name = _annotation_name(arg.annotation)
                    if name and module is not None:
                        return self.resolve_class_name(name, module)
            # A local bound to a knowable class earlier in the body.
            return self.local_env(info).get(value.id)
        elif isinstance(value, ast.Attribute):
            # ``self.field`` / ``obj.field`` chains through annotated or
            # inferred field types.
            base = self._receiver_class(info, value.value)
            if base is not None:
                return self.field_class(base, value.attr)
        elif isinstance(value, ast.Call):
            # Direct construction: ``Tlb().flush()``.
            ctor = _annotation_name(value.func)
            if ctor and module is not None:
                constructed = self.resolve_class_name(ctor, module)
                if constructed is not None:
                    return constructed
            # A call whose callee has a class-annotated return type.
            callee = self.resolve_call(info, value)
            if callee is not None and callee.node.returns is not None:
                name = _annotation_name(callee.node.returns)
                callee_module = self.modules.get(callee.module)
                if name and callee_module is not None:
                    return self.resolve_class_name(name, callee_module)
        return None

    def resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> "FunctionInfo | None":
        """Resolve a call site inside ``info`` to a project function."""
        func = call.func
        module = self.modules.get(info.module)
        if isinstance(func, ast.Name):
            if module is not None and func.id in module.functions:
                return self.functions.get(f"{module.name}.{func.id}".strip("."))
            if module is not None and func.id in module.imports:
                resolved = self.resolve_dotted(module.imports[func.id])
                if isinstance(resolved, FunctionInfo):
                    return resolved
            # A nested helper defined in the enclosing function.
            nested = self.functions.get(f"{info.qualname}.{func.id}")
            if nested is not None:
                return nested
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # Module-qualified call: ``units.pages_of_bytes(...)``.
        if isinstance(func.value, ast.Name) and module is not None:
            dotted = module.imports.get(func.value.id)
            if dotted is not None:
                resolved = self.resolve_dotted(f"{dotted}.{func.attr}")
                if isinstance(resolved, FunctionInfo):
                    return resolved
                owner = self.resolve_dotted(dotted)
                if isinstance(owner, ModuleInfo):
                    return self.functions.get(
                        f"{owner.name}.{func.attr}".strip(".")
                    )
        # Typed receiver: self, annotated parameter, annotated field.
        receiver = self._receiver_class(info, func.value)
        if receiver is not None:
            method = self.method_on(receiver, func.attr)
            if method is not None:
                return method
        # Unique method name anywhere in the project.
        candidates = self.method_index.get(func.attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def _annotation_name(node: "ast.expr | None") -> "str | None":
    """Simple class name of an annotation/base expression, unwrapping
    ``Optional``-style quoting, unions, and subscripts."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("|")[0].strip()
        text = text.split("[")[0].strip()
        return text.split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return _annotation_name(inner.elts[0])
            return _annotation_name(inner)
        return base
    return None
