"""Whole-program dimension inference.

The simulator's quantities come in five currencies — nanoseconds,
bytes, pages, instructions, and epochs — and the bugs that corrupt
benchmark numbers are exactly the ones that mix them: a page count
flowing into a byte-sized API, a nanosecond cost added to an
instruction count.  This pass seeds dimensions from three sources:

* the ``Annotated`` aliases in :mod:`repro.units` (``Ns``, ``Bytes``,
  ``Pages``, ``Instructions``, ``Epochs``) used in signatures and
  dataclass fields,
* the :mod:`repro.units` constants and converters (``PAGE_SIZE`` is
  bytes, ``pages_of_bytes`` maps bytes to pages, ...),
* naming conventions (``*_ns``, ``*_pages``, ``pages_*``, ...),

then propagates them through assignments, returns, and resolved call
arguments, with function summaries iterated to a fixpoint so a
dimension inferred in one module flows into its callers everywhere.

Mixing rules: addition, subtraction, comparison, and ``min``/``max``
require like dimensions; multiplying or dividing by a dimensionless
factor preserves a dimension; ``pages * BYTES`` is bytes (the page-size
conversion); dividing like by like is dimensionless.  Anything the
algebra cannot prove stays *unknown* and is never reported — findings
need two **known, different** dimensions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.flow.graph import (
    FunctionInfo,
    ProjectIndex,
    _annotation_name,
    ordered_nodes,
)
from repro.devtools.lint import Finding

__all__ = ["DIMENSIONS", "DimensionAnalysis", "FuncDims"]

#: Dimension name -> the repro.units Annotated alias that declares it.
DIMENSIONS = {
    "ns": "Ns",
    "bytes": "Bytes",
    "pages": "Pages",
    "instructions": "Instructions",
    "epochs": "Epochs",
}

_ALIAS_TO_DIM = {alias: dim for dim, alias in DIMENSIONS.items()}

#: repro.units module constants, by dimension.
_UNITS_CONSTANTS = {
    "KIB": "bytes",
    "MIB": "bytes",
    "GIB": "bytes",
    "PAGE_SIZE": "bytes",
    "CACHE_LINE": "bytes",
    "NS_PER_US": "ns",
    "NS_PER_MS": "ns",
    "NS_PER_SEC": "ns",
}

#: Name-convention seeds: dimension -> (suffixes, prefixes, exact names).
_NAME_SEEDS = {
    "ns": (("_ns",), ("ns_",), ()),
    "bytes": (("_bytes",), ("bytes_",), ("num_bytes",)),
    "pages": (("_pages",), ("pages_",), ("pages",)),
    "instructions": (("_instructions",), (), ("instructions",)),
    "epochs": (("_epoch", "_epochs"), (), ("epoch", "epochs")),
}

#: Marks a numeric literal / dimensionless factor: compatible with all.
ANY = "*"


def dim_of_name(name: str) -> "str | None":
    """Naming-convention dimension of a variable/attribute name."""
    lowered = name.lower()
    for dim, (suffixes, prefixes, exact) in _NAME_SEEDS.items():
        if lowered in exact:
            return dim
        if any(lowered.endswith(s) for s in suffixes):
            return dim
        if any(lowered.startswith(p) for p in prefixes):
            return dim
    return None


@dataclass
class FuncDims:
    """Dimension summary for one function."""

    params: "dict[str, str]" = field(default_factory=dict)
    ret: "str | None" = None
    #: True when ``ret`` came from an explicit annotation (never widened).
    ret_annotated: bool = False


class DimensionAnalysis:
    """Runs dimension inference over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: "dict[str, FuncDims]" = {}
        #: class qualname -> field name -> dimension.
        self.field_dims: "dict[str, dict[str, str]]" = {}
        self._seed_summaries()
        self._infer_returns()

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def _alias_dim(self, info: FunctionInfo, node: "ast.expr | None") -> "str | None":
        """Dimension declared by an annotation expression, if any."""
        if node is None:
            return None
        module = self.index.modules.get(info.module)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.strip().strip('"')
            simple = text.split("[")[0].split(".")[-1].strip()
            return self._alias_name_dim(simple, module)
        if isinstance(node, ast.Name):
            return self._alias_name_dim(node.id, module)
        if isinstance(node, ast.Attribute):
            # ``units.Ns`` — trust the attribute name when the base is a
            # units import, otherwise require an exact alias name.
            return _ALIAS_TO_DIM.get(node.attr)
        return None

    @staticmethod
    def _alias_name_dim(name: str, module) -> "str | None":
        if name not in _ALIAS_TO_DIM:
            return None
        if module is None:
            return _ALIAS_TO_DIM[name]
        dotted = module.imports.get(name, "")
        if dotted.endswith(f"units.{name}") or dotted == "":
            return _ALIAS_TO_DIM[name]
        return None

    def _seed_summaries(self) -> None:
        for qualname, info in self.index.functions.items():
            summary = FuncDims()
            for arg in info.all_args:
                dim = self._alias_dim(info, arg.annotation)
                if dim is None:
                    dim = dim_of_name(arg.arg)
                if dim is not None:
                    summary.params[arg.arg] = dim
            ret_dim = self._alias_dim(info, info.node.returns)
            if ret_dim is not None:
                summary.ret = ret_dim
                summary.ret_annotated = True
            self.summaries[qualname] = summary
        for qualname, cinfo in self.index.classes.items():
            dims: "dict[str, str]" = {}
            for name, annotation in cinfo.field_annotations.items():
                dim = None
                simple = _annotation_name(annotation)
                if simple in _ALIAS_TO_DIM:
                    dim = _ALIAS_TO_DIM[simple]
                if dim is None:
                    dim = dim_of_name(name)
                if dim is not None:
                    dims[name] = dim
            if dims:
                self.field_dims[qualname] = dims

    def _infer_returns(self) -> None:
        """Fixpoint over the call graph: an unannotated function whose
        returned expressions all share one dimension returns it."""
        for _ in range(4):
            changed = False
            for qualname, info in self.index.functions.items():
                summary = self.summaries[qualname]
                if summary.ret_annotated or summary.ret is not None:
                    continue
                dims = set()
                env = dict(summary.params)
                for node in ordered_nodes(info.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        dim = self._expr_dim(info, node.value, env)
                        dims.add(dim)
                dims.discard(ANY)
                if len(dims) == 1 and None not in dims:
                    summary.ret = dims.pop()
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Expression dimensions
    # ------------------------------------------------------------------

    def _units_constant_dim(self, info: FunctionInfo, node: ast.expr) -> "str | None":
        module = self.index.modules.get(info.module)
        if module is None:
            return None
        if isinstance(node, ast.Name):
            dotted = module.imports.get(node.id, "")
            tail = dotted.split(".")[-1] if dotted else node.id
            if tail in _UNITS_CONSTANTS and (
                "units" in dotted or dotted == ""
            ):
                if dotted:
                    return _UNITS_CONSTANTS[tail]
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            dotted = module.imports.get(node.value.id, "")
            if dotted and "units" in dotted.split("."):
                return _UNITS_CONSTANTS.get(node.attr)
        return None

    def _expr_dim(
        self,
        info: FunctionInfo,
        node: ast.expr,
        env: "dict[str, str]",
    ) -> "str | None":
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return ANY
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            constant = self._units_constant_dim(info, node)
            if constant is not None:
                return constant
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            constant = self._units_constant_dim(info, node)
            if constant is not None:
                return constant
            receiver = self.index._receiver_class(info, node.value)
            if receiver is not None:
                dims = self.field_dims.get(receiver.qualname, {})
                if node.attr in dims:
                    return dims[node.attr]
            return dim_of_name(node.attr)
        if isinstance(node, ast.Call):
            return self._call_dim(info, node, env)
        if isinstance(node, ast.UnaryOp):
            return self._expr_dim(info, node.operand, env)
        if isinstance(node, ast.BinOp):
            return self._binop_dim(info, node, env)
        if isinstance(node, ast.IfExp):
            a = self._expr_dim(info, node.body, env)
            b = self._expr_dim(info, node.orelse, env)
            if a == b:
                return a
            if a in (None, ANY):
                return b if b not in (None, ANY) else a
            if b in (None, ANY):
                return a
            return None
        if isinstance(node, ast.BoolOp):
            dims = {self._expr_dim(info, v, env) for v in node.values}
            dims.discard(ANY)
            dims.discard(None)
            if len(dims) == 1:
                return dims.pop()
            return None
        return None

    _PRESERVING_BUILTINS = frozenset({"abs", "int", "float", "round", "min", "max"})

    def _call_dim(
        self, info: FunctionInfo, node: ast.Call, env: "dict[str, str]"
    ) -> "str | None":
        callee = self.index.resolve_call(info, node)
        if callee is not None:
            return self.summaries[callee.qualname].ret
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._PRESERVING_BUILTINS:
            dims = set()
            for arg in node.args:
                dims.add(self._expr_dim(info, arg, env))
            dims.discard(None)
            dims.discard(ANY)
            if len(dims) == 1:
                return dims.pop()
            return None
        return None

    def _binop_dim(
        self, info: FunctionInfo, node: ast.BinOp, env: "dict[str, str]"
    ) -> "str | None":
        left = self._expr_dim(info, node.left, env)
        right = self._expr_dim(info, node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            if left == right:
                return left
            if left in (None, ANY):
                return right if right not in (None, ANY) else left
            if right in (None, ANY):
                return left
            return left  # mixed; the finding is reported separately
        if isinstance(node.op, ast.Mult):
            pair = {left, right}
            if pair == {"pages", "bytes"}:
                return "bytes"  # page count x page size
            if left == ANY:
                return right
            if right == ANY:
                return left
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left == right and left not in (None, ANY):
                return ANY  # like / like is a ratio
            if right == ANY:
                return left
            return None
        if isinstance(node.op, (ast.LShift, ast.RShift)):
            return left
        return None

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check(self) -> "Iterator[tuple[FunctionInfo, Finding]]":
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            yield from self._check_function(info)

    def _mixes(self, a: "str | None", b: "str | None") -> bool:
        return (
            a is not None and b is not None
            and a != ANY and b != ANY and a != b
        )

    def _finding(
        self, info: FunctionInfo, node: ast.AST, rule: str, message: str
    ) -> "tuple[FunctionInfo, Finding]":
        return info, Finding(
            rule_id=rule,
            path=info.ctx.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            function=info.qualname,
        )

    def _check_function(
        self, info: FunctionInfo
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        env = dict(self.summaries[info.qualname].params)
        for node in ordered_nodes(info.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mod)
            ):
                left = self._expr_dim(info, node.left, env)
                right = self._expr_dim(info, node.right, env)
                if self._mixes(left, right):
                    yield self._finding(
                        info, node, "flow-dim-mix",
                        f"{left} {_OP_NAMES.get(type(node.op), 'op')} {right}: "
                        "mixed-dimension arithmetic (convert through "
                        "repro.units first)",
                    )
            elif isinstance(node, ast.Compare):
                left_dim = self._expr_dim(info, node.left, env)
                for comparator in node.comparators:
                    right_dim = self._expr_dim(info, comparator, env)
                    if self._mixes(left_dim, right_dim):
                        yield self._finding(
                            info, node, "flow-dim-mix",
                            f"comparison of {left_dim} against {right_dim}",
                        )
                    if right_dim not in (None, ANY):
                        left_dim = right_dim
            elif isinstance(node, ast.Assign):
                value_dim = self._expr_dim(info, node.value, env)
                for target in node.targets:
                    declared = self._target_dim(info, target, env)
                    if self._mixes(declared, value_dim):
                        yield self._finding(
                            info, node, "flow-dim-assign",
                            f"assigning a {value_dim} value to "
                            f"{_target_text(target)!r}, which is {declared} "
                            "by name/annotation",
                        )
                    if isinstance(target, ast.Name):
                        env[target.id] = (
                            declared if declared is not None else value_dim
                        ) or value_dim
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                declared = self._alias_dim(info, node.annotation)
                value_dim = self._expr_dim(info, node.value, env)
                if self._mixes(declared, value_dim):
                    yield self._finding(
                        info, node, "flow-dim-assign",
                        f"assigning a {value_dim} value to a declared "
                        f"{declared} target",
                    )
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = declared or value_dim
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mod)
            ):
                target_dim = self._target_dim(info, node.target, env)
                if target_dim is None:
                    target_dim = self._expr_dim(info, node.target, env)
                value_dim = self._expr_dim(info, node.value, env)
                if self._mixes(target_dim, value_dim):
                    yield self._finding(
                        info, node, "flow-dim-mix",
                        f"accumulating a {value_dim} value into "
                        f"{_target_text(node.target)!r} ({target_dim})",
                    )
            elif isinstance(node, ast.Return) and node.value is not None:
                summary = self.summaries[info.qualname]
                if summary.ret_annotated:
                    value_dim = self._expr_dim(info, node.value, env)
                    if self._mixes(summary.ret, value_dim):
                        yield self._finding(
                            info, node, "flow-dim-return",
                            f"returning a {value_dim} value from a function "
                            f"annotated to return {summary.ret}",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(info, node, env)

    def _check_call(
        self, info: FunctionInfo, node: ast.Call, env: "dict[str, str]"
    ) -> "Iterator[tuple[FunctionInfo, Finding]]":
        callee = self.index.resolve_call(info, node)
        if callee is None:
            return
        callee_summary = self.summaries.get(callee.qualname)
        if callee_summary is None or not callee_summary.params:
            return
        params = callee.params
        for position, arg in enumerate(node.args):
            if position >= len(params):
                break
            param_name = params[position].arg
            expected = callee_summary.params.get(param_name)
            got = self._expr_dim(info, arg, env)
            if self._mixes(expected, got):
                yield self._finding(
                    info, node, "flow-dim-arg",
                    f"argument {position + 1} of {callee.name}() is "
                    f"{expected} ({param_name!r}) but a {got} value is "
                    "passed",
                )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            expected = callee_summary.params.get(keyword.arg)
            got = self._expr_dim(info, keyword.value, env)
            if self._mixes(expected, got):
                yield self._finding(
                    info, node, "flow-dim-arg",
                    f"keyword {keyword.arg!r} of {callee.name}() is "
                    f"{expected} but a {got} value is passed",
                )

    def _target_dim(
        self, info: FunctionInfo, target: ast.expr, env: "dict[str, str]"
    ) -> "str | None":
        if isinstance(target, ast.Name):
            if target.id in env:
                return env[target.id]
            return dim_of_name(target.id)
        if isinstance(target, ast.Attribute):
            receiver = self.index._receiver_class(info, target.value)
            if receiver is not None:
                dims = self.field_dims.get(receiver.qualname, {})
                if target.attr in dims:
                    return dims[target.attr]
            return dim_of_name(target.attr)
        return None


_OP_NAMES = {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}


def _target_text(target: ast.expr) -> str:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return "<target>"
