"""Parsed-AST + effect-summary cache for the deep pass.

Parsing ~100 files and running the heteroeffect fixpoint dominate the
deep pass's runtime, and CI runs it on every PR for two Python
versions.  The cache pickles each file's parsed :class:`FileContext`
keyed by a SHA-256 of its source, so an incremental run re-parses only
what changed and a CI cache hit (``actions/cache`` on the cache
directory) skips the parse entirely.  Since payload v3 the same file
also carries the heteroeffect fixpoint output (summaries, direct
sites, reach edges) keyed on a call-graph hash — a digest over every
indexed module's source — so a warm ``repro lint --effects`` or
``repro certify`` run skips the fixpoint as well, not just the parse.

Pickled AST nodes keep their parent links, but Python object ids do not
survive a round-trip — the ``TYPE_CHECKING`` node-id set is rebuilt on
load (:func:`_rebind`).  The cache is invalidated per Python minor
version because ``ast`` trees are not portable across them: the cache
*filename* carries a ``py<major><minor>`` tag, and the payload itself
embeds the writer's ``(major, minor)`` which is validated on load —
so even a cache file restored under the wrong name (a mis-keyed
``actions/cache`` entry, a renamed directory) is rejected instead of
feeding another interpreter's AST shapes into the analysis.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
import sys
from pathlib import Path

from repro.devtools.lint import FileContext, _is_type_checking_test

__all__ = [
    "load_contexts",
    "load_effect_summaries",
    "store_contexts",
    "store_effect_summaries",
]

_FORMAT_VERSION = 3


def _python_tag() -> "tuple[int, int]":
    return (sys.version_info.major, sys.version_info.minor)


def _cache_path(cache_dir: "str | Path") -> Path:
    tag = f"py{sys.version_info.major}{sys.version_info.minor}"
    return Path(cache_dir) / f"heteroflow-ast-{tag}.pickle"


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _rebind(ctx: FileContext) -> FileContext:
    """Recompute the id()-keyed structures invalidated by unpickling."""
    ctx._parents = {}
    for parent in ast.walk(ctx.tree):
        for child in ast.iter_child_nodes(parent):
            ctx._parents[child] = parent
    ctx._type_checking_nodes = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for inner in ast.walk(node):
                ctx._type_checking_nodes.add(id(inner))
    return ctx


def _load_payload(cache_dir: "str | Path") -> "dict | None":
    """The validated on-disk payload, or None for anything corrupt,
    stale, or written by another interpreter."""
    path = _cache_path(cache_dir)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        return None
    if tuple(payload.get("python", ())) != _python_tag():
        return None
    return payload


def load_contexts(
    cache_dir: "str | Path", files: "list[Path]"
) -> "dict[str, FileContext]":
    """relpath -> parsed FileContext for every cached, unchanged file.
    Corrupt or stale caches degrade to an empty dict, never an error."""
    payload = _load_payload(cache_dir)
    if payload is None:
        return {}
    cached = payload.get("files", {})
    contexts: "dict[str, FileContext]" = {}
    for file_path in files:
        relpath = str(file_path)
        entry = cached.get(relpath)
        if entry is None:
            continue
        digest, ctx = entry
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        if _digest(source) != digest:
            continue
        contexts[relpath] = _rebind(ctx)
    return contexts


def store_contexts(
    cache_dir: "str | Path", contexts: "dict[str, FileContext]"
) -> None:
    """Persist parsed contexts; best-effort (failure is not an error).

    A valid effect-summary slot already on disk is carried over — its
    own call-graph key decides whether it is still usable on load.
    """
    directory = Path(cache_dir)
    try:
        existing = _load_payload(directory)
        payload = {
            "version": _FORMAT_VERSION,
            "python": _python_tag(),
            "files": {
                relpath: (_digest(ctx.source), ctx)
                for relpath, ctx in contexts.items()
            },
        }
        if existing is not None and "effects" in existing:
            payload["effects"] = existing["effects"]
        directory.mkdir(parents=True, exist_ok=True)
        with open(_cache_path(directory), "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    except (OSError, pickle.PicklingError):
        pass


def load_effect_summaries(cache_dir: "str | Path", key: str):
    """The persisted heteroeffect fixpoint output
    ``(summaries, direct, reach_edges)`` when the stored call-graph key
    matches ``key``; None on any miss, mismatch, or corruption."""
    payload = _load_payload(cache_dir)
    if payload is None:
        return None
    effects = payload.get("effects")
    if not isinstance(effects, dict) or effects.get("key") != key:
        return None
    try:
        return (
            effects["summaries"],
            effects["direct"],
            effects["reach_edges"],
        )
    except KeyError:
        return None


def store_effect_summaries(
    cache_dir: "str | Path", key: str, triple
) -> None:
    """Attach the fixpoint output to the cache payload; best-effort."""
    directory = Path(cache_dir)
    try:
        payload = _load_payload(directory)
        if payload is None:
            payload = {
                "version": _FORMAT_VERSION,
                "python": _python_tag(),
                "files": {},
            }
        summaries, direct, reach_edges = triple
        payload["effects"] = {
            "key": key,
            "summaries": summaries,
            "direct": direct,
            "reach_edges": reach_edges,
        }
        directory.mkdir(parents=True, exist_ok=True)
        with open(_cache_path(directory), "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    except (OSError, pickle.PicklingError):
        pass
