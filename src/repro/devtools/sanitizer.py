"""FrameSanitizer — ASan-style runtime checker for frame ownership.

DESIGN.md's ownership invariant: every machine frame has exactly one
owner at a time among buddy/slab/LRU-resident extents/migration.  The
sanitizer keeps an *independent* shadow record of who owns what —
big-integer bitmasks per address space, exactly like the buddy
allocator's own free mask but fed from intercepted events — so that a
bookkeeping bug in any one subsystem is caught by cross-checking rather
than trusted.

Defect classes detected:

* **double-free** — freeing frames that were already freed;
* **invalid-free** — freeing frames never allocated (wild pointer);
* **use-after-free** — touching an extent whose frames were freed;
* **leak** — frames still owned when the caller asserts teardown, or
  owned by nobody the kernel can account for (reconcile);
* **ownership-race** — a migration left the source frames owned, or
  handed the destination frames to two owners.

Enable in a simulation with ``SimConfig(sanitize=True)`` (the engine
attaches hooks to every zone buddy allocator, the slab caches, region
touches, and extent moves) or drive the event API directly in tests.
Hooks wrap *instances*, never classes, and :meth:`detach` restores them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SanitizerError

__all__ = ["FrameSanitizer", "SanitizerReport"]


@dataclass(frozen=True)
class SanitizerReport:
    """One detected frame-ownership violation."""

    kind: str
    space: str
    owner: str
    start: int
    count: int
    detail: str = ""

    @property
    def rule_id(self) -> str:
        """The defect class in the shared rule-ID namespace (``san-``
        prefix; see docs/devtools.md)."""
        return f"san-{self.kind}"

    def format(self) -> str:
        span = f"[{self.start}, {self.start + self.count})"
        text = (
            f"{self.kind}: {self.count} frame(s) {span} "
            f"(space {self.space!r}, owner {self.owner!r})"
        )
        if self.detail:
            text += f": {self.detail}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "kind": self.kind,
            "space": self.space,
            "owner": self.owner,
            "start": self.start,
            "count": self.count,
            "detail": self.detail,
        }


@dataclass
class _Space:
    """Shadow state for one frame address space (guest, machine, ...)."""

    #: Bit f set == frame f currently owned by someone.
    owned: int = 0
    #: Bit f set == frame f was allocated at least once (distinguishes
    #: double-free from invalid-free).
    ever: int = 0
    #: owner label -> bitmask of frames attributed to that owner.
    owners: "dict[str, int]" = field(default_factory=dict)


def _window(start: int, count: int) -> int:
    return ((1 << count) - 1) << start


def _runs(mask: int) -> "Iterator[tuple[int, int]]":
    """Contiguous (start, count) runs of set bits, ascending."""
    while mask:
        low = (mask & -mask).bit_length() - 1
        shifted = mask >> low
        count = (~shifted & -~shifted).bit_length() - 1
        yield low, count
        mask &= ~_window(low, count)


class FrameSanitizer:
    """Event-driven shadow frame-ownership tracker.

    ``strict=True`` raises :class:`SanitizerError` at the first
    violation; otherwise violations accumulate in :attr:`reports`.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.reports: "list[SanitizerReport]" = []
        self.events = 0
        self._spaces: "dict[str, _Space]" = {}
        #: (object, attribute name) pairs whose wrappers we installed.
        self._wrapped: "list[tuple[object, str]]" = []
        #: slab cache name -> set of live object handles.
        self._slab_live: "dict[str, set]" = {}

    # ------------------------------------------------------------------
    # Event API (what the hooks — and the defect-class tests — drive)
    # ------------------------------------------------------------------

    def _space(self, space: str) -> _Space:
        return self._spaces.setdefault(space, _Space())

    def _report(
        self,
        kind: str,
        space: str,
        owner: str,
        start: int,
        count: int,
        detail: str = "",
    ) -> None:
        report = SanitizerReport(kind, space, owner, start, count, detail)
        self.reports.append(report)
        if self.strict:
            raise SanitizerError(report.format())

    def on_alloc(
        self, owner: str, start: int, count: int, space: str = "guest"
    ) -> None:
        """Frames granted to ``owner``; must be unowned."""
        self.events += 1
        state = self._space(space)
        window = _window(start, count)
        clash = state.owned & window
        for run_start, run_count in _runs(clash):
            self._report(
                "ownership-race", space, owner, run_start, run_count,
                "allocation of frames another owner still holds",
            )
        state.owned |= window
        state.ever |= window
        state.owners[owner] = state.owners.get(owner, 0) | window

    def on_free(
        self, owner: str, start: int, count: int, space: str = "guest"
    ) -> None:
        """Frames returned by ``owner``; must currently be owned."""
        self.events += 1
        state = self._space(space)
        window = _window(start, count)
        unowned = window & ~state.owned
        for run_start, run_count in _runs(unowned & state.ever):
            self._report(
                "double-free", space, owner, run_start, run_count,
                "frames were already freed",
            )
        for run_start, run_count in _runs(unowned & ~state.ever):
            self._report(
                "invalid-free", space, owner, run_start, run_count,
                "frames were never allocated",
            )
        state.owned &= ~window
        for label in state.owners:
            state.owners[label] &= ~window

    def on_use(
        self, owner: str, start: int, count: int, space: str = "guest"
    ) -> None:
        """``owner`` touched frames; they must currently be owned."""
        self.events += 1
        state = self._space(space)
        window = _window(start, count)
        dangling = window & ~state.owned
        for run_start, run_count in _runs(dangling):
            self._report(
                "use-after-free", space, owner, run_start, run_count,
                "access to frames not currently allocated",
            )

    def on_transfer(
        self,
        old_owner: str,
        new_owner: str,
        start: int,
        count: int,
        space: str = "guest",
    ) -> None:
        """Migration handed frames from ``old_owner`` to ``new_owner``.

        The frames must be owned, and attributed to ``old_owner`` —
        anything else means two parties raced for the same frames while
        an extent was in flight.
        """
        self.events += 1
        state = self._space(space)
        window = _window(start, count)
        held = state.owners.get(old_owner, 0)
        stolen = window & ~held
        for run_start, run_count in _runs(stolen):
            self._report(
                "ownership-race", space, new_owner, run_start, run_count,
                f"transfer of frames {old_owner!r} does not own",
            )
        state.owned |= window
        state.ever |= window
        state.owners[old_owner] = held & ~window
        state.owners[new_owner] = state.owners.get(new_owner, 0) | window

    def check_leaks(self, space: "str | None" = None) -> "list[SanitizerReport]":
        """Assert teardown: any frames still owned are leaks.  Returns
        the new reports."""
        before = len(self.reports)
        spaces = [space] if space is not None else sorted(self._spaces)
        for name in spaces:
            state = self._space(name)
            remaining = state.owned
            blamed = 0
            for label in sorted(state.owners):
                for run_start, run_count in _runs(state.owners[label] & remaining):
                    self._report(
                        "leak", name, label, run_start, run_count,
                        "frames still owned at teardown",
                    )
                blamed |= state.owners[label]
            for run_start, run_count in _runs(remaining & ~blamed):
                self._report(
                    "leak", name, "<unattributed>", run_start, run_count,
                    "frames still owned at teardown",
                )
        return self.reports[before:]

    # ------------------------------------------------------------------
    # Instance hooks
    # ------------------------------------------------------------------

    def _wrap(self, obj: object, name: str, wrapper) -> None:
        setattr(obj, name, wrapper)
        self._wrapped.append((obj, name))

    def detach(self) -> None:
        """Remove every installed wrapper, restoring original methods."""
        while self._wrapped:
            obj, name = self._wrapped.pop()
            obj.__dict__.pop(name, None)

    def attach_buddy(
        self, buddy, owner: str, space: str = "guest"
    ) -> None:
        """Hook a :class:`~repro.guestos.buddy.BuddyAllocator` instance.

        ``allocate_block`` covers every allocation path (``allocate_pages``
        delegates to it) and ``free_span`` every free path.
        """
        orig_alloc = buddy.allocate_block
        orig_free = buddy.free_span

        def allocate_block(order: int):
            block = orig_alloc(order)
            self.on_alloc(owner, block.start, block.count, space=space)
            return block

        def free_span(start: int, count: int) -> None:
            self.on_free(owner, start, count, space=space)
            orig_free(start, count)

        self._wrap(buddy, "allocate_block", allocate_block)
        self._wrap(buddy, "free_span", free_span)

    def attach_pool(self, pool, space: str = "machine") -> None:
        """Hook a :class:`~repro.mem.frames.FramePool` instance
        (``allocate_scattered`` delegates to ``allocate``)."""
        owner = f"pool:{pool.name}"
        orig_alloc = pool.allocate
        orig_free = pool.free

        def allocate(count: int):
            taken = orig_alloc(count)
            self.on_alloc(owner, taken.start, taken.count, space=space)
            return taken

        def free(frame_range) -> None:
            self.on_free(owner, frame_range.start, frame_range.count, space=space)
            orig_free(frame_range)

        self._wrap(pool, "allocate", allocate)
        self._wrap(pool, "free", free)

    def attach_slab(self, cache) -> None:
        """Hook a :class:`~repro.guestos.slab.SlabCache` instance at
        object granularity (its backing pages are covered by the buddy
        hooks)."""
        live = self._slab_live.setdefault(cache.name, set())
        orig_alloc = cache.allocate
        orig_free = cache.free

        def allocate():
            handle = orig_alloc()
            self.events += 1
            live.add(handle)
            return handle

        def free(handle) -> None:
            self.events += 1
            if handle not in live:
                self._report(
                    "double-free", "slab", f"slab:{cache.name}",
                    handle[0], 1,
                    f"slab object {handle!r} freed twice or never allocated",
                )
            live.discard(handle)
            orig_free(handle)

        self._wrap(cache, "allocate", allocate)
        self._wrap(cache, "free", free)

    def check_slab_leaks(self) -> "list[SanitizerReport]":
        """Report slab objects still live (call at teardown)."""
        before = len(self.reports)
        for name in sorted(self._slab_live):
            for handle in sorted(self._slab_live[name]):
                self._report(
                    "leak", "slab", f"slab:{name}", handle[0], 1,
                    f"slab object {handle!r} never freed",
                )
        return self.reports[before:]

    def attach_kernel(self, kernel, space: str = "guest") -> None:
        """Hook a whole :class:`~repro.guestos.kernel.GuestKernel`: every
        zone buddy, every slab cache, region touches (use-after-free),
        and extent moves (migration ownership races)."""
        for node_id in sorted(kernel.nodes):
            node = kernel.nodes[node_id]
            for zone in node.zones:
                self.attach_buddy(
                    zone.buddy,
                    owner=f"node{node_id}:{zone.kind.value}",
                    space=space,
                )
        for cache_name in sorted(kernel.slab.caches):
            self.attach_slab(kernel.slab.caches[cache_name])

        orig_touch = kernel.touch_region
        orig_move = kernel.move_extent

        def touch_region(region_id: str, accesses, **kwargs) -> None:
            for extent in kernel.region_extents(region_id):
                if extent.swapped:
                    continue
                for frame_range in extent.frames:
                    self.on_use(
                        f"extent:{extent.extent_id}",
                        frame_range.start,
                        frame_range.count,
                        space=space,
                    )
            orig_touch(region_id, accesses, **kwargs)

        def move_extent(extent, target_node_id: int) -> int:
            old_node = extent.node_id
            old_frames = [(fr.start, fr.count) for fr in extent.frames]
            moved = orig_move(extent, target_node_id)
            if moved:
                state = self._space(space)
                for start, count in old_frames:
                    window = _window(start, count)
                    still = window & state.owned
                    for run_start, run_count in _runs(still):
                        self._report(
                            "ownership-race", space,
                            f"extent:{extent.extent_id}",
                            run_start, run_count,
                            f"source frames on node {old_node} still owned "
                            "after migration",
                        )
                for frame_range in extent.frames:
                    window = _window(frame_range.start, frame_range.count)
                    missing = window & ~state.owned
                    for run_start, run_count in _runs(missing):
                        self._report(
                            "ownership-race", space,
                            f"extent:{extent.extent_id}",
                            run_start, run_count,
                            f"destination frames on node {target_node_id} "
                            "not allocated after migration",
                        )
            return moved

        self._wrap(kernel, "touch_region", touch_region)
        self._wrap(kernel, "move_extent", move_extent)

    def attach_migration(self, engine, kernel, space: str = "guest") -> None:
        """Hook a :class:`~repro.vmm.migration.MigrationEngine` so that
        every pass is bracketed and the per-move checks installed by
        :meth:`attach_kernel` run under a migration context label."""
        if kernel.__dict__.get("move_extent") is None:
            # Ensure the per-move transfer checks exist even when the
            # caller attached only the engine.
            self.attach_kernel(kernel, space=space)
        orig_migrate = engine.migrate

        def migrate(*args, **kwargs):
            self.events += 1
            return orig_migrate(*args, **kwargs)

        self._wrap(engine, "migrate", migrate)

    # ------------------------------------------------------------------
    # Teardown reconciliation
    # ------------------------------------------------------------------

    def reconcile(self, kernel, space: str = "guest") -> "list[SanitizerReport]":
        """Cross-check the shadow state against what the kernel can
        account for.  Frames the shadow says are allocated but no live
        extent / per-CPU cache / balloon stash claims are **leaks**;
        frames a live extent claims but the shadow says are free are
        **use-after-free** (the extent holds dangling frames)."""
        before = len(self.reports)
        state = self._space(space)
        accounted = 0
        for extent in kernel.extents.values():
            if extent.swapped:
                continue
            for frame_range in extent.frames:
                window = _window(frame_range.start, frame_range.count)
                dangling = window & ~state.owned
                for run_start, run_count in _runs(dangling):
                    self._report(
                        "use-after-free", space,
                        f"extent:{extent.extent_id}",
                        run_start, run_count,
                        "live extent holds frames the shadow says are free",
                    )
                accounted |= window
        for node_id in sorted(kernel.nodes):
            for frame_range in kernel.percpu.iter_cached_ranges(node_id):
                accounted |= _window(frame_range.start, frame_range.count)
            for frame_range in kernel.hidden_ranges(node_id):
                accounted |= _window(frame_range.start, frame_range.count)
        leaked = state.owned & ~accounted
        for run_start, run_count in _runs(leaked):
            self._report(
                "leak", space, "<unaccounted>", run_start, run_count,
                "shadow-allocated frames no kernel owner accounts for",
            )
        return self.reports[before:]
