"""``repro serve``: a crash-tolerant experiment service.

The daemon (:class:`~repro.serve.server.ExperimentServer`) accepts
batches of :class:`~repro.sim.parallel.ExperimentSpec` over HTTP (TCP
or unix socket), executes them on the cached sweep substrate through a
supervised worker pool, and journals every accepted job so a SIGKILL
loses nothing.  :class:`~repro.serve.client.ServeClient` is the
matching well-behaved client.  See ``docs/serve.md`` for the API, the
job lifecycle, and the failure matrix.
"""

from repro.serve.client import ServeClient
from repro.serve.jobstore import JOB_STATES, Job, JobStore
from repro.serve.server import ExperimentServer, ServeConfig
from repro.serve.supervisor import WorkerSupervisor
from repro.serve.wire import WIRE_VERSION, outcome_from_wire, outcome_to_wire

__all__ = [
    "ExperimentServer",
    "Job",
    "JobStore",
    "JOB_STATES",
    "ServeClient",
    "ServeConfig",
    "WIRE_VERSION",
    "WorkerSupervisor",
    "outcome_from_wire",
    "outcome_to_wire",
]
