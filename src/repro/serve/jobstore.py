"""Durable job store: accepted work survives SIGKILL.

A *job* is one client-submitted batch of
:class:`~repro.sim.parallel.ExperimentSpec`\\ s.  The store layers on
the PR 3/5 sweep substrate — the content-addressed
:class:`~repro.sim.parallel.ResultCache` and the fsynced
:class:`~repro.sim.parallel.SweepJournal` — and adds one more
append-only JSONL file (``serve-jobs.jsonl``) recording job admissions
and state transitions.  The split of responsibilities:

* the **jobs journal** records *what was accepted* (client, canonical
  specs) and how far it got (``queued``/``running``/``done``);
* the **sweep journal** records *per-spec dispositions* exactly as
  ``repro sweep`` does, so daemon work and CLI sweeps share one
  resume/report surface;
* the **result cache** holds the payloads.

After a SIGKILL, :meth:`JobStore.recover` replays the jobs journal:
unfinished jobs come back ``queued``; their specs resolve from the
cache (completed work), the sweep journal (deterministic failures),
and re-execution (transients only) — which is what pins
killed-and-restarted results bit-identical to an uninterrupted run.

Job ids are content-addressed: a SHA-256 over the client id plus the
batch's canonical spec JSON plus the source fingerprint.  Resubmitting
the same batch — a client retrying after a dropped connection — maps
onto the existing job instead of duplicating work (idempotent
resubmission, the serve twin of the cache-key dedup inside
``run_specs``).

Durability idiom mirrors :class:`~repro.sim.parallel.SweepJournal`:
appends are flushed, fsynced, and guarded by the same advisory file
lock; corrupt lines (a kill mid-append) are skipped on load with the
last entry per job winning.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ServeError, SweepError
from repro.sim.parallel import (
    ExperimentSpec,
    ResultCache,
    SpecOutcome,
    SweepJournal,
    _FileLock,
    source_fingerprint,
    spec_from_canonical,
)

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Lifecycle states a job moves through (strictly forward).
JOB_STATES = ("queued", "running", "done")

#: Client identifiers are metrics labels and journal fields; keep them
#: to a safe, greppable alphabet.
_CLIENT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Jobs-journal schema version (bumped on shape changes; loaders skip
#: lines from other versions rather than misparse them).
JOBS_FORMAT_VERSION = 1


@dataclass
class Job:
    """One accepted batch and its resolution progress."""

    job_id: str
    client: str
    specs: Tuple[ExperimentSpec, ...]
    state: str = "queued"
    #: spec index -> resolved outcome (duplicates share one execution
    #: but each submitted index gets its own entry, like ``run_specs``).
    outcomes: Dict[int, SpecOutcome] = field(default_factory=dict)
    #: True when this job was recovered from a previous daemon life.
    recovered: bool = False

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def resolved(self) -> int:
        return len(self.outcomes)

    @property
    def done(self) -> bool:
        return self.state == "done"

    def ordered_outcomes(self) -> "List[SpecOutcome]":
        """Resolved outcomes in submission order (done jobs only)."""
        if len(self.outcomes) != len(self.specs):
            raise ServeError(
                f"job {self.job_id} has {len(self.outcomes)} of "
                f"{len(self.specs)} outcomes; not complete"
            )
        return [self.outcomes[i] for i in range(len(self.specs))]


def job_id_for(
    client: str, specs: "Sequence[ExperimentSpec]", fingerprint: str
) -> str:
    """Content-addressed job id (client + ordered batch + source).

    The source fingerprint rides along for the same reason it is in
    every cache key: a daemon restarted onto changed simulator code
    must not identify an old job with a batch that would now produce
    different results.
    """
    digest = hashlib.sha256()
    digest.update(client.encode("utf-8"))
    digest.update(b"\x00")
    for spec in specs:
        payload = json.dumps(
            spec.canonical(), sort_keys=True, separators=(",", ":")
        )
        digest.update(payload.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(fingerprint.encode("utf-8"))
    return digest.hexdigest()[:32]


class JobStore:
    """Jobs journal + sweep journal + result cache under one root.

    The root directory is deliberately the same directory a CLI
    ``repro sweep --cache-dir`` would use: the daemon and ad-hoc sweeps
    share the result cache and the per-spec sweep journal (guarded by
    the advisory file locks from PR 10's locking satellite), while the
    jobs journal is the daemon's own.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.cache = ResultCache(self.root)
        self.journal = SweepJournal(self.root / "sweep-journal.jsonl")
        self.jobs_path = self.root / "serve-jobs.jsonl"
        self.fingerprint = source_fingerprint()
        #: job id -> Job, in first-acceptance order.
        self.jobs: "Dict[str, Job]" = {}
        self.corrupt_lines_skipped = 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> "List[Job]":
        """Replay the jobs journal; return unfinished jobs to requeue.

        Jobs whose last recorded state is terminal stay ``done`` (their
        outcomes re-resolve lazily from the cache + sweep journal when
        queried).  Everything else — accepted but killed mid-flight —
        comes back ``queued`` with ``recovered=True``.  Corrupt or
        version-skewed lines are skipped; an unreadable journal
        degrades to an empty store, never an error.
        """
        events: "List[dict]" = []
        corrupt = 0
        try:
            with open(self.jobs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        corrupt += 1
                        continue
                    if (
                        isinstance(entry, dict)
                        and entry.get("v") == JOBS_FORMAT_VERSION
                    ):
                        events.append(entry)
        except OSError:
            pass
        self.corrupt_lines_skipped = corrupt
        self.jobs = {}
        for entry in events:
            job_id = entry.get("job")
            if not isinstance(job_id, str):
                continue
            event = entry.get("event")
            if event == "submit":
                try:
                    specs = tuple(
                        spec_from_canonical(item)
                        for item in entry.get("specs", [])
                    )
                except (SweepError, TypeError):
                    continue  # batch no longer parseable: drop the job
                if not specs:
                    continue
                expected = job_id_for(
                    str(entry.get("client", "")), specs, self.fingerprint
                )
                if expected != job_id:
                    # Source tree changed since acceptance: the old
                    # results would be stale, so the job is dropped
                    # (exactly like cache-key invalidation).
                    continue
                self.jobs[job_id] = Job(
                    job_id=job_id,
                    client=str(entry.get("client", "")),
                    specs=specs,
                    recovered=True,
                )
            elif event == "state":
                job = self.jobs.get(job_id)
                state = entry.get("state")
                if job is not None and state in JOB_STATES:
                    job.state = str(state)
        requeued: "List[Job]" = []
        for job in self.jobs.values():
            if job.state != "done":
                job.state = "queued"
                requeued.append(job)
        return requeued

    # ------------------------------------------------------------------
    # Admission + transitions
    # ------------------------------------------------------------------

    @staticmethod
    def validate_client(client: str) -> str:
        if not isinstance(client, str) or not _CLIENT_RE.match(client):
            raise ServeError(
                f"invalid client id {client!r}: must match "
                f"{_CLIENT_RE.pattern}"
            )
        return client

    def parse_specs(
        self, payload: "Sequence[Mapping]"
    ) -> "Tuple[ExperimentSpec, ...]":
        """Canonical-spec JSON -> specs; malformed input is the
        client's fault (:class:`ServeError`, -> HTTP 400)."""
        if not isinstance(payload, Sequence) or isinstance(
            payload, (str, bytes)
        ):
            raise ServeError("specs must be a JSON array of canonical specs")
        if not payload:
            raise ServeError("specs must not be empty")
        try:
            return tuple(spec_from_canonical(item) for item in payload)
        except SweepError as exc:
            raise ServeError(f"bad spec in batch: {exc}") from exc

    def submit(
        self, client: str, specs: "Sequence[ExperimentSpec]"
    ) -> "Tuple[Job, bool]":
        """Accept (and durably journal) a batch; ``(job, created)``.

        A resubmission of an existing batch returns the live job with
        ``created=False`` and journals nothing — admission is
        idempotent, so clients may blindly retry after any transport
        failure.
        """
        self.validate_client(client)
        job_id = job_id_for(client, specs, self.fingerprint)
        existing = self.jobs.get(job_id)
        if existing is not None:
            return existing, False
        job = Job(job_id=job_id, client=client, specs=tuple(specs))
        self._append(
            {
                "v": JOBS_FORMAT_VERSION,
                "event": "submit",
                "job": job_id,
                "client": client,
                "specs": [spec.canonical() for spec in job.specs],
            }
        )
        self.jobs[job_id] = job
        return job, True

    def transition(self, job: Job, state: str) -> None:
        """Advance a job's lifecycle state (journaled, fsynced)."""
        if state not in JOB_STATES:
            raise ServeError(f"unknown job state {state!r}")
        job.state = state
        self._append(
            {
                "v": JOBS_FORMAT_VERSION,
                "event": "state",
                "job": job.job_id,
                "state": state,
            }
        )

    def _append(self, entry: dict) -> None:
        """SweepJournal-idiom append: locked, flushed, fsynced,
        best-effort (an unwritable journal degrades durability, not
        availability)."""
        try:
            self.jobs_path.parent.mkdir(parents=True, exist_ok=True)
            with _FileLock(self.jobs_path):
                with open(self.jobs_path, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(
                            entry, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def counts(self) -> "Dict[str, int]":
        """Jobs by state (healthz fodder)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def queued_by_client(self, client: str) -> int:
        return sum(
            1
            for job in self.jobs.values()
            if job.client == client and job.state == "queued"
        )
