"""Supervised persistent worker pool for the experiment daemon.

``run_specs`` builds a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
per retry round — fine for a CLI sweep, wasteful for a daemon absorbing
batches all day.  :class:`WorkerSupervisor` keeps a fixed pool of
forked worker processes alive across batches and adds the supervision
a long-running service needs:

* **heartbeats** — a worker announces ``("start", task, pid)`` the
  moment it dequeues a task, so the parent always knows which worker
  owns which spec;
* **crash detection + respawn** — a dead worker process (found via
  ``Process.is_alive`` during :meth:`poll`) fails its owned task with
  the structured ``worker-crash`` kind and is replaced immediately;
* **bounded crash retries + quarantine** — a task whose worker crashed
  is resubmitted automatically (the existing transient-retry policy),
  but after ``max_crashes`` crashes the task is *quarantined*: it
  surfaces as a final ``worker-crash`` failure instead of being run
  again, so one poisoned spec cannot wedge the pool by serially
  killing every worker;
* **graceful serial fallback** — on a platform without ``fork`` the
  supervisor runs specs inline in the calling thread (the same
  degradation ladder as ``run_specs``).  Inline execution happens on a
  non-main thread, where the hardened SIGALRM path in
  :func:`repro.sim.parallel._run_one` warns once and runs without a
  timeout instead of crashing.

Execution inside a worker is *exactly* ``run_specs``'s worker path —
:func:`repro.sim.parallel._run_one` with its in-worker SIGALRM budget —
which is what keeps daemon-served results bit-identical to direct
``run_specs`` execution.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Dict, List, Tuple

from repro.errors import ServeError
from repro.sim import parallel
from repro.sim.parallel import ExperimentSpec, SpecFailure, SpecOutcome

__all__ = ["WorkerSupervisor"]

#: Parent-side slice while waiting on the result pipe (SimpleQueue has
#: no ``get(timeout)``; see :meth:`WorkerSupervisor.poll`).
_POLL_SLICE_SEC = 0.005


def _worker_main(tasks, results, capture_timelines: bool) -> None:
    """Worker process loop: heartbeat, run, report, repeat.

    The ``start`` message doubles as the heartbeat: the parent learns
    which pid owns which task before any simulation work begins, so a
    crash can always be attributed.  The queues are ``SimpleQueue``\\ s
    on purpose: a regular ``multiprocessing.Queue`` hands ``put`` to a
    background feeder thread, so a worker dying *during* the spec could
    take its not-yet-flushed heartbeat with it — the parent would see a
    dead worker it cannot attribute and the task would be lost.
    ``SimpleQueue.put`` writes synchronously in the calling thread,
    making heartbeat-before-work an ordering guarantee.  A ``None``
    task is the shutdown sentinel.  Queue failures (parent died) end
    the loop quietly — the supervisor owns all error reporting.
    """
    while True:
        try:
            item = tasks.get()
        except (EOFError, OSError):
            break
        if item is None:
            break
        task_id, spec, timeout_sec = item
        try:
            results.put(("start", task_id, os.getpid()))
            status = parallel._run_one(spec, timeout_sec, capture_timelines)
            results.put(("done", task_id, os.getpid(), status))
        except (EOFError, OSError):
            break


class WorkerSupervisor:
    """A crash-tolerant pool executing specs for the serve scheduler.

    Protocol: :meth:`submit` enqueues ``(task_id, spec)``;
    :meth:`poll` returns finished ``(task_id, SpecOutcome)`` pairs,
    handling heartbeats, crash retries, respawns, and quarantine
    internally.  Timeout failures are returned to the caller un-retried
    (the scheduler owns the transient-retry budget for timeouts; the
    supervisor owns it for crashes, because only the supervisor can see
    them).
    """

    def __init__(
        self,
        max_workers: int = 1,
        timeout_sec: "float | None" = None,
        capture_timelines: bool = False,
        max_crashes: int = 2,
    ) -> None:
        if max_workers < 1:
            raise ServeError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if max_crashes < 1:
            raise ServeError(
                f"max_crashes must be >= 1, got {max_crashes}"
            )
        self.max_workers = int(max_workers)
        self.timeout_sec = timeout_sec
        self.capture_timelines = capture_timelines
        self.max_crashes = int(max_crashes)
        #: Workers respawned after a crash (a serve metrics series).
        self.respawns = 0
        #: task id -> crash count at the moment it was quarantined.
        self.quarantined: "Dict[str, int]" = {}
        self._serial = not parallel._fork_available()
        self._started = False
        self._stopping = False
        self._context = None
        self._procs: "List[object]" = []
        self._tasks = None
        self._results = None
        #: task id -> spec, for everything submitted but not finished.
        self._outstanding: "Dict[str, ExperimentSpec]" = {}
        #: worker pid -> task id it heartbeated for.
        self._assigned: "Dict[int, str]" = {}
        self._crashes: "Dict[str, int]" = {}
        #: Serial-mode results awaiting poll().
        self._inline: "List[Tuple[str, SpecOutcome]]" = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"forked"`` (supervised pool) or ``"serial"`` (no fork)."""
        return "serial" if self._serial else "forked"

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self._serial:
            return
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self._context = context
        self._tasks = context.SimpleQueue()
        self._results = context.SimpleQueue()
        for _ in range(self.max_workers):
            self._procs.append(self._spawn())

    def _spawn(self):
        process = self._context.Process(
            target=_worker_main,
            args=(self._tasks, self._results, self.capture_timelines),
            daemon=True,
        )
        process.start()
        return process

    def stop(self) -> None:
        """Shut the pool down; idempotent, never raises."""
        self._stopping = True
        if self._serial or not self._started:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError, BrokenPipeError):
                break
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._procs = []

    # ------------------------------------------------------------------
    # Work
    # ------------------------------------------------------------------

    def submit(self, task_id: str, spec: ExperimentSpec) -> None:
        """Enqueue one spec for execution under ``task_id``."""
        if not self._started or self._stopping:
            raise ServeError("supervisor is not running")
        self._outstanding[task_id] = spec
        if self._serial:
            # Inline fallback: run now, deliver on the next poll().  A
            # hard worker crash cannot be survived in this mode (there
            # is no process boundary), which the failure matrix in
            # docs/serve.md calls out.
            status = parallel._run_one(
                spec, self.timeout_sec, self.capture_timelines
            )
            outcome = parallel._outcome_from_status(spec, status, "serial")
            del self._outstanding[task_id]
            self._inline.append((task_id, outcome))
            return
        self._tasks.put((task_id, spec, self.timeout_sec))

    def poll(
        self, timeout_sec: float = 0.05
    ) -> "List[Tuple[str, SpecOutcome]]":
        """Collect finished tasks; supervise the pool while doing so.

        Blocks up to ``timeout_sec`` for the first event, then drains
        without blocking.  Crash handling happens here: dead workers
        fail their heartbeated task, get replaced, and the task either
        resubmits (crash count below ``max_crashes``) or surfaces as a
        quarantined ``worker-crash`` failure.
        """
        if self._serial:
            events, self._inline = self._inline, []
            return events
        if not self._started:
            return []
        events: "List[Tuple[str, SpecOutcome]]" = []
        # SimpleQueue has no get(timeout), so the first read waits in
        # small slices; once anything arrives the rest drains without
        # waiting.
        budget = max(0.0, timeout_sec)
        while True:
            try:
                if not self._results.empty():
                    message = self._results.get()
                elif budget > 0 and not events:
                    time.sleep(min(_POLL_SLICE_SEC, budget))
                    budget -= _POLL_SLICE_SEC
                    continue
                else:
                    break
            except (OSError, EOFError, pickle.UnpicklingError):
                break  # torn message from a worker dying mid-write
            kind = message[0]
            if kind == "start":
                _, task_id, pid = message
                self._assigned[pid] = task_id
            elif kind == "done":
                _, task_id, pid, status = message
                self._assigned.pop(pid, None)
                spec = self._outstanding.pop(task_id, None)
                if spec is None:
                    continue  # late duplicate after a crash-resubmit
                events.append(
                    (
                        task_id,
                        parallel._outcome_from_status(
                            spec, status, "parallel"
                        ),
                    )
                )
        events.extend(self._reap_crashes())
        return events

    def _reap_crashes(self) -> "List[Tuple[str, SpecOutcome]]":
        """Replace dead workers; fail, resubmit, or quarantine their
        tasks."""
        events: "List[Tuple[str, SpecOutcome]]" = []
        survivors = []
        for process in self._procs:
            if process.is_alive():
                survivors.append(process)
                continue
            pid = process.pid
            task_id = self._assigned.pop(pid, None)
            if not self._stopping:
                survivors.append(self._spawn())
                self.respawns += 1
            if task_id is None:
                continue
            spec = self._outstanding.get(task_id)
            if spec is None:
                continue  # finished just before dying
            count = self._crashes.get(task_id, 0) + 1
            self._crashes[task_id] = count
            if count < self.max_crashes and not self._stopping:
                # Existing transient-retry policy: a crash is
                # re-runnable until this spec has proven poisonous.
                self._tasks.put((task_id, spec, self.timeout_sec))
                continue
            self.quarantined[task_id] = count
            del self._outstanding[task_id]
            events.append(
                (
                    task_id,
                    SpecOutcome(
                        spec=spec,
                        error=SpecFailure(
                            kind="worker-crash",
                            message=(
                                f"worker process died {count} time(s) "
                                "running this spec; quarantined"
                            ),
                        ),
                        source="parallel",
                    ),
                )
            )
        self._procs = survivors
        return events

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet finished (queue + in flight)."""
        return len(self._outstanding)
