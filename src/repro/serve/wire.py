"""Wire format: bit-exact ``SpecOutcome`` transport over JSON.

The serving path's headline contract is *no perturbation*: a result
fetched through the daemon must be field-by-field identical to the
same spec run through :func:`~repro.sim.parallel.run_specs` directly.
JSON alone cannot carry that guarantee (float round-tripping, dict
key coercion, dataclass identity), so each successful outcome travels
two ways at once:

* ``result_b64`` — the pickled :class:`~repro.sim.stats.RunResult`,
  base64-armoured inside the JSON body.  Decoding it reconstructs the
  exact object the worker produced, which is what the equivalence and
  crash-recovery tests compare bit-for-bit.
* ``summary`` — a small JSON projection (runtime, headline metric) for
  dashboards and non-Python clients that only need numbers.

Trust model: the pickle is produced and consumed by the *same
installation* talking over a loopback or unix socket — the daemon is
infrastructure for the local sweep substrate, not an internet-facing
API.  :func:`outcome_from_wire` still validates the decoded type
before handing it to callers.

Specs travel as their :meth:`~repro.sim.parallel.ExperimentSpec.canonical`
form and are rebuilt with
:func:`~repro.sim.parallel.spec_from_canonical`, so a round-tripped
spec has an identical cache key — the property that makes resubmission
idempotent end to end.
"""

from __future__ import annotations

import base64
import binascii
import pickle
from typing import Mapping

from repro.errors import ServeError, SweepError
from repro.sim.parallel import SpecFailure, SpecOutcome, spec_from_canonical
from repro.sim.stats import RunResult

__all__ = ["outcome_to_wire", "outcome_from_wire", "WIRE_VERSION"]

#: Bumped whenever the outcome wire schema changes shape.
WIRE_VERSION = 1


def outcome_to_wire(outcome: SpecOutcome) -> dict:
    """One resolved grid point as a JSON-safe dict."""
    entry: dict = {
        "v": WIRE_VERSION,
        "spec": outcome.spec.canonical(),
        "label": outcome.spec.label,
        "status": "ok" if outcome.ok else "failed",
        "source": outcome.source,
        "elapsed_sec": outcome.elapsed_sec,
    }
    if outcome.ok:
        entry["result_b64"] = base64.b64encode(
            pickle.dumps(outcome.result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        entry["summary"] = {
            "workload": outcome.result.workload_name,
            "policy": outcome.result.policy_name,
            "metric": outcome.result.metric,
            "metric_value": outcome.result.metric_value,
            "runtime_sec": outcome.result.runtime_sec,
        }
    else:
        entry["failure"] = {
            "kind": outcome.error.kind,
            "message": outcome.error.message,
            "error_type": outcome.error.error_type,
        }
    return entry


def outcome_from_wire(entry: Mapping) -> SpecOutcome:
    """Rebuild a :class:`SpecOutcome` from its wire form.

    Raises :class:`ServeError` on any malformed field — a client must
    never silently accept a half-decoded result.
    """
    if not isinstance(entry, Mapping):
        raise ServeError(
            f"wire outcome must be a mapping, got {type(entry).__name__}"
        )
    if entry.get("v") != WIRE_VERSION:
        raise ServeError(
            f"wire outcome version {entry.get('v')!r} does not match "
            f"this client ({WIRE_VERSION})"
        )
    try:
        spec = spec_from_canonical(entry["spec"])
    except (KeyError, SweepError) as exc:
        raise ServeError(f"wire outcome carries a bad spec: {exc}") from exc
    source = str(entry.get("source", "parallel"))
    elapsed = float(entry.get("elapsed_sec", 0.0))
    if entry.get("status") == "ok":
        try:
            payload = pickle.loads(
                base64.b64decode(entry["result_b64"], validate=True)
            )
        except (
            KeyError,
            ValueError,
            TypeError,
            binascii.Error,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
        ) as exc:
            raise ServeError(
                f"wire outcome result failed to decode: {exc}"
            ) from exc
        if not isinstance(payload, RunResult):
            raise ServeError(
                "wire outcome result decoded to "
                f"{type(payload).__name__}, expected RunResult"
            )
        return SpecOutcome(
            spec=spec, result=payload, source=source, elapsed_sec=elapsed
        )
    failure = entry.get("failure")
    if not isinstance(failure, Mapping):
        raise ServeError("failed wire outcome is missing its failure")
    error_type = failure.get("error_type")
    return SpecOutcome(
        spec=spec,
        error=SpecFailure(
            kind=str(failure.get("kind", "error")),
            message=str(failure.get("message", "")),
            error_type=str(error_type) if error_type is not None else None,
        ),
        source=source,
        elapsed_sec=elapsed,
    )
