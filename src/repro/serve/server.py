# heterolint: disable-file=unseeded-random — the daemon measures host
# wall-clock (drain duration, long-poll deadlines, Retry-After hints);
# none of it ever feeds a simulated quantity.
"""The ``repro serve`` daemon: crash-tolerant experiment service.

Architecture (three thread groups, one lock):

* **HTTP handlers** (one thread per connection, stdlib
  ``ThreadingHTTPServer`` over TCP or a unix socket) do admission
  control and read views.  They never execute specs.
* **the scheduler thread** owns execution: it starts queued jobs
  (round-robin across clients for fairness), resolves each distinct
  spec through the cache -> sweep-journal -> supervisor ladder — the
  exact ladder ``run_specs`` uses, which is what keeps served results
  bit-identical to direct execution — and completes jobs as outcomes
  arrive.
* **worker processes** under the
  :class:`~repro.serve.supervisor.WorkerSupervisor` run the specs
  (persistent pool, heartbeats, respawn, quarantine).

Robustness properties:

* every accepted job is journaled before the 202 goes out
  (:class:`~repro.serve.jobstore.JobStore`), so SIGKILL loses nothing;
* the queue is bounded: a full daemon answers a structured 429 with
  ``Retry-After`` instead of buffering unboundedly, and a draining
  daemon answers 503;
* SIGTERM triggers a graceful drain — stop admitting, finish in-flight
  jobs, checkpoint, exit 0 — leaving still-queued jobs journaled for
  the next daemon life;
* ``/healthz`` and ``/metrics`` expose liveness and the PR 9 registry
  (sweep series plus the serve-side series: queue depth,
  admissions/rejections, worker respawns, drain duration).
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServeError
from repro.obs.flight import SweepRecorder
from repro.obs.metrics import MetricsRegistry, PROMETHEUS_CONTENT_TYPE
from repro.serve.jobstore import Job, JobStore, job_id_for
from repro.serve.supervisor import WorkerSupervisor
from repro.serve.wire import outcome_to_wire
from repro.sim.parallel import ExperimentSpec, SpecFailure, SpecOutcome

__all__ = ["ServeConfig", "ExperimentServer"]

#: Cap on the advisory Retry-After hint (seconds) so a deep queue never
#: tells clients to go away for minutes.
_MAX_RETRY_AFTER_SEC = 30


@dataclass
class ServeConfig:
    """Daemon configuration (never part of any cache key).

    ``root`` is the state directory — result cache, sweep journal, jobs
    journal — and is deliberately the same directory a CLI
    ``repro sweep --cache-dir`` would point at, so the daemon and
    ad-hoc sweeps share one substrate.
    """

    root: "str | Path"
    host: str = "127.0.0.1"
    port: int = 0
    #: Serve over an AF_UNIX socket at this path instead of TCP.
    unix_socket: "str | None" = None
    workers: int = 1
    #: Per-spec wall-clock budget (SIGALRM inside the worker).
    timeout_sec: "float | None" = None
    #: Transient (timeout) retries per spec, scheduler-side.
    retries: int = 1
    #: Worker crashes before a spec is quarantined, supervisor-side.
    max_crashes: int = 2
    #: Bounded admission queue: max jobs accepted but not finished.
    queue_limit: int = 16
    #: Per-client fairness cap: max queued jobs for one client id.
    client_limit: int = 4
    #: Scheduler tick (supervisor poll budget) in seconds.
    poll_sec: float = 0.05
    capture_timelines: bool = False


class _Rejection(ServeError):
    """Admission refused; carries the HTTP status + Retry-After hint."""

    def __init__(
        self, code: int, reason: str, retry_after_sec: "int | None" = None
    ) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason
        self.retry_after_sec = retry_after_sec


class _Task:
    """One distinct spec in flight, shared by every interested job."""

    __slots__ = ("key", "spec", "attempts", "waiters")

    def __init__(self, key: str, spec: ExperimentSpec) -> None:
        self.key = key
        self.spec = spec
        self.attempts = 0
        #: (job, [spec indexes]) pairs awaiting this outcome.
        self.waiters: "List[Tuple[Job, List[int]]]" = []


class ExperimentServer:
    """Long-running experiment service over the cached sweep substrate."""

    def __init__(
        self,
        config: ServeConfig,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config
        self.store = JobStore(config.root)
        self.recorder = SweepRecorder(registry)
        reg = self.recorder.registry
        self._m_admissions = reg.counter(
            "serve_admissions_total",
            "Job submissions, by admission result.",
            labels=("result",),
        )
        self._m_jobs = reg.counter(
            "serve_jobs_total",
            "Job lifecycle events, by state reached.",
            labels=("state",),
        )
        self._m_respawns = reg.counter(
            "serve_worker_respawns_total",
            "Crashed workers replaced by the supervisor.",
        )
        self._m_quarantined = reg.counter(
            "serve_quarantined_specs_total",
            "Specs quarantined after repeated worker crashes.",
        )
        self._m_requests = reg.counter(
            "serve_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labels=("endpoint", "code"),
        )
        self._g_queue = reg.gauge(
            "serve_queue_depth",
            "Jobs accepted but not yet finished (queued + running).",
        )
        self._g_up = reg.gauge(
            "serve_up", "1 while admitting work, 0 once draining."
        )
        self._g_drain = reg.gauge(
            "serve_drain_seconds",
            "Wall-clock seconds the final graceful drain took.",
        )
        self.supervisor = WorkerSupervisor(
            max_workers=config.workers,
            timeout_sec=config.timeout_sec,
            capture_timelines=config.capture_timelines,
            max_crashes=config.max_crashes,
        )
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: "List[str]" = []  # queued job ids, admission order
        self._rr_clients: "List[str]" = []  # round-robin client order
        self._running: "Dict[str, Job]" = {}
        self._tasks: "Dict[str, _Task]" = {}
        self._journal_entries: "Dict[str, dict]" = {}
        self._respawns_seen = 0
        self._draining = False
        self._drain_started: "float | None" = None
        self._stopped = threading.Event()
        self._scheduler: "threading.Thread | None" = None
        self._httpd: "ThreadingHTTPServer | None" = None
        self._http_thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Recover journaled jobs, start the pool, scheduler, and
        HTTP listener."""
        recovered = self.store.recover()
        self._journal_entries = self.store.journal.load()
        with self._lock:
            for job in recovered:
                self._enqueue(job)
                self._m_jobs.inc(state="recovered")
            self._g_up.set(1)
            self._update_queue_gauge()
        self.supervisor.start()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()
        self._httpd = _make_httpd(self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()

    @property
    def address(self) -> str:
        """The bound address — ``host:port`` or the unix-socket path."""
        if self._httpd is None:
            raise ServeError("server is not started")
        bound = self._httpd.server_address
        if isinstance(bound, (str, bytes)):
            text = bound.decode() if isinstance(bound, bytes) else bound
            return text
        return f"{bound[0]}:{bound[1]}"

    def drain(self) -> None:
        """Graceful drain: stop admitting, let in-flight jobs finish.

        Safe to call from a signal handler (sets flags, never blocks).
        Still-queued jobs stay journaled for the next daemon life.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._drain_started = time.monotonic()
            self._g_up.set(0)
            self.recorder.instant("drain-start")
            self._cond.notify_all()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (main thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        self.drain()

    def wait(self, timeout_sec: "float | None" = None) -> bool:
        """Block until the daemon has fully drained and stopped."""
        return self._stopped.wait(timeout_sec)

    def stop(self) -> None:
        """Tear down after the scheduler finished (or on fatal error)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        self.supervisor.stop()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Admission (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def submit_job(self, client: str, specs_payload) -> "Tuple[Job, str]":
        """Admit one batch; returns ``(job, disposition)`` where the
        disposition is ``"created"`` or ``"duplicate"``.  Raises
        :class:`_Rejection` with the HTTP status for refusals."""
        client = self.store.validate_client(client)
        specs = self.store.parse_specs(specs_payload)
        with self._lock:
            if self._draining:
                self._m_admissions.inc(result="rejected-draining")
                raise _Rejection(
                    503, "draining: not admitting new jobs"
                )
            depth = len(self._queue) + len(self._running)
            # Peek for idempotent resubmission before quota checks: a
            # retry of work this daemon already accepted must succeed
            # even when the queue is full.
            existing_id = job_id_for(client, specs, self.store.fingerprint)
            if existing_id in self.store.jobs:
                self._m_admissions.inc(result="duplicate")
                return self.store.jobs[existing_id], "duplicate"
            if depth >= self.config.queue_limit:
                self._m_admissions.inc(result="rejected-queue-full")
                raise _Rejection(
                    429,
                    f"queue full ({depth} jobs in flight, limit "
                    f"{self.config.queue_limit})",
                    retry_after_sec=self._retry_after_hint(depth),
                )
            if (
                self.store.queued_by_client(client)
                >= self.config.client_limit
            ):
                self._m_admissions.inc(result="rejected-client-limit")
                raise _Rejection(
                    429,
                    f"client {client!r} already has "
                    f"{self.config.client_limit} queued job(s)",
                    retry_after_sec=self._retry_after_hint(depth),
                )
            job, created = self.store.submit(client, specs)
            self._m_admissions.inc(result="accepted")
            self._m_jobs.inc(state="queued")
            self.recorder.instant(
                "job-accepted", job=job.job_id, client=client,
                specs=len(specs),
            )
            self._enqueue(job)
            self._cond.notify_all()
            return job, "created"

    def _retry_after_hint(self, depth: int) -> int:
        """Advisory Retry-After: mean observed spec time x queue depth,
        clamped to [1, 30] seconds."""
        status = self.recorder.status()
        done = status.get("done") or 0
        elapsed = status.get("elapsed_sec") or 0.0
        mean = (elapsed / done) if done else 1.0
        return int(min(_MAX_RETRY_AFTER_SEC, max(1, round(mean * depth))))

    def _enqueue(self, job: Job) -> None:
        self._queue.append(job.job_id)
        if job.client not in self._rr_clients:
            self._rr_clients.append(job.client)
        self._update_queue_gauge()

    def _update_queue_gauge(self) -> None:
        self._g_queue.set(len(self._queue) + len(self._running))

    # ------------------------------------------------------------------
    # Views (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def job_payload(
        self, job_id: str, wait_sec: float = 0.0
    ) -> "Optional[dict]":
        """Job status + resolved outcomes; optionally long-poll until
        the job completes (bounded by ``wait_sec``)."""
        deadline = time.monotonic() + max(0.0, wait_sec)
        with self._lock:
            job = self.store.jobs.get(job_id)
            if job is None:
                return None
            if job.done and not job.outcomes and job.specs:
                self._rehydrate(job)
            while not job.done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(remaining, 0.5))
            outcomes = [
                dict(outcome_to_wire(job.outcomes[i]), index=i)
                for i in sorted(job.outcomes)
            ]
            return {
                "job": job.job_id,
                "client": job.client,
                "state": job.state,
                "specs": job.total,
                "resolved": job.resolved,
                "recovered": job.recovered,
                "outcomes": outcomes,
            }

    def _rehydrate(self, job: Job) -> None:
        """Re-resolve a finished job's outcomes after a restart.

        Every spec a *finished* job ran left either a cache entry (ok)
        or a sweep-journal entry (any failure, transient included — the
        job genuinely finished with it).  A spec with neither (evicted
        cache + lost journal) flips the job back to ``queued`` to
        re-run; best-effort state can degrade to recomputation, never
        to a wrong answer."""
        resolved: "Dict[int, SpecOutcome]" = {}
        for index, spec in enumerate(job.specs):
            outcome = self._resolve_without_running(
                spec, reuse_transients=True
            )
            if outcome is None:
                job.outcomes = {}
                self.store.transition(job, "queued")
                self._enqueue(job)
                self._cond.notify_all()
                return
            resolved[index] = outcome
        job.outcomes = resolved

    def healthz(self) -> dict:
        with self._lock:
            counts = self.store.counts()
            return {
                "status": "draining" if self._draining else "ok",
                "ready": not self._draining,
                "jobs": counts,
                "queue_depth": len(self._queue) + len(self._running),
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
                "worker_mode": self.supervisor.mode,
                "worker_respawns": self.supervisor.respawns,
            }

    def jobs_index(self) -> dict:
        with self._lock:
            return {
                "jobs": [
                    {
                        "job": job.job_id,
                        "client": job.client,
                        "state": job.state,
                        "specs": job.total,
                        "resolved": job.resolved,
                    }
                    for job in self.store.jobs.values()
                ]
            }

    def metrics_text(self) -> str:
        with self._lock:
            return self.recorder.registry.to_prometheus()

    def count_request(self, endpoint: str, code: int) -> None:
        with self._lock:
            self._m_requests.inc(endpoint=endpoint, code=str(code))

    # ------------------------------------------------------------------
    # Scheduler (one dedicated thread)
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                if not self._draining:
                    self._start_queued_jobs()
                elif not self._running:
                    break  # drained: in-flight work is finished
                idle = not self._running and not self._queue
            if idle:
                with self._cond:
                    self._cond.wait(timeout=self.config.poll_sec * 4)
                continue
            events = self.supervisor.poll(self.config.poll_sec)
            with self._lock:
                for key, outcome in events:
                    self._task_finished(key, outcome)
                self._track_respawns()
        if self._drain_started is not None:
            self._g_drain.set(time.monotonic() - self._drain_started)
        self.recorder.instant("drain-finished")
        self.stop()

    def _track_respawns(self) -> None:
        fresh = self.supervisor.respawns - self._respawns_seen
        if fresh > 0:
            self._m_respawns.inc(fresh)
            self._respawns_seen = self.supervisor.respawns

    def _start_queued_jobs(self) -> None:
        """Admit queued jobs to execution, round-robin across clients."""
        while self._queue:
            job = self._pick_next_job()
            if job is None:
                break
            self._start_job(job)

    def _pick_next_job(self) -> "Optional[Job]":
        """Next queued job, cycling client order for fairness: a client
        that queued ten jobs cannot starve a client that queued one."""
        if not self._queue:
            return None
        for _ in range(len(self._rr_clients)):
            client = self._rr_clients.pop(0)
            self._rr_clients.append(client)
            for job_id in self._queue:
                job = self.store.jobs.get(job_id)
                if job is not None and job.client == client:
                    self._queue.remove(job_id)
                    return job
        # Queue holds jobs from clients not in the rotation (should
        # not happen; defensive): serve FIFO.
        job_id = self._queue.pop(0)
        return self.store.jobs.get(job_id)

    def _start_job(self, job: Job) -> None:
        self.store.transition(job, "running")
        self._running[job.job_id] = job
        self._m_jobs.inc(state="running")
        self._update_queue_gauge()
        # Dedup preserving first-appearance order via an explicit list
        # (not a dict view) so spec dispatch order is structurally
        # deterministic.
        ordered: "List[ExperimentSpec]" = []
        distinct: "Dict[ExperimentSpec, List[int]]" = {}
        for index, spec in enumerate(job.specs):
            if spec not in distinct:
                distinct[spec] = []
                ordered.append(spec)
            distinct[spec].append(index)
        for spec in ordered:
            indexes = distinct[spec]
            outcome = self._resolve_without_running(spec)
            if outcome is not None:
                self._apply_outcome(job, indexes, outcome)
                continue
            self.recorder.cache_miss(spec.label)
            key = spec.cache_key(self.store.fingerprint)
            task = self._tasks.get(key)
            if task is None:
                task = _Task(key, spec)
                self._tasks[key] = task
                self.supervisor.submit(key, spec)
            task.waiters.append((job, indexes))
        self._maybe_complete(job)

    def _resolve_without_running(
        self, spec: ExperimentSpec, reuse_transients: bool = False
    ) -> "Optional[SpecOutcome]":
        """The run-free prefix of the ``run_specs`` ladder: result
        cache first, then journaled failures (deterministic ones
        always; transients only when rehydrating a finished job)."""
        cached = self.store.cache.lookup(
            spec,
            self.store.fingerprint,
            with_timeline=self.config.capture_timelines,
        )
        if cached is not None:
            self.recorder.cache_hit(spec.label)
            return SpecOutcome(spec=spec, result=cached, source="cache")
        entry = self._journal_entries.get(
            spec.cache_key(self.store.fingerprint)
        )
        if entry is not None and (
            entry.get("kind") == "error"
            or (reuse_transients and entry.get("status") == "failed")
        ):
            self.recorder.journal_reused(spec.label)
            return SpecOutcome(
                spec=spec,
                error=SpecFailure(
                    kind=str(entry.get("kind", "error")),
                    message=str(entry.get("message", "")),
                    error_type=entry.get("error_type"),
                ),
                source="journal",
            )
        return None

    def _task_finished(self, key: str, outcome: SpecOutcome) -> None:
        task = self._tasks.get(key)
        if task is None:
            return
        if (
            outcome.error is not None
            and outcome.error.kind == "timeout"
            and task.attempts < self.config.retries
        ):
            # Scheduler-side transient retry (timeouts).  Crashes were
            # already retried inside the supervisor up to max_crashes,
            # so retrying them here would double the budget.
            task.attempts += 1
            self.recorder.retry(
                task.spec.label, outcome.error.kind, task.attempts
            )
            self.supervisor.submit(key, task.spec)
            return
        del self._tasks[key]
        if key in self.supervisor.quarantined:
            self._m_quarantined.inc()
        self._record_outcome(task, outcome)
        for job, indexes in task.waiters:
            self._apply_outcome(job, indexes, outcome)
            self._maybe_complete(job)

    def _record_outcome(self, task: _Task, outcome: SpecOutcome) -> None:
        """Persist + observe one executed spec (the ``run_specs``
        ``_finish`` twin)."""
        spec = task.spec
        if outcome.ok:
            self.store.cache.store(
                spec, self.store.fingerprint, outcome.result
            )
        self.store.journal.record(spec, self.store.fingerprint, outcome)
        entry: dict = {
            "key": task.key,
            "label": spec.label,
            "status": "ok" if outcome.ok else "failed",
            "source": outcome.source,
            "elapsed_sec": outcome.elapsed_sec,
        }
        if outcome.error is not None:
            entry["kind"] = outcome.error.kind
            entry["message"] = outcome.error.message
            if outcome.error.error_type is not None:
                entry["error_type"] = outcome.error.error_type
        self._journal_entries[task.key] = entry
        copies = sum(len(indexes) for _, indexes in task.waiters)
        self.recorder.outcome(
            spec.label,
            outcome.source,
            "ok" if outcome.ok else "failed",
            outcome.elapsed_sec,
            fault_counts=(
                outcome.result.fault_counts if outcome.ok else None
            ),
            failure_kind=(
                outcome.error.kind if outcome.error is not None else None
            ),
            copies=max(1, copies),
        )

    def _apply_outcome(
        self, job: Job, indexes: "List[int]", outcome: SpecOutcome
    ) -> None:
        for index in indexes:
            job.outcomes[index] = outcome

    def _maybe_complete(self, job: Job) -> None:
        if job.resolved < job.total or job.done:
            return
        self.store.transition(job, "done")
        self._running.pop(job.job_id, None)
        self._m_jobs.inc(state="done")
        self.recorder.instant(
            "job-done", job=job.job_id, client=job.client
        )
        self._update_queue_gauge()
        self._cond.notify_all()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------

#: Largest request body accepted (a batch of canonical specs is small;
#: anything bigger is a client bug or abuse).
_MAX_BODY_BYTES = 8 * 1024 * 1024


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by :func:`_make_httpd`; handlers reach the app through it.
    app: "ExperimentServer | None" = None


class _UnixHTTPServer(_HTTPServer):
    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # A stale socket file from a SIGKILLed daemon would fail the
        # bind; recovery must not require manual cleanup.
        try:
            Path(self.server_address).unlink()
        except OSError:
            pass
        self.socket.bind(self.server_address)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        """Silenced: the library never prints; request accounting goes
        through the ``serve_http_requests_total`` metric instead."""

    def address_string(self) -> str:
        # AF_UNIX peers have no (host, port) pair.
        if isinstance(self.client_address, (str, bytes)):
            return "unix"
        return super().address_string()

    @property
    def app(self) -> ExperimentServer:
        return self.server.app

    # -- responses -----------------------------------------------------

    def _send_json(
        self,
        code: int,
        payload: dict,
        endpoint: str,
        extra_headers: "Optional[Dict[str, str]]" = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.app.count_request(endpoint, code)

    def _send_text(
        self, code: int, text: str, content_type: str, endpoint: str
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app.count_request(endpoint, code)

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            payload = self.app.healthz()
            self._send_json(200, payload, "healthz")
        elif path == "/metrics":
            self._send_text(
                200,
                self.app.metrics_text(),
                PROMETHEUS_CONTENT_TYPE,
                "metrics",
            )
        elif path == "/jobs":
            self._send_json(200, self.app.jobs_index(), "jobs-index")
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            wait_sec = _parse_wait(query)
            payload = self.app.job_payload(job_id, wait_sec=wait_sec)
            if payload is None:
                self._send_json(
                    404,
                    {"error": "not-found", "job": job_id},
                    "job-status",
                )
            else:
                self._send_json(200, payload, "job-status")
        else:
            self._send_json(404, {"error": "not-found"}, "other")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        if self.path.partition("?")[0] != "/jobs":
            self._send_json(404, {"error": "not-found"}, "other")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self._send_json(
                413, {"error": "body-too-large"}, "job-submit"
            )
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except ValueError as exc:
            self._send_json(
                400,
                {"error": "bad-request", "detail": f"invalid JSON: {exc}"},
                "job-submit",
            )
            return
        if not isinstance(payload, dict):
            self._send_json(
                400,
                {"error": "bad-request", "detail": "body must be an object"},
                "job-submit",
            )
            return
        try:
            job, disposition = self.app.submit_job(
                payload.get("client", "default"), payload.get("specs")
            )
        except _Rejection as exc:
            headers = {}
            body = {"error": exc.reason}
            if exc.retry_after_sec is not None:
                headers["Retry-After"] = str(exc.retry_after_sec)
                body["retry_after_sec"] = exc.retry_after_sec
            self._send_json(exc.code, body, "job-submit", headers)
            return
        except ServeError as exc:
            self._send_json(
                400,
                {"error": "bad-request", "detail": str(exc)},
                "job-submit",
            )
            return
        code = 200 if disposition == "duplicate" else 202
        self._send_json(
            code,
            {
                "job": job.job_id,
                "state": job.state,
                "specs": job.total,
                "duplicate": disposition == "duplicate",
                "url": f"/jobs/{job.job_id}",
            },
            "job-submit",
        )


def _parse_wait(query: str) -> float:
    """``wait=SEC`` long-poll budget from a query string, clamped to
    [0, 300]; anything unparseable means no wait."""
    for part in query.split("&"):
        name, _, value = part.partition("=")
        if name == "wait":
            try:
                return min(300.0, max(0.0, float(value)))
            except ValueError:
                return 0.0
    return 0.0


def _make_httpd(app: ExperimentServer) -> ThreadingHTTPServer:
    config = app.config
    if config.unix_socket:
        httpd = _UnixHTTPServer(config.unix_socket, _Handler)
    else:
        httpd = _HTTPServer((config.host, config.port), _Handler)
    httpd.app = app
    return httpd
