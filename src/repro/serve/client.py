"""``ServeClient``: a well-behaved client for the experiment daemon.

"Well-behaved" means the retry story is safe by construction:

* **idempotent resubmission** — job ids are content-addressed
  (client id + canonical specs + source fingerprint), so resubmitting
  after a dropped connection or an ambiguous failure maps onto the
  daemon's existing job instead of duplicating work.  The client may
  therefore retry *blindly*.
* **backoff with deterministic jitter** — 429/503 rejections and
  transport errors back off exponentially; the daemon's ``Retry-After``
  hint is honoured when present.  Jitter is derived from a SHA-256 over
  the request payload and attempt number (the
  :func:`repro.sim.parallel._retry_jitter_fraction` idiom), so a herd
  of clients submitting *different* batches desynchronises while any
  single run of the test suite stays reproducible — no ``random``
  module, no clock-seeded state.
* **bounded waiting** — :meth:`wait` rides the server-side long-poll
  (``GET /jobs/<id>?wait=SEC``) instead of tight-polling, and every
  wait budget is counted down from sleeps the client itself performed,
  not wall-clock reads.

Transport errors surface as :class:`~repro.errors.ServeError` — a
client never leaks raw ``socket``/``http.client`` exceptions into
harness code.
"""

from __future__ import annotations

import hashlib
import json
import socket
import time
from http.client import HTTPConnection, HTTPException
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.serve.wire import outcome_from_wire
from repro.sim.parallel import ExperimentSpec, SpecOutcome

__all__ = ["ServeClient"]

#: Backoff growth cap: sleeps stop doubling after this many attempts
#: (2**6 = 64x base), matching ``_sleep_backoff`` in the sweep layer.
_MAX_BACKOFF_DOUBLINGS = 6

#: Transport failures a retry can plausibly fix.
_RETRYABLE_EXCS = (OSError, HTTPException)


def _jitter_fraction(token: str, attempt: int) -> float:
    """Deterministic jitter in [0, 1): hash of payload identity and
    attempt number, same construction as the sweep layer's seeded
    retry jitter."""
    digest = hashlib.sha256(
        f"{token}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class _UnixHTTPConnection(HTTPConnection):
    """``http.client`` over an AF_UNIX socket path."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """Submit spec batches to a ``repro serve`` daemon and await results.

    ``address`` is either ``"http://HOST:PORT"`` (loopback TCP) or
    ``"unix:/path/to.sock"``.  One client instance is one logical
    *client id* for the daemon's per-client fairness accounting.
    """

    def __init__(
        self,
        address: str,
        client_id: str = "default",
        max_attempts: int = 8,
        backoff_sec: float = 0.05,
        jitter: float = 0.5,
        timeout_sec: float = 10.0,
    ) -> None:
        if max_attempts < 1:
            raise ServeError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.address = address
        self.client_id = client_id
        self.max_attempts = int(max_attempts)
        self.backoff_sec = float(backoff_sec)
        self.jitter = float(jitter)
        self.timeout_sec = float(timeout_sec)
        if address.startswith("unix:"):
            self._unix_path: "Optional[str]" = address[len("unix:"):]
            self._host_port: "Optional[Tuple[str, int]]" = None
        elif address.startswith("http://"):
            rest = address[len("http://"):].rstrip("/")
            host, _, port = rest.partition(":")
            try:
                self._host_port = (host, int(port))
            except ValueError as exc:
                raise ServeError(
                    f"bad serve address {address!r}: expected "
                    "http://HOST:PORT"
                ) from exc
            self._unix_path = None
        else:
            raise ServeError(
                f"bad serve address {address!r}: expected http://HOST:PORT "
                "or unix:/path"
            )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._unix_path is not None:
            return _UnixHTTPConnection(
                self._unix_path, timeout=self.timeout_sec
            )
        host, port = self._host_port
        return HTTPConnection(host, port, timeout=self.timeout_sec)

    def _request(
        self,
        method: str,
        path: str,
        body: "Optional[dict]" = None,
    ) -> "Tuple[int, Mapping[str, str], bytes]":
        """One HTTP exchange; raises :class:`ServeError` on transport
        failure (the retry loops above decide whether to try again)."""
        connection = self._connection()
        try:
            payload = (
                json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None
                else None
            )
            headers = {}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        except _RETRYABLE_EXCS as exc:
            raise ServeError(
                f"serve request {method} {path} failed: {exc}"
            ) from exc
        finally:
            connection.close()

    @staticmethod
    def _decode(data: bytes, context: str) -> dict:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(
                f"{context}: daemon answered non-JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ServeError(f"{context}: daemon answered a non-object")
        return payload

    def _sleep_before_retry(
        self, token: str, attempt: int, retry_after: "Optional[float]"
    ) -> float:
        """Sleep per the backoff policy; returns the seconds slept (the
        caller's wait-budget accounting)."""
        if retry_after is not None and retry_after > 0:
            delay = retry_after
        else:
            delay = self.backoff_sec * (
                2 ** min(attempt - 1, _MAX_BACKOFF_DOUBLINGS)
            )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * _jitter_fraction(token, attempt)
        time.sleep(delay)
        return delay

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def submit(self, specs: "Sequence[ExperimentSpec]") -> str:
        """Submit one batch; returns the job id.

        Retries 429 (honouring ``Retry-After``), 503-while-draining,
        and transport errors with jittered exponential backoff.  Safe
        to call repeatedly with the same batch: the daemon folds
        resubmissions onto the existing job.
        """
        body = {
            "client": self.client_id,
            "specs": [spec.canonical() for spec in specs],
        }
        token = hashlib.sha256(
            json.dumps(body, sort_keys=True).encode("utf-8")
        ).hexdigest()
        last_error: "Optional[str]" = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                status, headers, data = self._request(
                    "POST", "/jobs", body
                )
            except ServeError as exc:
                last_error = str(exc)
                if attempt < self.max_attempts:
                    self._sleep_before_retry(token, attempt, None)
                continue
            if status in (200, 202):
                payload = self._decode(data, "submit")
                job_id = payload.get("job")
                if not isinstance(job_id, str):
                    raise ServeError(
                        "submit: daemon acknowledged without a job id"
                    )
                return job_id
            if status in (429, 503):
                payload = self._decode(data, "submit")
                retry_after = None
                header = headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                last_error = (
                    f"HTTP {status}: {payload.get('error', 'rejected')}"
                )
                if attempt < self.max_attempts:
                    self._sleep_before_retry(token, attempt, retry_after)
                continue
            payload = self._decode(data, "submit")
            raise ServeError(
                f"submit rejected (HTTP {status}): "
                f"{payload.get('detail') or payload.get('error')}"
            )
        raise ServeError(
            f"submit gave up after {self.max_attempts} attempt(s); "
            f"last error: {last_error}"
        )

    def status(self, job_id: str, wait_sec: float = 0.0) -> dict:
        """Job status payload; ``wait_sec`` long-polls server-side."""
        path = f"/jobs/{job_id}"
        if wait_sec > 0:
            path += f"?wait={wait_sec:g}"
        code, _, data = self._request("GET", path)
        if code == 404:
            raise ServeError(f"job {job_id} is unknown to the daemon")
        if code != 200:
            raise ServeError(f"job status failed with HTTP {code}")
        return self._decode(data, "job status")

    def wait(
        self,
        job_id: str,
        timeout_sec: float = 60.0,
        poll_sec: float = 2.0,
    ) -> dict:
        """Block until the job is done; returns its final payload.

        The budget counts down from the long-poll windows and backoff
        sleeps the client itself performed — no wall-clock reads, so
        behaviour is reproducible under test.
        """
        budget = float(timeout_sec)
        attempt = 0
        while True:
            window = max(0.1, min(poll_sec, budget))
            try:
                payload = self.status(job_id, wait_sec=window)
                attempt = 0
            except ServeError:
                # Daemon momentarily unreachable (restart mid-wait):
                # back off and re-ask — the job journal makes the job
                # outlive the daemon process.
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                budget -= self._sleep_before_retry(job_id, attempt, None)
                if budget <= 0:
                    raise
                continue
            if payload.get("state") == "done":
                return payload
            budget -= window
            if budget <= 0:
                raise ServeError(
                    f"job {job_id} did not finish within "
                    f"{timeout_sec:g}s ({payload.get('resolved')}/"
                    f"{payload.get('specs')} specs resolved)"
                )

    @staticmethod
    def outcomes(payload: Mapping) -> "List[SpecOutcome]":
        """Decode a done job's payload into ordered outcomes."""
        entries = payload.get("outcomes")
        if not isinstance(entries, list):
            raise ServeError("job payload carries no outcomes")
        ordered = sorted(
            entries, key=lambda entry: entry.get("index", 0)
        )
        return [outcome_from_wire(entry) for entry in ordered]

    def run(
        self,
        specs: "Sequence[ExperimentSpec]",
        timeout_sec: float = 60.0,
    ) -> "List[SpecOutcome]":
        """Submit, wait, decode: the remote twin of ``run_specs``."""
        job_id = self.submit(specs)
        payload = self.wait(job_id, timeout_sec=timeout_sec)
        return self.outcomes(payload)

    def healthz(self) -> dict:
        code, _, data = self._request("GET", "/healthz")
        if code != 200:
            raise ServeError(f"healthz failed with HTTP {code}")
        return self._decode(data, "healthz")

    def metrics_text(self) -> str:
        code, _, data = self._request("GET", "/metrics")
        if code != 200:
            raise ServeError(f"metrics failed with HTTP {code}")
        return data.decode("utf-8")
