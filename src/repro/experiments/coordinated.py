"""Figures 11 and 12: impact of guest-VMM coordinated management.

* Figure 11 — gains over SlowMem-only for HeteroOS-LRU, VMM-exclusive,
  and HeteroOS-coordinated at 1/4 and 1/8 FastMem ratios.
* Figure 12 — gains attributable *exclusively to migrations*: each
  migrating approach relative to the pure-placement Heap-IO-Slab-OD
  baseline, with the total pages migrated (millions).
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.runner import run_experiment
from repro.sim.stats import RunResult, gain_percent
from repro.workloads.registry import PLACEMENT_APPS

FIG11_POLICIES: tuple[str, ...] = (
    "hetero-lru",
    "vmm-exclusive",
    "hetero-coordinated",
)

FIG11_RATIOS: tuple[float, ...] = (1 / 4, 1 / 8)

FIG12_APPS: tuple[str, ...] = ("graphchi", "redis", "leveldb")


@lru_cache(maxsize=None)
def _cached_run(
    app: str, policy: str, ratio: float, epochs: int | None
) -> RunResult:
    return run_experiment(app, policy, fast_ratio=ratio, epochs=epochs)


def run_fig11(
    apps: tuple[str, ...] = PLACEMENT_APPS,
    ratios: tuple[float, ...] = FIG11_RATIOS,
    policies: tuple[str, ...] = FIG11_POLICIES,
    epochs: int | None = None,
) -> list[dict]:
    """Gains (%) over SlowMem-only per (app, ratio, policy)."""
    rows = []
    for app in apps:
        slow = _cached_run(app, "slowmem-only", 1 / 4, epochs)
        fast = _cached_run(app, "fastmem-only", 1 / 4, epochs)
        for ratio in ratios:
            row: dict = {"app": app, "ratio": f"1/{round(1 / ratio)}"}
            for policy in policies:
                result = _cached_run(app, policy, ratio, epochs)
                row[policy] = gain_percent(result, slow)
            row["fastmem-only"] = gain_percent(fast, slow)
            rows.append(row)
    return rows


def run_fig12(
    apps: tuple[str, ...] = FIG12_APPS,
    ratio: float = 1 / 4,
    epochs: int | None = None,
) -> list[dict]:
    """Migration-only gains relative to Heap-IO-Slab-OD + pages moved.

    For HeteroOS policies, "migrations" include both promotions and the
    HeteroOS-LRU demotions (the paper's Figure 12 counts the evictions
    and migrations together).
    """
    rows = []
    for app in apps:
        placement = _cached_run(app, "heap-io-slab-od", ratio, epochs)
        row: dict = {"app": app}
        for policy in ("vmm-exclusive", "hetero-lru", "hetero-coordinated"):
            result = _cached_run(app, policy, ratio, epochs)
            moved = result.pages_migrated + result.pages_demoted
            row[f"{policy}_gain_pct"] = gain_percent(result, placement)
            row[f"{policy}_migrated_millions"] = moved / 1e6
        rows.append(row)
    return rows


def clear_cache() -> None:
    """Drop memoized runs."""
    _cached_run.cache_clear()
