"""Generic parameter-sweep utility.

The paper's figures are fixed grids; downstream studies want arbitrary
ones.  :func:`sweep` runs the cartesian product of applications ×
policies × FastMem ratios × throttle settings and returns flat rows —
the helper behind the CLI's ``sweep`` subcommand and Table 2's
measured-metric reproduction.

Execution goes through :mod:`repro.sim.parallel`: the grid expands into
:class:`~repro.sim.parallel.ExperimentSpec`\\ s, duplicates collapse,
cached points skip simulation, and ``max_workers > 1`` fans the misses
out across worker processes — with results bit-identical to the serial
path (the engine is deterministic from ``SimConfig.seed``).
"""

from __future__ import annotations

from typing import Sequence

from repro.hw.throttle import DEFAULT_SLOWMEM, ThrottleConfig
from repro.sim.parallel import (
    ExperimentSpec,
    ProgressFn,
    ResultCache,
    SweepJournal,
    make_spec,
    results_or_raise,
    run_cached,
    run_specs,
)
from repro.sim.stats import gain_percent
from repro.workloads.registry import ALL_APPS

#: Table 2's application descriptions (for the table reproduction).
TABLE2_DESCRIPTIONS: dict[str, tuple[str, str]] = {
    "graphchi": (
        "Pagerank using Orkut social graph, 8M nodes, 500M edges",
        "time (sec)",
    ),
    "xstream": (
        "Edge-centric graph processing, same input as GraphChi",
        "time (sec)",
    ),
    "metis": (
        "Shared memory mapreduce, 4GB crime dataset, 8 threads",
        "time (sec)",
    ),
    "leveldb": (
        "Google's DB for bigtable, SQLite bench with 1M keys",
        "throughput (MB/s)",
    ),
    "redis": (
        "Key-value store with persistence, 4M ops, 80% GETs",
        "requests per sec",
    ),
    "nginx": (
        "Webserver, 1M static/dynamic/image webpages",
        "requests per sec",
    ),
}


def run_table2(epochs: int | None = None) -> list[dict]:
    """Table 2: the applications, their metrics, and what this
    reproduction measures for each under HeteroOS-coordinated (1/4)."""
    rows = []
    for app in ALL_APPS:
        description, metric = TABLE2_DESCRIPTIONS[app]
        result = run_cached(
            app, "hetero-coordinated", fast_ratio=0.25, epochs=epochs
        )
        rows.append(
            {
                "app": app,
                "description": description,
                "perf_metric": metric,
                "measured": (
                    result.runtime_sec
                    if result.metric == "seconds"
                    else result.metric_value
                ),
            }
        )
    return rows


def expand_grid(
    apps: Sequence[str],
    policies: Sequence[str],
    ratios: Sequence[float],
    throttles: Sequence[ThrottleConfig] = (DEFAULT_SLOWMEM,),
    epochs: int | None = None,
    baseline_policy: str = "slowmem-only",
    seed: int = 7,
) -> list[ExperimentSpec]:
    """Expand a sweep grid into specs, baselines included, in row order.

    Each (throttle, ratio, app) group leads with its baseline spec so a
    chunked parallel run simulates baselines early; duplicates (e.g.
    ``baseline_policy`` also listed in ``policies``) are collapsed by
    :func:`~repro.sim.parallel.run_specs` itself.
    """
    specs = []
    for throttle in throttles:
        for ratio in ratios:
            for app in apps:
                specs.append(
                    make_spec(
                        app, baseline_policy, fast_ratio=ratio,
                        throttle=throttle, epochs=epochs, seed=seed,
                    )
                )
                for policy in policies:
                    specs.append(
                        make_spec(
                            app, policy, fast_ratio=ratio,
                            throttle=throttle, epochs=epochs, seed=seed,
                        )
                    )
    return specs


def sweep(
    apps: Sequence[str] = ALL_APPS,
    policies: Sequence[str] = ("hetero-lru",),
    ratios: Sequence[float] = (1 / 4,),
    throttles: Sequence[ThrottleConfig] = (DEFAULT_SLOWMEM,),
    epochs: int | None = None,
    baseline_policy: str = "slowmem-only",
    max_workers: int | None = 1,
    cache: ResultCache | str | None = None,
    timeout_sec: float | None = None,
    progress: ProgressFn | None = None,
    retries: int = 0,
    retry_backoff_sec: float = 0.5,
    retry_jitter: float = 0.0,
    journal: "SweepJournal | str | None" = None,
    recorder: "SweepRecorder | None" = None,
) -> list[dict]:
    """Run the full grid; each row carries runtime, metric, and gain
    over the same-platform baseline.

    ``max_workers``/``cache``/``timeout_sec``/``progress``/``retries``/
    ``retry_backoff_sec``/``retry_jitter``/``journal``/``recorder``
    pass through to :func:`repro.sim.parallel.run_specs`; the defaults
    (serial, no cache, no retry, no jitter, no journal, no recorder)
    reproduce the historical behaviour exactly.  Any failed grid point raises
    :class:`~repro.errors.SweepError` with the structured per-spec
    failures in its message.
    """
    specs = expand_grid(
        apps, policies, ratios, throttles, epochs, baseline_policy
    )
    outcomes = run_specs(
        specs,
        max_workers=max_workers,
        cache=cache,
        timeout_sec=timeout_sec,
        progress=progress,
        retries=retries,
        retry_backoff_sec=retry_backoff_sec,
        retry_jitter=retry_jitter,
        journal=journal,
        recorder=recorder,
    )
    results = iter(results_or_raise(outcomes))
    rows = []
    for throttle in throttles:
        for ratio in ratios:
            for app in apps:
                baseline = next(results)
                for policy in policies:
                    result = next(results)
                    rows.append(
                        {
                            "app": app,
                            "policy": policy,
                            "ratio": ratio,
                            "throttle": throttle.label,
                            "runtime_sec": result.runtime_sec,
                            "metric": result.metric_value,
                            "gain_pct": gain_percent(result, baseline),
                        }
                    )
    return rows
