"""Generic parameter-sweep utility.

The paper's figures are fixed grids; downstream studies want arbitrary
ones.  :func:`sweep` runs the cartesian product of applications ×
policies × FastMem ratios × throttle settings and returns flat rows —
the helper behind the CLI's ``sweep`` subcommand and Table 2's
measured-metric reproduction.
"""

from __future__ import annotations

from typing import Sequence

from repro.hw.throttle import DEFAULT_SLOWMEM, ThrottleConfig
from repro.sim.runner import run_experiment
from repro.sim.stats import gain_percent
from repro.workloads.registry import ALL_APPS, make_workload

#: Table 2's application descriptions (for the table reproduction).
TABLE2_DESCRIPTIONS: dict[str, tuple[str, str]] = {
    "graphchi": (
        "Pagerank using Orkut social graph, 8M nodes, 500M edges",
        "time (sec)",
    ),
    "xstream": (
        "Edge-centric graph processing, same input as GraphChi",
        "time (sec)",
    ),
    "metis": (
        "Shared memory mapreduce, 4GB crime dataset, 8 threads",
        "time (sec)",
    ),
    "leveldb": (
        "Google's DB for bigtable, SQLite bench with 1M keys",
        "throughput (MB/s)",
    ),
    "redis": (
        "Key-value store with persistence, 4M ops, 80% GETs",
        "requests per sec",
    ),
    "nginx": (
        "Webserver, 1M static/dynamic/image webpages",
        "requests per sec",
    ),
}


def run_table2(epochs: int | None = None) -> list[dict]:
    """Table 2: the applications, their metrics, and what this
    reproduction measures for each under HeteroOS-coordinated (1/4)."""
    rows = []
    for app in ALL_APPS:
        description, metric = TABLE2_DESCRIPTIONS[app]
        result = run_experiment(
            app, "hetero-coordinated", fast_ratio=0.25, epochs=epochs
        )
        rows.append(
            {
                "app": app,
                "description": description,
                "perf_metric": metric,
                "measured": (
                    result.runtime_sec
                    if result.metric == "seconds"
                    else result.metric_value
                ),
            }
        )
    return rows


def sweep(
    apps: Sequence[str] = ALL_APPS,
    policies: Sequence[str] = ("hetero-lru",),
    ratios: Sequence[float] = (1 / 4,),
    throttles: Sequence[ThrottleConfig] = (DEFAULT_SLOWMEM,),
    epochs: int | None = None,
    baseline_policy: str = "slowmem-only",
) -> list[dict]:
    """Run the full grid; each row carries runtime, metric, and gain
    over the same-platform baseline."""
    rows = []
    for throttle in throttles:
        for ratio in ratios:
            for app in apps:
                baseline = run_experiment(
                    app, baseline_policy, fast_ratio=ratio,
                    throttle=throttle, epochs=epochs,
                )
                for policy in policies:
                    result = (
                        baseline
                        if policy == baseline_policy
                        else run_experiment(
                            app, policy, fast_ratio=ratio,
                            throttle=throttle, epochs=epochs,
                        )
                    )
                    rows.append(
                        {
                            "app": app,
                            "policy": policy,
                            "ratio": ratio,
                            "throttle": throttle.label,
                            "runtime_sec": result.runtime_sec,
                            "metric": result.metric_value,
                            "gain_pct": gain_percent(result, baseline),
                        }
                    )
    return rows
