"""Experiment drivers: one module per paper table/figure.

Each ``run_*`` function executes the experiment and returns plain rows
(lists of dicts) that the benchmark harness prints and asserts shape
properties over, and that ``repro.experiments.report`` renders as text
tables.  Keeping the drivers here — instead of inside the benchmarks —
makes every figure reproducible from library code and from the examples.
"""

from repro.experiments import report
from repro.experiments.tables import (
    run_table1,
    run_table3,
    run_table5,
    run_table6,
)
from repro.experiments.sensitivity import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_table4,
)
from repro.experiments.page_mix import run_fig4
from repro.experiments.microbench import run_fig6, run_fig7
from repro.experiments.tracking_overhead import run_fig8
from repro.experiments.placement import run_fig9, run_fig10
from repro.experiments.coordinated import run_fig11, run_fig12
from repro.experiments.sharing import run_fig13
from repro.experiments.sweep import run_table2, sweep
from repro.experiments.analysis import (
    allocation_breakdown,
    summarize,
    time_breakdown,
)

__all__ = [
    "report",
    "sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "time_breakdown",
    "allocation_breakdown",
    "summarize",
]
