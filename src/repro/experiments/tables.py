"""Tables 1, 3, 5, and 6: device presets, throttle presets, the mechanism
ladder, and migration cost vs. batch size."""

from __future__ import annotations

from repro.hw.memdevice import TABLE1_DEVICES
from repro.hw.throttle import TABLE3_PRESETS
from repro.units import GIB, NS_PER_US
from repro.vmm.migration import MigrationCostModel


def run_table1() -> list[dict]:
    """Table 1: heterogeneous memory characteristics."""
    return [
        {
            "device": device.name,
            "density_x": device.density_factor,
            "load_ns": device.load_latency_ns,
            "store_ns": device.store_latency_ns,
            "bw_gbps": device.bandwidth_gbps,
            "capacity_gib": device.capacity_bytes / GIB,
        }
        for device in TABLE1_DEVICES
    ]


def run_table3() -> list[dict]:
    """Table 3: measured latency/bandwidth at the throttle calibration
    points."""
    return [
        {
            "config": f"L:{latency_factor},B:{bandwidth_factor}",
            "latency_ns": latency_ns,
            "bw_gbps": bandwidth,
        }
        for (latency_factor, bandwidth_factor), (latency_ns, bandwidth)
        in sorted(TABLE3_PRESETS.items())
    ]


#: Table 5's incremental mechanism ladder, in order.
TABLE5_LADDER: tuple[tuple[str, str], ...] = (
    ("heap-od", "On-demand heap allocation"),
    (
        "heap-io-slab-od",
        "Heap-OD + IO page cache allocation + slab allocation",
    ),
    ("hetero-lru", "Heap-IO-Slab-OD + HeteroOS-LRU"),
    (
        "hetero-coordinated",
        "HeteroOS-LRU + OS guided hotness-tracking + architecture hints",
    ),
)


def run_table5() -> list[dict]:
    """Table 5: the HeteroOS incremental mechanisms."""
    return [
        {"mechanism": name, "description": description}
        for name, description in TABLE5_LADDER
    ]


def run_table6(
    batch_sizes: tuple[int, ...] = (8 * 1024, 64 * 1024, 128 * 1024),
) -> list[dict]:
    """Table 6: per-page migration cost (walk + copy) vs. batch size."""
    model = MigrationCostModel()
    rows = []
    for batch in batch_sizes:
        move_ns, walk_ns = model.per_page_costs(batch)
        rows.append(
            {
                "batch_pages": batch,
                "t_page_move_us": move_ns / NS_PER_US,
                "t_page_walk_us": walk_ns / NS_PER_US,
            }
        )
    return rows
