"""Figure 4: application memory page distribution.

"Figure 4 shows the memory page distribution and the total memory pages
used" — cumulative pages allocated per kernel page class over a run,
normalised to fractions, plus the total in millions.
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.sim.parallel import run_cached

#: Figure 4's application order (left to right).
FIG4_APPS: tuple[str, ...] = ("redis", "xstream", "graphchi", "metis", "leveldb")

#: Figure 4's legend order.
FIG4_CLASSES: tuple[tuple[str, tuple[PageType, ...]], ...] = (
    ("heap/anon", (PageType.HEAP,)),
    ("io-cache/mapped", (PageType.PAGE_CACHE, PageType.BUFFER_CACHE)),
    ("nw-buff", (PageType.NETWORK_BUFFER,)),
    ("slab", (PageType.SLAB,)),
    ("pagetable", (PageType.PAGE_TABLE,)),
)


def run_fig4(
    apps: tuple[str, ...] = FIG4_APPS, epochs: int | None = None
) -> list[dict]:
    """Page-type fractions + total pages (millions) per application."""
    rows = []
    for app in apps:
        result = run_cached(app, "heap-io-slab-od", epochs=epochs)
        total = result.total_pages_allocated
        row: dict = {"app": app}
        for label, page_types in FIG4_CLASSES:
            pages = sum(
                result.page_distribution.get(pt, 0) for pt in page_types
            )
            row[label] = pages / total if total else 0.0
        row["total_millions"] = total / 1e6
        rows.append(row)
    return rows
