"""Plain-text table rendering for experiment rows."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_digits: int = 2,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    separator = "  ".join("-" * widths[i] for i in range(len(cols)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)
