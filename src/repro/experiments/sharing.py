"""Figure 13: multi-VM heterogeneous memory sharing.

Section 5.5's setup: a 4 GB FastMem / 8 GB SlowMem machine hosting a
GraphChi VM (Twitter dataset, resource vector <2x1GB, 1x4GB>) and a Metis
VM (<2x3GB, 1x4GB>).  Compared: max-min + VMM-exclusive, max-min +
HeteroOS-coordinated, weighted-DRF + HeteroOS-coordinated, and each VM's
single-VM HeteroOS-coordinated run (the stars in the figure).
"""

from __future__ import annotations

from repro.core.policy import make_policy
from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, MemoryDevice
from repro.hw.throttle import DEFAULT_SLOWMEM, throttled_device
from repro.sim.engine import SimulationEngine
from repro.sim.multi_vm import MultiVmSimulation, VmSpec
from repro.sim.runner import build_config
from repro.sim.stats import RunResult
from repro.units import GIB, pages_of_bytes
from repro.vmm.drf import WeightedDrf
from repro.vmm.sharing import MaxMinSharing, SharingPolicy
from repro.workloads.fig13 import make_graphchi_twitter, make_metis_big

GIB_PAGES = pages_of_bytes(GIB)


def fig13_devices() -> dict[NodeTier, MemoryDevice]:
    """The Section 5.5 machine: 4 GB FastMem, 8 GB throttled SlowMem."""
    return {
        NodeTier.FAST: DRAM.with_capacity(4 * GIB).with_name("fastmem"),
        NodeTier.SLOW: throttled_device(
            DEFAULT_SLOWMEM, capacity_bytes=8 * GIB, name="slowmem"
        ),
    }


def fig13_vmspecs(policy_name: str) -> list[VmSpec]:
    """The two guest VMs with the paper's resource vectors."""
    return [
        VmSpec(
            name="graphchi-vm",
            workload=make_graphchi_twitter(),
            policy=make_policy(policy_name),
            reservations={
                NodeTier.FAST: TierReservation(1 * GIB_PAGES, 1 * GIB_PAGES),
                NodeTier.SLOW: TierReservation(4 * GIB_PAGES, 7 * GIB_PAGES),
            },
        ),
        VmSpec(
            name="metis-vm",
            workload=make_metis_big(),
            policy=make_policy(policy_name),
            reservations={
                NodeTier.FAST: TierReservation(3 * GIB_PAGES, 3 * GIB_PAGES),
                NodeTier.SLOW: TierReservation(4 * GIB_PAGES, 7 * GIB_PAGES),
            },
        ),
    ]


def _multi_vm_run(
    policy_name: str, sharing: SharingPolicy, epochs: int
) -> dict[str, RunResult]:
    sim = MultiVmSimulation(
        fig13_devices(), fig13_vmspecs(policy_name), sharing_policy=sharing
    )
    return sim.run(epochs)


def _single_vm_baselines(epochs: int) -> dict[str, RunResult]:
    """Each VM alone with the whole machine (the figure's stars)."""
    results = {}
    for name, workload in (
        ("graphchi-vm", make_graphchi_twitter()),
        ("metis-vm", make_metis_big()),
    ):
        config = build_config(fast_ratio=0.5, slow_gib=8.0)
        engine = SimulationEngine(
            config, workload, make_policy("hetero-coordinated")
        )
        results[name] = engine.run(epochs)
    return results


def run_fig13(epochs: int = 160) -> list[dict]:
    """Gains (%) over the multi-VM SlowMem-only floor per approach."""
    scenarios = {
        "vmm-exclusive(max-min)": _multi_vm_run(
            "vmm-exclusive", MaxMinSharing(), epochs
        ),
        "coordinated(max-min)": _multi_vm_run(
            "hetero-coordinated", MaxMinSharing(), epochs
        ),
        "coordinated(weighted-drf)": _multi_vm_run(
            "hetero-coordinated", WeightedDrf(), epochs
        ),
    }
    floor = _multi_vm_run("slowmem-only", MaxMinSharing(), epochs)
    singles = _single_vm_baselines(epochs)
    rows = []
    for vm_name in ("graphchi-vm", "metis-vm"):
        row: dict = {"vm": vm_name}
        base_ns = floor[vm_name].stats.runtime_ns
        for scenario, results in scenarios.items():
            row[scenario] = (
                base_ns / results[vm_name].stats.runtime_ns - 1.0
            ) * 100.0
        row["single-vm-coordinated"] = (
            base_ns / singles[vm_name].stats.runtime_ns - 1.0
        ) * 100.0
        rows.append(row)
    # System-wide completion time (the "overall system performance"
    # comparison in Section 5.5).
    total_row: dict = {"vm": "TOTAL-runtime-sec"}
    for scenario, results in scenarios.items():
        total_row[scenario] = sum(
            r.runtime_sec for r in results.values()
        )
    total_row["single-vm-coordinated"] = sum(
        r.runtime_sec for r in singles.values()
    )
    rows.append(total_row)
    return rows
