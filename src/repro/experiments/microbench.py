"""Figures 6 and 7: memlat and Stream microbenchmarks.

Platform per Section 5.2: FastMem limited to 0.5 GB, SlowMem 3.5 GB.
The five approaches compared are Random, Heap-OD, FastMem-only,
VMM-exclusive, and SlowMem-only.
"""

from __future__ import annotations

from repro.sim.runner import build_config, run_experiment
from repro.sim.stats import RunResult
from repro.workloads.microbench import make_memlat, make_stream

#: Section 5.2's approach list.
MICRO_POLICIES: tuple[str, ...] = (
    "random",
    "heap-od",
    "fastmem-only",
    "vmm-exclusive",
    "slowmem-only",
)

#: LLC-hit base latency added to the derived memory latency (cycles).
BASE_HIT_CYCLES = 30.0


def _average_latency_cycles(result: RunResult, frequency_ghz: float) -> float:
    """Average per-access latency in cycles, derived from stall time."""
    accesses = result.stats.total_accesses
    if accesses <= 0:
        return 0.0
    stall_per_access_ns = result.stats.total_stall_ns / accesses
    return BASE_HIT_CYCLES + stall_per_access_ns * frequency_ghz


def _bandwidth_gbps(result: RunResult) -> float:
    """Achieved memory bandwidth: traffic over run time."""
    if result.stats.runtime_ns <= 0:
        return 0.0
    return result.stats.traffic_bytes / result.stats.runtime_ns


def _micro_config(fast_gib: float = 0.5, slow_gib: float = 3.5, seed: int = 7):
    return build_config(
        fast_ratio=fast_gib / slow_gib, slow_gib=slow_gib, seed=seed
    )


def run_fig6(
    wss_gib: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0, 1.5, 2.0),
    policies: tuple[str, ...] = MICRO_POLICIES,
    epochs: int = 30,
) -> list[dict]:
    """Figure 6: memlat average latency (cycles) vs. working-set size."""
    rows = []
    for wss in wss_gib:
        row: dict = {"wss_gib": wss}
        for policy in policies:
            config = _micro_config()
            if policy == "fastmem-only":
                config = build_config(
                    fast_ratio=1.0, slow_gib=3.5, unlimited_fast=True
                )
            result = run_experiment(
                make_memlat(wss), policy, epochs=epochs, config=config
            )
            row[policy] = _average_latency_cycles(
                result, config.cpu.frequency_ghz
            )
        rows.append(row)
    return rows


def run_fig7(
    wss_gib: tuple[float, ...] = (0.5, 1.5),
    policies: tuple[str, ...] = MICRO_POLICIES,
    epochs: int = 30,
) -> list[dict]:
    """Figure 7: Stream bandwidth (GB/s) vs. working-set size."""
    rows = []
    for wss in wss_gib:
        row: dict = {"wss_gib": wss}
        for policy in policies:
            config = _micro_config()
            if policy == "fastmem-only":
                config = build_config(
                    fast_ratio=1.0, slow_gib=3.5, unlimited_fast=True
                )
            result = run_experiment(
                make_stream(wss), policy, epochs=epochs, config=config
            )
            row[policy] = _bandwidth_gbps(result)
        rows.append(row)
    return rows
