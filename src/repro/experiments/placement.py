"""Figures 9 and 10: guest-OS memory placement effectiveness.

* Figure 9 — % gains relative to SlowMem-only for Heap-OD,
  Heap-IO-Slab-OD, HeteroOS-LRU, and NUMA-preferred across FastMem
  ratios 1/2, 1/4, 1/8, with the FastMem-only ceiling.
* Figure 10 — whole-run FastMem allocation miss ratio at the 1/8 ratio.

NGinx is excluded as in the paper (<10% heterogeneity impact).
"""

from __future__ import annotations

from repro.sim.parallel import ExperimentSpec, clear_memo, make_spec, run_cached
from repro.sim.stats import RunResult, gain_percent
from repro.workloads.registry import PLACEMENT_APPS

#: Figure 9's policy series, in legend order.
FIG9_POLICIES: tuple[str, ...] = (
    "heap-od",
    "heap-io-slab-od",
    "hetero-lru",
    "numa-preferred",
)

FIG9_RATIOS: tuple[float, ...] = (1 / 2, 1 / 4, 1 / 8)


def fig9_grid_specs(
    apps: tuple[str, ...] = PLACEMENT_APPS,
    ratios: tuple[float, ...] = FIG9_RATIOS,
    policies: tuple[str, ...] = FIG9_POLICIES,
    epochs: int | None = None,
) -> list[ExperimentSpec]:
    """Figure 9's full grid (baselines included) as hashable specs.

    This is the same set of runs :func:`run_fig9` performs, expressed
    for :func:`repro.sim.parallel.run_specs` — the benchmark harness
    fans it out across workers and the result cache; the spec fields
    match :func:`_cached_run`'s calls exactly, so both paths share
    cache keys.
    """
    specs = []
    for app in apps:
        specs.append(make_spec(app, "slowmem-only", fast_ratio=1 / 4,
                               epochs=epochs))
        specs.append(make_spec(app, "fastmem-only", fast_ratio=1 / 4,
                               epochs=epochs))
        for ratio in ratios:
            for policy in policies:
                specs.append(
                    make_spec(app, policy, fast_ratio=ratio, epochs=epochs)
                )
    return specs


def _cached_run(
    app: str, policy: str, ratio: float, epochs: int | None
) -> RunResult:
    """One grid point through the shared process-wide memo, so Figure 10
    reuses Figure 9's runs (and any other driver's matching points)."""
    return run_cached(app, policy, fast_ratio=ratio, epochs=epochs)


def run_fig9(
    apps: tuple[str, ...] = PLACEMENT_APPS,
    ratios: tuple[float, ...] = FIG9_RATIOS,
    policies: tuple[str, ...] = FIG9_POLICIES,
    epochs: int | None = None,
) -> list[dict]:
    """Gains (%) over SlowMem-only per (app, ratio, policy)."""
    rows = []
    for app in apps:
        slow = _cached_run(app, "slowmem-only", 1 / 4, epochs)
        fast = _cached_run(app, "fastmem-only", 1 / 4, epochs)
        for ratio in ratios:
            row: dict = {"app": app, "ratio": f"1/{round(1 / ratio)}"}
            for policy in policies:
                result = _cached_run(app, policy, ratio, epochs)
                row[policy] = gain_percent(result, slow)
            row["fastmem-only"] = gain_percent(fast, slow)
            rows.append(row)
    return rows


def run_fig10(
    apps: tuple[str, ...] = PLACEMENT_APPS,
    ratio: float = 1 / 8,
    policies: tuple[str, ...] = FIG9_POLICIES,
    epochs: int | None = None,
) -> list[dict]:
    """FastMem allocation miss ratio at the 1/8 capacity ratio."""
    rows = []
    for app in apps:
        row: dict = {"app": app}
        for policy in policies:
            result = _cached_run(app, policy, ratio, epochs)
            row[policy] = result.fastmem_miss_ratio()
        rows.append(row)
    return rows


def clear_cache() -> None:
    """Drop memoized runs (used between benchmark sessions)."""
    clear_memo()
