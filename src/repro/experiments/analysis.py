"""Run-result analysis helpers.

:func:`time_breakdown` decomposes a run's virtual time into the
components the paper reasons about (compute, I/O wait, per-device
memory stalls, management overheads); :func:`allocation_breakdown`
tabulates the per-subsystem FastMem statistics of Section 3.2.  Both
return rows ready for :func:`repro.experiments.report.format_table`.
"""

from __future__ import annotations

from repro.sim.stats import RunResult


def time_breakdown(result: RunResult) -> list[dict]:
    """Where the run's virtual time went, as fractions of runtime."""
    runtime = result.stats.runtime_ns
    if runtime <= 0:
        return []
    rows = [
        {"component": "cpu", "seconds": result.stats.cpu_ns / 1e9},
        {"component": "io-wait", "seconds": result.stats.io_wait_ns / 1e9},
    ]
    for device, stall_ns in sorted(result.stats.stall_ns_by_device.items()):
        rows.append(
            {"component": f"stall:{device}", "seconds": stall_ns / 1e9}
        )
    rows.append(
        {
            "component": "management",
            "seconds": (
                result.stats.policy_overhead_ns
                + result.stats.kernel_cost_ns
            )
            / 1e9,
        }
    )
    for row in rows:
        row["fraction"] = row["seconds"] * 1e9 / runtime
    return rows


def allocation_breakdown(result: RunResult) -> list[dict]:
    """Per-subsystem allocation requests, FastMem hits, and miss ratio."""
    rows = []
    for page_type, stats in sorted(
        result.alloc_stats.items(), key=lambda item: item[0].value
    ):
        if stats.requested_pages == 0:
            continue
        rows.append(
            {
                "subsystem": page_type.value,
                "requested_pages": stats.requested_pages,
                "fastmem_pages": stats.fast_granted_pages,
                "miss_ratio": stats.miss_ratio,
            }
        )
    return rows


def summarize(result: RunResult) -> list[dict]:
    """One-row headline summary."""
    return [
        {
            "workload": result.workload_name,
            "policy": result.policy_name,
            "runtime_sec": result.runtime_sec,
            "metric": result.metric_value,
            "mpki": result.mpki,
            "fastmem_miss_ratio": result.fastmem_miss_ratio(),
            "pages_migrated": result.pages_migrated,
            "pages_demoted": result.pages_demoted,
        }
    ]
