"""Figures 1-3 and Table 4: latency/bandwidth/capacity sensitivity.

* Figure 1 — slowdown of each application vs. FastMem-only as SlowMem is
  throttled through the (L, B) sweep, plus the remote-NUMA comparison bar
  (16 MB LLC platform).
* Figure 2 — the same sweep on the Intel NVM emulator platform (48 MB
  LLC), where the larger cache lowers every slowdown.
* Figure 3 — slowdown vs. FastMem:SlowMem capacity ratio at L:5,B:9.
* Table 4 — application MPKI measured on the FastMem-only platform.
"""

from __future__ import annotations

from repro.hw.throttle import FIGURE1_SWEEP, ThrottleConfig
from repro.sim.parallel import run_cached
from repro.sim.stats import slowdown_factor
from repro.workloads.registry import ALL_APPS


def run_table4(apps: tuple[str, ...] = ALL_APPS, epochs: int = 60) -> list[dict]:
    """Table 4: MPKI per application (16 MB LLC, all-FastMem)."""
    rows = []
    for app in apps:
        result = run_cached(app, "fastmem-only", epochs=epochs)
        rows.append({"app": app, "mpki": result.mpki})
    return rows


def run_fig1(
    apps: tuple[str, ...] = ALL_APPS,
    llc_mib: int = 16,
    epochs: int = 60,
    include_remote_numa: bool = True,
    sweep: tuple[ThrottleConfig, ...] = FIGURE1_SWEEP,
) -> list[dict]:
    """Figures 1/2: slowdown relative to FastMem-only per throttle setting.

    Every configuration runs the whole application exclusively on the
    (throttled) SlowMem — the paper's methodology for isolating the
    device's latency/bandwidth effect.
    """
    rows = []
    for app in apps:
        fast = run_cached(app, "fastmem-only", llc_mib=llc_mib, epochs=epochs)
        row: dict = {"app": app}
        for config in sweep:
            slow = run_cached(
                app, "slowmem-only", throttle=config, llc_mib=llc_mib,
                epochs=epochs,
            )
            row[config.label] = slowdown_factor(slow, fast)
        if include_remote_numa:
            remote = run_cached(
                app,
                "slowmem-only",
                slow_device="remote-dram",
                llc_mib=llc_mib,
                epochs=epochs,
            )
            row["remote-numa"] = slowdown_factor(remote, fast)
        rows.append(row)
    return rows


def run_fig2(
    apps: tuple[str, ...] = ALL_APPS, epochs: int = 60
) -> list[dict]:
    """Figure 2: the sensitivity sweep on the 48 MB-LLC NVM emulator."""
    return run_fig1(
        apps=apps, llc_mib=48, epochs=epochs, include_remote_numa=False
    )


def run_fig3(
    apps: tuple[str, ...] = ALL_APPS,
    ratios: tuple[float, ...] = (1 / 2, 1 / 4, 1 / 8, 1 / 16, 1 / 32),
    epochs: int = 60,
) -> list[dict]:
    """Figure 3: FastMem capacity impact at L:5,B:9.

    Uses the heterogeneity-aware on-demand placement (Heap-IO-Slab-OD) so
    the FastMem that exists is actually used — the paper's point is how
    much capacity matters *given* sensible placement.
    """
    rows = []
    for app in apps:
        fast = run_cached(app, "fastmem-only", epochs=epochs)
        row: dict = {"app": app}
        for ratio in ratios:
            result = run_cached(
                app, "heap-io-slab-od", fast_ratio=ratio, epochs=epochs
            )
            row[f"1/{round(1 / ratio)}"] = slowdown_factor(result, fast)
        rows.append(row)
    return rows
