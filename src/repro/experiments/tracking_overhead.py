"""Figure 8: VMM-exclusive hotness-tracking + migration cost.

Section 5.2: HeteroVisor's tracking enabled for GraphChi, scanning 32K
pages per interval, intervals swept 100 ms - 500 ms, *without* SlowMem
emulation ("we do not emulate NVM bandwidth and latency ... our goal is
to understand the software overheads").  The y-axis is the runtime
overhead relative to the untracked run; the bar labels are the pages
migrated (millions).

The paper's HeteroVisor classifies hotness from raw access bits with no
density filtering or observation history, which is why it migrates
millions of pages; the sweep here configures the tracker the same way.

Every configuration — tracker parameters included — is expressed as an
:class:`~repro.sim.parallel.ExperimentSpec` (``policy_args`` carry the
scan/migrate knobs, ``hotness`` the tracker config), so the sweep's runs
memoize and cache like any other grid point; the scan/migration costs
are read back from the :class:`~repro.sim.stats.RunResult`.
"""

from __future__ import annotations

from repro.hw.throttle import ThrottleConfig
from repro.sim.parallel import run_cached
from repro.vmm.hotness import HotnessConfig

#: HeteroVisor-faithful tracker: hair-trigger classification and the full
#: virtualized scan cost (validity checks + forced TLB invalidations make
#: tracking "even more expensive compared to the migrations", §5.2).
HETEROVISOR_TRACKER = HotnessConfig(
    scan_batch_pages=32 * 1024,
    per_pte_scan_ns=4000.0,
    hot_density=1.0,
    min_observations=1,
)

#: HeteroVisor's per-interval page-move rate: a few thousand pages per
#: 100 ms interval, far below the scan batch, which is why the paper
#: finds tracking costlier than migration.
_MIGRATE_BUDGET_PAGES = 2048


def run_fig8(
    app: str = "graphchi",
    interval_epochs: tuple[int, ...] = (1, 2, 3, 4, 5),
    epochs: int = 160,
) -> list[dict]:
    """Overhead (%) and pages migrated vs. scan interval (1 epoch=100ms)."""
    # No SlowMem emulation: both tiers are plain DRAM (L:1,B:1).
    no_emulation = ThrottleConfig(1, 1)
    baseline = run_cached(
        app, "slowmem-only", fast_ratio=0.25, throttle=no_emulation,
        epochs=epochs,
    )
    rows = []
    for interval in interval_epochs:
        result = run_cached(
            app,
            "vmm-exclusive",
            fast_ratio=0.25,
            throttle=no_emulation,
            epochs=epochs,
            policy_args={
                "scan_interval_epochs": interval,
                "scan_batch_pages": HETEROVISOR_TRACKER.scan_batch_pages,
                "migrate_budget_pages": _MIGRATE_BUDGET_PAGES,
            },
            hotness=HETEROVISOR_TRACKER,
        )
        tracked_cost_ns = result.scan_cost_ns + result.migration_cost_ns
        rows.append(
            {
                "interval_ms": interval * 100,
                "tracking_overhead_pct": (
                    100.0 * result.scan_cost_ns / baseline.stats.runtime_ns
                ),
                "migration_overhead_pct": (
                    100.0
                    * result.migration_cost_ns
                    / baseline.stats.runtime_ns
                ),
                "total_overhead_pct": (
                    100.0 * tracked_cost_ns / baseline.stats.runtime_ns
                ),
                "pages_migrated_millions": result.pages_migrated / 1e6,
            }
        )
    return rows
