"""HeteroOS reproduction — heterogeneous memory management simulation.

A trace-driven reproduction of *HeteroOS: OS Design for Heterogeneous
Memory Management in Datacenter* (Kannan et al., ISCA 2017): guest-OS
heterogeneity awareness, demand-based FastMem prioritization, HeteroOS-
LRU, guest/VMM coordinated hotness tracking and migration, and weighted
DRF sharing across VMs — together with every substrate they run on
(buddy allocator, NUMA nodes, per-CPU lists, slab, page cache, LRU,
ballooning, hotness scanning, migration engine) and models of the six
datacenter applications the paper evaluates.

Quickstart::

    from repro import run_experiment, gain_percent

    slow = run_experiment("graphchi", "slowmem-only", fast_ratio=0.25)
    het = run_experiment("graphchi", "hetero-lru", fast_ratio=0.25)
    print(f"HeteroOS-LRU gain: {gain_percent(het, slow):.0f}%")
"""

from repro.config import SimConfig
from repro.core import available_policies, make_policy
from repro.sim import (
    MultiVmSimulation,
    RunResult,
    SimulationEngine,
    VmSpec,
    gain_percent,
    run_experiment,
    slowdown_factor,
)
from repro.sim.runner import build_config
from repro.workloads import available_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "build_config",
    "run_experiment",
    "gain_percent",
    "slowdown_factor",
    "RunResult",
    "SimulationEngine",
    "MultiVmSimulation",
    "VmSpec",
    "make_policy",
    "available_policies",
    "make_workload",
    "available_workloads",
    "__version__",
]
