"""Command-line interface.

Usage::

    python -m repro list                     # apps and policies
    python -m repro run graphchi hetero-lru --ratio 0.25
    python -m repro compare graphchi --ratio 0.25
    python -m repro figure fig9              # any table/figure driver
    python -m repro figure all               # regenerate everything
    python -m repro lint src/repro           # heterolint static analysis
    python -m repro sanitize-check           # frame-sanitizer smoke run
    python -m repro sweep --workers 4 --cache-dir .sweep-cache \
        --apps graphchi redis --policies hetero-lru heap-od
    python -m repro sweep --live --metrics sweep.metrics.json \
        --trace-sweep sweep.trace.json   # flight-recorder artifacts
    python -m repro report --cache-dir .sweep-cache \
        --metrics sweep.metrics.json     # post-hoc sweep summary

The ``figure`` subcommand accepts ``table1 table3 table4 table5 table6
fig1 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13`` or
``all``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro import (
    available_policies,
    available_workloads,
    gain_percent,
    run_experiment,
)
from repro.experiments import report
from repro import experiments


def _figure_drivers() -> dict[str, Callable[[], list[dict]]]:
    names = [
        "table1", "table3", "table4", "table5", "table6",
        "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12", "fig13",
    ]
    return {name: getattr(experiments, f"run_{name}") for name in names}


def cmd_list(_args: argparse.Namespace) -> int:
    print("applications:")
    for app in available_workloads():
        print(f"  {app}")
    print("policies:")
    for policy in available_policies():
        print(f"  {policy}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    faults = None
    if args.faults is not None:
        import json as json_module

        from repro.errors import ConfigurationError
        from repro.faults import FaultPlan

        try:
            with open(args.faults, "r", encoding="utf-8") as handle:
                faults = FaultPlan.from_dict(json_module.load(handle))
        except (OSError, ValueError, ConfigurationError) as exc:
            print(f"repro run: bad fault plan {args.faults}: {exc}",
                  file=sys.stderr)
            return 1
    result = run_experiment(
        args.app,
        args.policy,
        fast_ratio=args.ratio,
        epochs=args.epochs,
        throttle=(args.latency_factor, args.bandwidth_factor),
        llc_mib=args.llc_mib,
        faults=faults,
    )
    print(f"workload : {result.workload_name}")
    print(f"policy   : {result.policy_name}")
    print(f"runtime  : {result.runtime_sec:.3f} s ({result.stats.epochs} epochs)")
    if result.metric != "seconds":
        print(f"metric   : {result.metric_value:,.0f} {result.metric}")
    print(f"mpki     : {result.mpki:.2f}")
    print(f"fastmem allocation miss ratio: {result.fastmem_miss_ratio():.2f}")
    if result.pages_migrated or result.pages_demoted:
        print(
            f"migrated : {result.pages_migrated} pages "
            f"(demoted {result.pages_demoted})"
        )
    if result.fault_counts:
        fired = ", ".join(
            f"{kind}={count}" for kind, count in result.fault_counts.items()
        )
        print(f"faults   : {fired}")
    if args.breakdown:
        from repro.experiments.analysis import (
            allocation_breakdown,
            time_breakdown,
        )

        print()
        print(report.format_table(time_breakdown(result), title="time"))
        print()
        print(
            report.format_table(
                allocation_breakdown(result), title="allocations"
            )
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = run_experiment(
        args.app, "slowmem-only", fast_ratio=args.ratio, epochs=args.epochs
    )
    rows = []
    for policy in available_policies():
        result = (
            baseline
            if policy == "slowmem-only"
            else run_experiment(
                args.app, policy, fast_ratio=args.ratio, epochs=args.epochs
            )
        )
        rows.append(
            {
                "policy": policy,
                "runtime_sec": result.runtime_sec,
                "gain_pct": gain_percent(result, baseline),
            }
        )
    rows.sort(key=lambda row: row["runtime_sec"])
    print(report.format_table(rows, title=f"{args.app} @ ratio {args.ratio}"))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    drivers = _figure_drivers()
    targets = list(drivers) if args.name == "all" else [args.name]
    unknown = [t for t in targets if t not in drivers]
    if unknown:
        print(
            f"unknown figure(s): {unknown}; choose from "
            f"{sorted(drivers)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for target in targets:
        rows = drivers[target]()
        print(report.format_table(rows, title=target))
        print()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.flow import (
        DEFAULT_BASELINE,
        Baseline,
        combined_rule_metadata,
        deep_lint_paths,
        deep_rule_metadata,
        sarif_json,
    )
    from repro.devtools.lint import all_rules, lint_paths
    from repro.errors import LintError

    if args.list_rules:
        from repro.devtools.contract import contract_rule_metadata
        from repro.devtools.effect import effect_rule_metadata

        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}: {rule_cls.rationale}")
        for rule_id, rationale in sorted(deep_rule_metadata().items()):
            print(f"{rule_id} [deep]: {rationale}")
        for rule_id, rationale in sorted(effect_rule_metadata().items()):
            print(f"{rule_id} [effects]: {rationale}")
        for rule_id, rationale in sorted(contract_rule_metadata().items()):
            print(f"{rule_id} [contracts]: {rationale}")
        return 0
    rule_ids = args.rules.split(",") if args.rules else None
    changed = None
    if args.changed:
        from repro.devtools.flow import changed_python_files

        if args.write_baseline:
            print(
                "repro lint: --changed and --write-baseline conflict "
                "(a scoped run would drop baseline entries)",
                file=sys.stderr,
            )
            return 2
        changed = changed_python_files(args.paths)
        if changed is None:
            print(
                "repro lint: --changed needs a git work tree",
                file=sys.stderr,
            )
            return 2
        if not changed:
            print("no changed Python files under the requested paths")
            return 0
    try:
        if args.deep or args.effects or args.contracts:
            baseline = None
            baseline_path = args.baseline
            if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
                baseline_path = DEFAULT_BASELINE
            if baseline_path is not None and not args.write_baseline:
                baseline = Baseline.load(baseline_path)
            # Deep analyses are whole-program: even under --changed the
            # full tree is parsed (cache-warm), then findings are scoped
            # to the changed files' reverse call-graph closure.
            report, index = deep_lint_paths(
                args.paths,
                rule_ids=rule_ids,
                baseline=baseline,
                cache_dir=args.cache_dir,
                include_deep=args.deep,
                include_effects=args.effects,
                include_contracts=args.contracts,
            )
            if changed is not None:
                from repro.devtools.flow import scope_to_changed

                report = scope_to_changed(report, index, changed)
            if args.write_baseline:
                target = args.baseline or DEFAULT_BASELINE
                Baseline.from_findings(report.findings).save(target)
                print(
                    f"wrote {len(report.findings)} entr"
                    f"{'y' if len(report.findings) == 1 else 'ies'} to "
                    f"{target} (fill in the justifications)"
                )
                return 0
        elif changed is not None:
            report = lint_paths(
                sorted(str(path) for path in changed), rule_ids=rule_ids
            )
        else:
            report = lint_paths(args.paths, rule_ids=rule_ids)
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(sarif_json(report, combined_rule_metadata()))
    else:
        print(report.format_human())
    return 0 if report.clean else 1


def cmd_certify(args: argparse.Namespace) -> int:
    from repro.devtools.effect import (
        cached_effect_analysis,
        compute_ledger,
        diff_ledgers,
        ledger_json,
    )
    from repro.devtools.flow import ProjectIndex, _parse_all
    from repro.errors import LintError

    import json as json_module

    files, contexts = _parse_all(args.paths, args.cache_dir)
    index = ProjectIndex.build(args.paths, contexts=contexts)
    try:
        ledger = compute_ledger(
            index, cached_effect_analysis(index, args.cache_dir)
        )
    except LintError as exc:
        print(f"repro certify: {exc}", file=sys.stderr)
        return 2
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                committed = json_module.load(handle)
        except (OSError, ValueError) as exc:
            print(
                f"repro certify: cannot read committed ledger "
                f"{args.out}: {exc}",
                file=sys.stderr,
            )
            return 2
        problems = diff_ledgers(committed, ledger)
        certified = sorted(
            name
            for name, phase in ledger["phases"].items()
            if phase["certified"]
        )
        if problems:
            print(f"repro certify: {args.out} is stale:")
            for problem in problems:
                print(f"  {problem}")
            print("re-run `repro certify` and review the diff")
            return 1
        print(
            f"ledger {args.out} matches ({len(files)} files; certified "
            f"phases: {', '.join(certified) or 'none'})"
        )
        return 0
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(ledger_json(ledger))
    for name in sorted(ledger["phases"]):
        phase = ledger["phases"][name]
        status = (
            "certified"
            if phase["certified"]
            else f"{len(phase['violations'])} violation(s)"
        )
        print(f"{name:<8} {status}")
    print(f"wrote {args.out}")
    return 0


def cmd_sanitize_check(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.sim.runner import build_config, run_experiment

    config = build_config(
        fast_ratio=args.ratio, slow_gib=args.slow_gib, seed=args.seed
    )
    config.sanitize = True
    result = run_experiment(
        args.app, args.policy, epochs=args.epochs, config=config
    )
    reports = result.sanitizer_reports
    if args.format == "json":
        print(
            json_module.dumps(
                {
                    "app": args.app,
                    "policy": args.policy,
                    "epochs": result.stats.epochs,
                    "violations": [report.to_dict() for report in reports],
                },
                indent=2,
            )
        )
    else:
        for report in reports:
            print(report.format())
        print(
            f"frame sanitizer: {len(reports)} violation(s) over "
            f"{result.stats.epochs} epochs of {args.app}/{args.policy}"
        )
    return 0 if not reports else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import (
        ChromeTraceSink,
        JsonlSink,
        PhaseProfiler,
        Telemetry,
        TimelineSink,
    )

    out_path = Path(args.out)
    jsonl_path = (
        Path(args.jsonl) if args.jsonl else out_path.with_suffix(".jsonl")
    )
    profiler = PhaseProfiler() if not args.no_profile else None
    telemetry = Telemetry(
        sinks=[
            TimelineSink(),
            JsonlSink(jsonl_path),
            ChromeTraceSink(out_path),
        ],
        profiler=profiler,
    )
    result = run_experiment(
        args.app,
        args.policy,
        fast_ratio=args.ratio,
        epochs=args.epochs,
        seed=args.seed,
        telemetry=telemetry,
    )
    epochs = result.stats.epochs
    print(
        f"traced {args.app}/{args.policy}: {epochs} epochs, "
        f"{result.runtime_sec:.3f}s virtual"
    )
    print(f"chrome trace : {out_path}  (open in ui.perfetto.dev)")
    print(f"jsonl        : {jsonl_path}")
    if profiler is not None and profiler.total_seconds > 0:
        print("host profile :")
        for phase, entry in profiler.report().items():
            share = entry["seconds"] / profiler.total_seconds * 100.0
            print(
                f"  {phase:<8} {entry['seconds'] * 1e3:8.2f} ms "
                f"({share:4.1f}%) over {entry['calls']} call(s)"
            )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import diff_timelines, load_timeline

    if args.diff:
        path_a, path_b = args.diff
        _, samples_a, _ = load_timeline(path_a)
        _, samples_b, _ = load_timeline(path_b)
        diff = diff_timelines(samples_a, samples_b)
        print(diff.describe())
        return 0 if diff.identical else 1
    if not args.path:
        print(
            "repro timeline: give a timeline file or --diff A B",
            file=sys.stderr,
        )
        return 2
    header, samples, summary = load_timeline(args.path)
    label = "{}/{}".format(
        header.get("workload", "?"), header.get("policy", "?")
    )
    print(f"{label}: {len(samples)} epochs")
    for sample in samples:
        print(
            f"  epoch {sample.epoch:>4}: runtime {sample.runtime_ns:14.0f} ns"
            f"  mpki {sample.mpki:7.2f}  stall {sample.stall_ns:14.0f} ns"
            f"  migrated {sample.pages_migrated:>8}"
        )
    if summary:
        print(
            f"summary: runtime {summary.get('runtime_ns', 0):,.0f} ns, "
            f"mpki {summary.get('mpki', 0):.2f}"
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import SweepError
    from repro.experiments.sweep import sweep
    from repro.sim import parallel

    cache = None
    if not args.no_cache:
        cache = (
            parallel.ResultCache(args.cache_dir)
            if args.cache_dir
            else parallel.default_cache()
        )

    journal = None
    if cache is not None:
        journal = parallel.SweepJournal(
            cache.directory / "sweep-journal.jsonl"
        )
        if not args.resume:
            journal.reset()
    elif args.resume:
        print(
            "repro sweep: --resume needs a journal, which lives in the "
            "result cache directory; configure --cache-dir (or "
            "$REPRO_SWEEP_CACHE_DIR) and drop --no-cache",
            file=sys.stderr,
        )
        return 1

    recorder = None
    if args.metrics or args.trace_sweep or args.live:
        from repro.obs.flight import SweepRecorder

        recorder = SweepRecorder()

    # --live needs a TTY to repaint in place; without one it degrades
    # to the normal per-spec progress lines (still recorded).
    live = args.live and sys.stderr.isatty()
    live_lines = 0

    def progress(outcome, done, total):
        nonlocal live_lines
        if live and recorder is not None:
            from repro.obs.flight import format_live_status

            screen = format_live_status(recorder.status())
            if live_lines:
                # Cursor up over the previous frame, then clear it.
                sys.stderr.write(f"\x1b[{live_lines}F\x1b[J")
            sys.stderr.write(screen + "\n")
            sys.stderr.flush()
            live_lines = screen.count("\n") + 1
            return
        status = (
            "ok" if outcome.ok else f"{outcome.error.kind}!"
        )
        print(
            f"[{done}/{total}] {outcome.spec.label:<44} "
            f"{outcome.source:<8} {outcome.elapsed_sec:6.2f}s  {status}",
            file=sys.stderr,
        )

    want_progress = not args.quiet or live
    exit_code = 0
    rows = None
    try:
        rows = sweep(
            apps=tuple(args.apps) if args.apps else tuple(available_workloads()),
            policies=tuple(args.policies),
            ratios=tuple(args.ratios),
            epochs=args.epochs,
            max_workers=args.workers,
            cache=cache,
            timeout_sec=args.timeout,
            progress=progress if want_progress else None,
            retries=args.retries,
            retry_backoff_sec=args.retry_backoff,
            retry_jitter=args.retry_jitter,
            journal=journal,
            recorder=recorder,
        )
    except SweepError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        # Flight-recorder artifacts survive a failed sweep — that is
        # when they are most useful.
        if recorder is not None:
            if args.metrics:
                recorder.write_metrics(args.metrics)
            if args.trace_sweep:
                recorder.write_chrome_trace(args.trace_sweep)
    if recorder is not None and not args.quiet:
        from repro.obs.flight import format_live_status

        print(format_live_status(recorder.status()), file=sys.stderr)
        if args.metrics:
            print(f"metrics      : {args.metrics}", file=sys.stderr)
        if args.trace_sweep:
            print(
                f"sweep trace  : {args.trace_sweep}  "
                "(open in ui.perfetto.dev)",
                file=sys.stderr,
            )
    if exit_code != 0:
        return exit_code
    if cache is not None and not args.quiet:
        print(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"in {cache.directory}",
            file=sys.stderr,
        )
    print(report.format_table(rows, title="sweep"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve import ExperimentServer, ServeConfig
    from repro.sim import parallel

    root = args.cache_dir or os.environ.get(parallel.CACHE_DIR_ENV)
    if not root:
        print(
            "repro serve: give --cache-dir (or set "
            "$REPRO_SWEEP_CACHE_DIR); the daemon's job journal, sweep "
            "journal, and result cache all live there",
            file=sys.stderr,
        )
        return 2
    config = ServeConfig(
        root=root,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        workers=args.workers,
        timeout_sec=args.timeout,
        retries=args.retries,
        max_crashes=args.max_crashes,
        queue_limit=args.queue_limit,
        client_limit=args.client_limit,
    )
    server = ExperimentServer(config)
    try:
        server.start()
    except (ServeError, OSError) as exc:
        print(f"repro serve: cannot start: {exc}", file=sys.stderr)
        return 1
    server.install_signal_handlers()
    recovered = server.store.counts()
    scheme = "unix:" if args.unix_socket else "http://"
    print(
        f"repro serve: listening on {scheme}{server.address} "
        f"(root {root}, {config.workers} worker(s), mode "
        f"{server.supervisor.mode})",
        file=sys.stderr,
    )
    if recovered.get("queued"):
        print(
            f"repro serve: recovered {recovered['queued']} unfinished "
            "job(s) from the journal",
            file=sys.stderr,
        )
    # Block until SIGTERM/SIGINT drains the daemon; the scheduler
    # thread calls stop() once in-flight work has finished.
    while not server.wait(timeout_sec=1.0):
        pass
    print("repro serve: drained, exiting", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.flight import reconstruct_report
    from repro.sim import parallel

    journal_path = args.journal
    if journal_path is None:
        cache_dir = args.cache_dir or os.environ.get(parallel.CACHE_DIR_ENV)
        if not cache_dir:
            print(
                "repro report: give --journal PATH or a cache directory "
                "(--cache-dir / $REPRO_SWEEP_CACHE_DIR) that holds "
                "sweep-journal.jsonl",
                file=sys.stderr,
            )
            return 2
        journal_path = os.path.join(cache_dir, "sweep-journal.jsonl")
    if not os.path.exists(journal_path):
        print(
            f"repro report: no journal at {journal_path} "
            "(run a sweep with a cache directory first)",
            file=sys.stderr,
        )
        return 1
    journal = parallel.SweepJournal(journal_path)
    entries = journal.load()
    metrics_snapshot = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                metrics_snapshot = json_module.load(handle)
        except (OSError, ValueError) as exc:
            print(
                f"repro report: cannot read metrics snapshot "
                f"{args.metrics}: {exc}",
                file=sys.stderr,
            )
            return 1
    summary = reconstruct_report(entries, metrics_snapshot)
    if args.format == "json":
        print(json_module.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"sweep report ({journal_path})")
    statuses = summary["statuses"]
    rendered = ", ".join(f"{k}={v}" for k, v in statuses.items()) or "none"
    print(f"  specs    : {summary['specs']} ({rendered})")
    if summary["sources"]:
        rendered = ", ".join(
            f"{k}={v}" for k, v in summary["sources"].items()
        )
        print(f"  sources  : {rendered}")
    if summary["failures_by_kind"]:
        rendered = ", ".join(
            f"{k}={v}" for k, v in summary["failures_by_kind"].items()
        )
        print(f"  failures : {rendered}")
    print(f"  executed : {summary['executed_wall_sec']:.2f}s host wall-clock")
    if journal.corrupt_lines_skipped:
        print(
            f"  journal  : {journal.corrupt_lines_skipped} corrupt "
            "line(s) skipped"
        )
    if summary["slowest"]:
        print("  slowest  :")
        for item in summary["slowest"]:
            print(f"    {item['elapsed_sec']:8.2f}s  {item['label']}")
    cache_summary = summary.get("cache")
    if cache_summary:
        hit_rate = cache_summary.get("hit_rate")
        rate_text = (
            f"{hit_rate * 100:.1f}%" if hit_rate is not None else "n/a"
        )
        print(
            f"  cache    : {cache_summary.get('hits')} hit(s), "
            f"{cache_summary.get('misses')} miss(es), "
            f"hit rate {rate_text}, "
            f"{cache_summary.get('evictions')} eviction(s), "
            f"{cache_summary.get('store_failures')} store failure(s)"
        )
    if summary.get("journal_corrupt_lines"):
        print(
            "  corrupt  : "
            f"{summary['journal_corrupt_lines']:.0f} journal line(s) "
            "skipped during the recorded sweep"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HeteroOS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and policies").set_defaults(
        func=cmd_list
    )

    run_parser = sub.add_parser("run", help="run one (app, policy) pair")
    run_parser.add_argument("app")
    run_parser.add_argument("policy")
    run_parser.add_argument("--ratio", type=float, default=0.25)
    run_parser.add_argument("--epochs", type=int, default=None)
    run_parser.add_argument("--latency-factor", type=float, default=5.0)
    run_parser.add_argument("--bandwidth-factor", type=float, default=9.0)
    run_parser.add_argument("--llc-mib", type=int, default=16)
    run_parser.add_argument(
        "--breakdown", action="store_true",
        help="print time and allocation breakdowns",
    )
    run_parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file (see "
        "docs/resilience.md); same plan + same seed reproduces the "
        "same run bit-for-bit",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="run every policy on one app"
    )
    compare_parser.add_argument("app")
    compare_parser.add_argument("--ratio", type=float, default=0.25)
    compare_parser.add_argument("--epochs", type=int, default=None)
    compare_parser.set_defaults(func=cmd_compare)

    figure_parser = sub.add_parser(
        "figure", help="regenerate a paper table/figure (or 'all')"
    )
    figure_parser.add_argument("name")
    figure_parser.set_defaults(func=cmd_figure)

    lint_parser = sub.add_parser(
        "lint", help="run heterolint static analysis over source paths"
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint_parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human"
    )
    lint_parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and its rationale",
    )
    lint_parser.add_argument(
        "--deep", action="store_true",
        help="also run the heteroflow whole-program analyses "
        "(dimension inference, protocol typestate, determinism taint)",
    )
    lint_parser.add_argument(
        "--baseline", default=None,
        help="accepted-findings baseline file (default: "
        "heteroflow-baseline.json when present; --deep only)",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit "
        "(--deep only)",
    )
    lint_parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the parsed-AST cache (--deep only; "
        "default: no cache)",
    )
    lint_parser.add_argument(
        "--effects", action="store_true",
        help="also run the heteroeffect race/fork-safety rules "
        "(effect-shared-write, effect-fork-unsafe, effect-rng-aliasing, "
        "effect-order-dep); combinable with --deep",
    )
    lint_parser.add_argument(
        "--contracts", action="store_true",
        help="also run the heterocontract cross-layer drift rules "
        "(contract-spec-field, contract-sample-sum, contract-fault-kind, "
        "contract-obs-pure, contract-registry); combinable with "
        "--deep/--effects",
    )
    lint_parser.add_argument(
        "--changed", action="store_true",
        help="scope the run to files git reports as changed or "
        "untracked; deep passes still analyze the whole tree but only "
        "report findings in the changed files' reverse call-graph "
        "closure (pre-commit mode)",
    )
    lint_parser.set_defaults(func=cmd_lint)

    certify_parser = sub.add_parser(
        "certify",
        help="certify SimulationEngine.step phases as free of "
        "cross-phase hidden state (writes heteroeffect-ledger.json)",
    )
    certify_parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="source tree to analyze (default: src/repro)",
    )
    certify_parser.add_argument(
        "--out", default="heteroeffect-ledger.json",
        help="ledger path (default: heteroeffect-ledger.json)",
    )
    certify_parser.add_argument(
        "--check", action="store_true",
        help="diff the committed ledger against a fresh run; exit 1 "
        "when a certified phase gained an uncertified effect",
    )
    certify_parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the parsed-AST cache (shared with "
        "`repro lint --deep`)",
    )
    certify_parser.set_defaults(func=cmd_certify)

    sanitize_parser = sub.add_parser(
        "sanitize-check",
        help="run a workload with the frame sanitizer attached",
    )
    sanitize_parser.add_argument("--app", default="nginx")
    sanitize_parser.add_argument("--policy", default="hetero-lru")
    sanitize_parser.add_argument("--epochs", type=int, default=10)
    sanitize_parser.add_argument("--ratio", type=float, default=0.25)
    sanitize_parser.add_argument("--slow-gib", type=float, default=0.5)
    sanitize_parser.add_argument("--seed", type=int, default=7)
    sanitize_parser.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    sanitize_parser.set_defaults(func=cmd_sanitize_check)

    trace_parser = sub.add_parser(
        "trace",
        help="run one (app, policy) pair with full telemetry: Chrome "
        "trace JSON + JSONL timeline + host profile",
    )
    trace_parser.add_argument("app")
    trace_parser.add_argument("policy")
    trace_parser.add_argument(
        "--out", default="run.trace.json",
        help="Chrome trace_event output path (default: run.trace.json)",
    )
    trace_parser.add_argument(
        "--jsonl", default=None,
        help="JSONL timeline output path (default: --out with .jsonl)",
    )
    trace_parser.add_argument("--ratio", type=float, default=0.25)
    trace_parser.add_argument("--epochs", type=int, default=None)
    trace_parser.add_argument("--seed", type=int, default=7)
    trace_parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the host wall-clock phase profiler",
    )
    trace_parser.set_defaults(func=cmd_trace)

    timeline_parser = sub.add_parser(
        "timeline",
        help="inspect a JSONL timeline, or --diff two to find the first "
        "divergent epoch",
    )
    timeline_parser.add_argument(
        "path", nargs="?", default=None,
        help="JSONL timeline to summarize",
    )
    timeline_parser.add_argument(
        "--diff", nargs=2, metavar=("A", "B"), default=None,
        help="compare two timelines; exit 1 and report the first "
        "divergent epoch when they differ",
    )
    timeline_parser.set_defaults(func=cmd_timeline)

    sweep_parser = sub.add_parser(
        "sweep",
        help="grid-sweep apps x policies x ratios (parallel + cached)",
    )
    sweep_parser.add_argument("--apps", nargs="+", default=None)
    sweep_parser.add_argument(
        "--policies", nargs="+", default=["hetero-lru"]
    )
    sweep_parser.add_argument(
        "--ratios", nargs="+", type=float, default=[0.25]
    )
    sweep_parser.add_argument("--epochs", type=int, default=None)
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = in-process serial; results are "
        "bit-identical either way)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="on-disk result cache directory (default: "
        "$REPRO_SWEEP_CACHE_DIR when set, else no cache)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if configured",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-grid-point wall-clock budget in seconds",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-spec progress lines on stderr",
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=0,
        help="re-run grid points that failed transiently (timeout or "
        "worker crash) up to N extra times with exponential backoff; "
        "deterministic simulation errors never retry",
    )
    sweep_parser.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SEC",
        help="base backoff before the first retry round (doubles each "
        "round)",
    )
    sweep_parser.add_argument(
        "--retry-jitter", type=float, default=0.0, metavar="FRAC",
        help="stretch each retry backoff by up to FRAC (e.g. 0.5 = up "
        "to +50%%), derived deterministically from the retried specs' "
        "cache keys — desynchronizes sweeps sharing a cache directory "
        "without giving up reproducibility",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from its journal (kept in "
        "the cache directory): cached and journaled grid points are "
        "not re-run; requires a result cache",
    )
    sweep_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the sweep flight-recorder metrics snapshot here "
        "(.prom selects Prometheus text exposition, anything else "
        "canonical JSON); written even when the sweep fails",
    )
    sweep_parser.add_argument(
        "--trace-sweep", default=None, metavar="PATH",
        help="write a sweep-level Chrome trace (per-spec spans on "
        "worker lanes, cache/retry instants) viewable in "
        "ui.perfetto.dev; merge with per-run `repro trace` files via "
        "repro.obs.merge_traces",
    )
    sweep_parser.add_argument(
        "--live", action="store_true",
        help="render a refreshing one-screen status (progress, hit "
        "rate, ETA, failures) on stderr instead of per-spec lines; "
        "needs a TTY, degrades to plain progress otherwise",
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    serve_parser = sub.add_parser(
        "serve",
        help="run the crash-tolerant experiment daemon over a cache "
        "directory (jobs survive SIGKILL; SIGTERM drains gracefully)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="state root: result cache, sweep journal, and job journal "
        "(default: $REPRO_SWEEP_CACHE_DIR)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default: loopback only)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = OS-assigned, printed on startup)",
    )
    serve_parser.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="serve over an AF_UNIX socket at PATH instead of TCP",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="supervised worker processes (crashed workers respawn; "
        "results are bit-identical to `repro sweep` at any width)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-spec wall-clock budget in seconds (SIGALRM in the "
        "worker, like `repro sweep --timeout`)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=1,
        help="scheduler-side retries for timed-out specs",
    )
    serve_parser.add_argument(
        "--max-crashes", type=int, default=2,
        help="worker crashes before a spec is quarantined as poisoned",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=16,
        help="max jobs in flight before submissions get 429 + "
        "Retry-After",
    )
    serve_parser.add_argument(
        "--client-limit", type=int, default=4,
        help="max queued jobs per client id (fairness cap)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    report_parser = sub.add_parser(
        "report",
        help="reconstruct a sweep summary post-hoc from its journal "
        "(plus an optional --metrics snapshot)",
    )
    report_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="sweep journal JSONL (default: sweep-journal.jsonl in the "
        "cache directory)",
    )
    report_parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory holding the journal (default: "
        "$REPRO_SWEEP_CACHE_DIR)",
    )
    report_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="metrics JSON snapshot from `repro sweep --metrics` to "
        "fold cache/retry counters into the report",
    )
    report_parser.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    report_parser.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
