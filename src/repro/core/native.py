"""Bare-metal HeteroOS: hotness tracking moved into the OS itself.

Section 4.3: "although HeteroOS is currently implemented targeting
virtualized datacenters, most of the placement and management is done at
the OS.  Hence it can be easily applied to non-virtualized systems with
bare-metal OS by just moving the page hotness-tracking and DRF into the
OS."

:class:`NativeCoordinatedPolicy` is that port: the same ladder as
HeteroOS-coordinated, but the hotness tracker and the LLC-miss counters
live in the kernel — no hypervisor, no shared-memory channel, no
guest/VMM round trip (migrations run at the guest-local per-page cost).
It binds happily to a kernel-only :class:`PolicyBinding`.
"""

from __future__ import annotations

from repro.core.coordinated import next_interval_ms
from repro.core.hetero_lru import HeteroLruPolicy
from repro.core.policy import PolicyBinding, register_policy
from repro.errors import ReproError
from repro.hw.counters import PerfCounters
from repro.mem.extent import PageExtent, PageType
from repro.vmm.hotness import HotnessConfig, HotnessTracker


@register_policy("hetero-native")
class NativeCoordinatedPolicy(HeteroLruPolicy):
    """HeteroOS-coordinated for bare-metal hosts."""

    name = "hetero-native"

    def __init__(
        self,
        initial_interval_ms: float = 100.0,
        scan_batch_pages: int = 16 * 1024,
        promote_budget_pages: int = 32 * 1024,
        fast_free_target: float = 0.1,
        inactive_after_epochs: int = 2,
        hotness_config: HotnessConfig | None = None,
    ) -> None:
        super().__init__(
            fast_free_target=fast_free_target,
            inactive_after_epochs=inactive_after_epochs,
        )
        self.interval_ms = initial_interval_ms
        self.scan_batch_pages = scan_batch_pages
        self.promote_budget_pages = promote_budget_pages
        self.counters = PerfCounters()
        self.tracker = HotnessTracker(
            hotness_config or HotnessConfig(), has_rmap=True
        )
        self._elapsed_ms = 0.0
        self._epoch_ms = 100.0
        self.pages_migrated = 0
        self.scan_cost_ns = 0.0
        self.migration_cost_ns = 0.0

    def bind(self, binding: PolicyBinding) -> None:
        # Deliberately HeteroLru's bind: no hypervisor services required.
        super().bind(binding)

    def on_llc_sample(self, llc_misses: float, instructions: float) -> None:
        """The engine feeds the OS's own performance counters."""
        self.counters.record_epoch(llc_misses, instructions)

    def on_epoch_end(self, epoch: int) -> float:
        overhead = super().on_epoch_end(epoch)
        self.interval_ms = next_interval_ms(
            self.interval_ms, self.counters.llc_miss_delta()
        )
        self._elapsed_ms += self._epoch_ms
        if self._elapsed_ms < self.interval_ms:
            return overhead
        self._elapsed_ms = 0.0
        overhead += self._scan_and_promote(epoch)
        return overhead

    def _scan_and_promote(self, epoch: int) -> float:
        kernel = self.kernel
        fast_ids = kernel.fast_node_ids
        if not fast_ids:
            return 0.0
        target = fast_ids[0]
        slow_ids = set(kernel.slow_node_ids)
        candidates = [
            extent
            for extent in kernel.extents.values()
            if extent.node_id in slow_ids
            and not extent.swapped
            and extent.page_type is PageType.HEAP
        ]
        report = self.tracker.scan(candidates, max_pages=self.scan_batch_pages)
        self.scan_cost_ns += report.cost_ns
        cost = report.cost_ns
        # Promote only into *surplus* FastMem — free pages beyond the
        # recycling claim of this epoch's churn and missed demand — and
        # only candidates denser than the node's mean active density
        # (the same anti-thrash discipline as the virtualized
        # coordinated policy).
        reserve = sum(
            stats.miss_pages
            for page_type, stats in kernel.epoch_stats.items()
            if page_type in self.FAST_TYPES
        ) + kernel.epoch_freed_fast_pages
        budget = min(
            self.promote_budget_pages,
            max(0, kernel.nodes[target].free_pages - reserve),
        )
        # Each candidate may enter FastMem through true surplus or by
        # displacing pages at most *half as hot as itself* (per-candidate
        # floor) — so admission is strictly density-improving and no
        # promote/demote thrash loop can form.
        surplus = budget
        budget = self.promote_budget_pages
        lru = kernel.lru[target]
        for extent in sorted(
            report.hot_extents,
            key=lambda e: self.tracker.estimate(e),
            reverse=True,
        ):
            if budget <= 0:
                break
            floor = self.tracker.estimate(extent) / 2.0
            displaceable = sum(
                e.pages
                for e in lru.inactive_extents + lru.active_extents
                if e.pages
                and not e.swapped
                and e.page_type.is_migratable
                and e.temperature / e.pages < floor
            )
            cap = min(extent.pages, budget, surplus + displaceable)
            if cap <= 0:
                continue
            try:
                if cap < extent.pages:
                    kernel.split_extent(extent, cap)
                cost += self._displace_cooling(target, extent.pages, floor)
                moved = kernel.move_extent(extent, target)
            except ReproError:
                continue
            if moved:
                budget -= moved
                surplus = max(0, surplus - moved)
                self.pages_migrated += moved
                # Native promotion: no VMM round trip, guest-local copy.
                cost += moved * self.DEMOTE_PAGE_NS
        self.migration_cost_ns += cost - report.cost_ns
        return cost

    def _displace_cooling(
        self, target: int, pages_needed: int, floor: float
    ) -> float:
        """Demote cooling/inactive FastMem pages to make room."""
        kernel = self.kernel
        node = kernel.nodes[target]
        needed = pages_needed - node.free_pages
        if needed <= 0:
            return 0.0
        slow_target = kernel.slow_node_ids[0]
        lru = kernel.lru[target]
        cooling = sorted(
            (
                e
                for e in lru.inactive_extents + lru.active_extents
                if e.pages and e.temperature / e.pages < floor
            ),
            key=lambda e: e.temperature / e.pages,
        )
        cost = 0.0
        for victim in cooling:
            if needed <= 0:
                break
            if victim.swapped or not victim.page_type.is_migratable:
                continue
            if victim.page_type.is_io:
                needed -= kernel.drop_io_extent(victim)
                continue
            try:
                if victim.pages > needed:
                    kernel.split_extent(victim, needed)
                moved = kernel.move_extent(victim, slow_target)
            except ReproError:
                continue
            if moved:
                needed -= moved
                self.pages_demoted += moved
                cost += moved * self.DEMOTE_PAGE_NS
        return cost
