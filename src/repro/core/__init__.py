"""HeteroOS core: placement policies, HeteroOS-LRU, coordination, DRF glue.

The mechanism ladder of Table 5, each level layering on the previous:

* ``Heap-OD`` — on-demand FastMem allocation for the heap only.
* ``Heap-IO-Slab-OD`` — demand-based FastMem prioritization across heap,
  I/O page cache, buffer cache, slab, and network buffers.
* ``HeteroOS-LRU`` — plus eager, memory-type-aware contention resolution.
* ``HeteroOS-coordinated`` — plus guest-guided VMM hotness tracking and
  guest-controlled migration with the Equation 1 adaptive interval.

Baselines: SlowMem-only, FastMem-only, Random, NUMA-preferred, and the
VMM-exclusive HeteroVisor model.
"""

from repro.core.policy import (
    PlacementPolicy,
    PolicyBinding,
    available_policies,
    make_policy,
    register_policy,
)
from repro.core.baselines import (
    FastMemOnlyPolicy,
    NumaBalancingPolicy,
    NumaPreferredPolicy,
    RandomPolicy,
    SlowMemOnlyPolicy,
    VmmExclusivePolicy,
)
from repro.core.heap_od import HeapOdPolicy
from repro.core.heap_io_slab_od import HeapIoSlabOdPolicy
from repro.core.hetero_lru import HeteroLruPolicy
from repro.core.coordinated import CoordinatedPolicy
from repro.core.multilevel import MultiLevelPolicy
from repro.core.native import NativeCoordinatedPolicy
from repro.core.nvm_write_aware import NvmWriteAwarePolicy

__all__ = [
    "PlacementPolicy",
    "PolicyBinding",
    "register_policy",
    "make_policy",
    "available_policies",
    "SlowMemOnlyPolicy",
    "FastMemOnlyPolicy",
    "RandomPolicy",
    "NumaPreferredPolicy",
    "NumaBalancingPolicy",
    "VmmExclusivePolicy",
    "HeapOdPolicy",
    "HeapIoSlabOdPolicy",
    "HeteroLruPolicy",
    "CoordinatedPolicy",
    "MultiLevelPolicy",
    "NativeCoordinatedPolicy",
    "NvmWriteAwarePolicy",
]
