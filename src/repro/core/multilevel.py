"""Multi-level memory: page-type-specific promotion/demotion ladders.

Section 4.3: "For multi-level memories, enabling page-type specific
promotion/demotion policies can be important.  For example, inactive
heap pages can be demoted one level at a time (e.g., FastMem ->
MediumMem -> SlowMem) because of high reuse, whereas IO buffers are
mostly unused after IO completion, and can be demoted to
large-but-slowest memory."

:class:`MultiLevelPolicy` implements that ladder for three-tier guests
(FAST / MEDIUM / SLOW nodes):

* allocation preference walks the tiers fastest-first;
* inactive *heap/slab* pages step down exactly one tier per demotion
  (they often reheat — a one-level demotion keeps the comeback cheap);
* completed/inactive *I/O* pages drop straight to the slowest tier (or
  are dropped outright when clean, as in HeteroOS-LRU).
"""

from __future__ import annotations

from repro.core.hetero_lru import HeteroLruPolicy
from repro.core.policy import register_policy
from repro.errors import ReproError
from repro.mem.extent import PageType


@register_policy("multi-level")
class MultiLevelPolicy(HeteroLruPolicy):
    """HeteroOS-LRU generalised to FastMem/MediumMem/SlowMem ladders."""

    name = "multi-level"

    def node_preference(self, page_type: PageType) -> list[int]:
        if page_type not in self.FAST_TYPES:
            return self.slow_first()
        if self._budgeting_active and self._budgets.get(page_type, 1) <= 0:
            return self.slow_first()
        return self.kernel.nodes_by_speed()

    def _next_tier_down(self, node_id: int) -> int | None:
        """The node one speed rank below ``node_id``, or ``None``."""
        order = self.kernel.nodes_by_speed()
        index = order.index(node_id)
        if index + 1 >= len(order):
            return None
        return order[index + 1]

    def _slowest(self) -> int:
        return self.kernel.nodes_by_speed()[-1]

    def _demote_pass(self, epoch: int) -> float:
        """Ladder demotion: run the HeteroOS-LRU pressure logic on every
        non-slowest tier, stepping heap/slab one level and sending I/O to
        the bottom."""
        kernel = self.kernel
        order = kernel.nodes_by_speed()
        if len(order) < 2:
            return 0.0
        cost = 0.0
        queued, self._demote_queue = self._demote_queue, []
        # Completed I/O: drop (clean) wherever it is above the bottom.
        for extent in queued:
            if (
                extent.extent_id in kernel.extents
                and not extent.swapped
                and extent.page_type.is_io
                and extent.node_id != self._slowest()
            ):
                kernel.drop_io_extent(extent)
        for node_id in order[:-1]:
            node = kernel.nodes[node_id]
            lru = kernel.lru[node_id]
            lru.scan(epoch)
            deficit = (
                int(node.total_pages * self.fast_free_target)
                - node.free_pages
            )
            if deficit <= 0:
                continue
            for extent in list(lru.inactive_extents):
                if deficit <= 0:
                    break
                if extent.swapped or not extent.page_type.is_migratable:
                    continue
                if extent.page_type.is_io:
                    deficit -= kernel.drop_io_extent(extent)
                    continue
                target = self._next_tier_down(node_id)
                if target is None:
                    break
                # 1024 is a minimum demotion batch in *pages*, not bytes.
                # heterolint: disable-next-line=magic-number
                move_pages = min(extent.pages, max(deficit, 1024))
                try:
                    if move_pages < extent.pages:
                        kernel.split_extent(extent, move_pages)
                    moved = kernel.move_extent(extent, target)
                except ReproError:
                    continue
                if moved:
                    kernel.lru[target].deactivate(extent)
                    self.pages_demoted += moved
                    cost += moved * self.DEMOTE_PAGE_NS
                    deficit -= moved
        # Demand-based displacement still applies to the fastest tier.
        fastest = order[0]
        step_down = self._next_tier_down(fastest)
        if step_down is not None:
            cost += self._demote_for_denser(epoch, fastest, step_down)
        self.demote_cost_ns += cost
        return cost
