"""NVM write-awareness: migrate write-heavy SlowMem pages to FastMem.

Section 4.3: "memory technologies such as NVM have substantial
read-write latency imbalance.  Our page placement and the migration
policies can be extended to migrate hot and write-heavy SlowMem (NVM)
pages to FastMem retaining the read-heavy pages in SlowMem.  One
software approach for tracking the write activity of a page is by
periodically setting and resetting the write bit (PAGE_RW) of page table
entries and maintaining the history."

:class:`NvmWriteAwarePolicy` implements exactly that extension on top of
HeteroOS-LRU: a periodic PAGE_RW scan (charged like a hotness scan)
maintains per-extent *write* temperatures, and extents whose write
density crosses a threshold are promoted into FastMem — while read-heavy
pages stay on NVM, whose load path is only ~2.5x DRAM but whose store
path is 5-10x slower (Table 1).
"""

from __future__ import annotations

from repro.core.hetero_lru import HeteroLruPolicy
from repro.core.policy import register_policy
from repro.errors import ReproError
from repro.mem.extent import PageExtent
from repro.units import NS_PER_US


@register_policy("nvm-write-aware")
class NvmWriteAwarePolicy(HeteroLruPolicy):
    """HeteroOS-LRU plus PAGE_RW-history-driven write promotion."""

    name = "nvm-write-aware"

    #: Per-PTE cost of the write-bit scan: reset PAGE_RW, take the
    #: resulting minor faults.  The paper warns this "can add significant
    #: software overhead" — it is charged like every other scan.
    PER_PTE_RW_SCAN_NS = 1.2 * NS_PER_US

    def __init__(
        self,
        write_density_threshold: float = 2.0,
        scan_interval_epochs: int = 2,
        scan_batch_pages: int = 16 * 1024,
        promote_budget_pages: int = 16 * 1024,
        fast_free_target: float = 0.1,
        inactive_after_epochs: int = 2,
    ) -> None:
        super().__init__(
            fast_free_target=fast_free_target,
            inactive_after_epochs=inactive_after_epochs,
        )
        self.write_density_threshold = write_density_threshold
        self.scan_interval_epochs = scan_interval_epochs
        self.scan_batch_pages = scan_batch_pages
        self.promote_budget_pages = promote_budget_pages
        self.pages_promoted_for_writes = 0
        #: Alias used by the generic result reporting.
        self.pages_migrated = 0
        self.rw_scan_cost_ns = 0.0
        self.scan_cost_ns = 0.0

    def on_epoch_end(self, epoch: int) -> float:
        overhead = super().on_epoch_end(epoch)
        if (epoch + 1) % self.scan_interval_epochs != 0:
            return overhead
        overhead += self._promote_write_heavy()
        return overhead

    def _write_density(self, extent: PageExtent) -> float:
        return extent.write_temperature / extent.pages if extent.pages else 0.0

    def _store_penalty_ratio(self) -> float:
        """How much more a store costs than a load on the slow device —
        the weight that makes write-heavy pages worth moving."""
        slow = self.kernel.nodes[self.kernel.slow_node_ids[0]].device
        return max(1.0, slow.store_latency_ns / slow.load_latency_ns)

    def _adjusted_density(self, extent: PageExtent, penalty: float) -> float:
        """Per-page stall contribution if left on the slow device: reads
        at weight 1, writes at the store-penalty weight."""
        if not extent.pages:
            return 0.0
        reads = extent.temperature - extent.write_temperature
        return (reads + penalty * extent.write_temperature) / extent.pages

    def _promote_write_heavy(self) -> float:
        kernel = self.kernel
        fast_ids = kernel.fast_node_ids
        slow_ids = set(kernel.slow_node_ids)
        if not fast_ids or not slow_ids:
            return 0.0
        target = fast_ids[0]
        penalty = self._store_penalty_ratio()
        # PAGE_RW scan over SlowMem-resident migratable extents, with a
        # bounded per-extent window so coverage stays broad.
        window = max(256, self.scan_batch_pages // 32)
        candidates: list[PageExtent] = []
        scanned_pages = 0
        # Extent ids are handed out monotonically, so insertion order
        # here is creation order — deterministic under a fixed seed.
        # heterolint: disable-next-line=unordered-placement
        for extent in kernel.extents.values():
            if scanned_pages >= self.scan_batch_pages:
                break
            if extent.node_id not in slow_ids or extent.swapped:
                continue
            if not extent.page_type.is_migratable:
                continue
            scanned_pages += min(
                extent.pages, window, self.scan_batch_pages - scanned_pages
            )
            if self._write_density(extent) >= self.write_density_threshold:
                candidates.append(extent)
        cost = scanned_pages * self.PER_PTE_RW_SCAN_NS
        self.rw_scan_cost_ns += cost
        self.scan_cost_ns += cost
        if not candidates:
            return cost
        candidates.sort(
            key=lambda e: self._adjusted_density(e, penalty), reverse=True
        )
        budget = min(
            self.promote_budget_pages,
            kernel.nodes[target].free_pages
            + sum(e.pages for e in kernel.lru[target].active_extents),
        )
        for extent in candidates:
            if budget <= 0:
                break
            move_pages = min(extent.pages, budget)
            try:
                if move_pages < extent.pages:
                    kernel.split_extent(extent, move_pages)
                cost += self._make_room_for(extent, target, penalty)
                moved = kernel.move_extent(extent, target)
            except ReproError:
                continue
            if moved:
                budget -= moved
                self.pages_promoted_for_writes += moved
                self.pages_migrated += moved
                cost += moved * self.DEMOTE_PAGE_NS
        return cost

    def _make_room_for(
        self, candidate: PageExtent, target: int, penalty: float
    ) -> float:
        """Displace FastMem pages whose write-adjusted stall contribution
        is clearly below the candidate's — the read-heavy pages the paper
        says should be "retain[ed] ... in SlowMem"."""
        kernel = self.kernel
        node = kernel.nodes[target]
        needed = candidate.pages - node.free_pages_for(candidate.page_type)
        if needed <= 0:
            return 0.0
        bar = self._adjusted_density(candidate, penalty) / 1.5
        victims = sorted(
            (
                e
                for e in kernel.lru[target].active_extents
                + kernel.lru[target].inactive_extents
                if not e.swapped
                and e.page_type.is_migratable
                and self._adjusted_density(e, penalty) < bar
            ),
            key=lambda e: self._adjusted_density(e, penalty),
        )
        slow_target = kernel.slow_node_ids[0]
        cost = 0.0
        for victim in victims:
            if needed <= 0:
                break
            try:
                if victim.pages > needed:
                    kernel.split_extent(victim, needed)
                moved = kernel.move_extent(victim, slow_target)
            except ReproError:
                continue
            if moved:
                needed -= moved
                self.pages_demoted += moved
                cost += moved * self.DEMOTE_PAGE_NS
        return cost
