"""Heap-IO-Slab-OD: demand-based FastMem prioritization (Section 3.2).

"Against the conventional OS memory management methods that always
prioritize heap to the faster memory ... it is critical to equally
prioritize heap and I/O pages."  Every FastMem-eligible subsystem (heap,
I/O page cache, buffer cache, slab, network buffers) may allocate from
FastMem; when FastMem is scarce, the per-epoch allocation statistics the
kernel keeps (requests / FastMem hits / misses per subsystem) are used to
*budget* the free FastMem across subsystems in proportion to
``miss_ratio x demand`` — subsystems starving the hardest get first
claim, the paper's "prioritize allocation of page types with maximum
miss ratio".
"""

from __future__ import annotations

from repro.core.heap_od import HeapOdPolicy
from repro.core.policy import PolicyBinding, register_policy
from repro.mem.extent import PageType

#: Everything HeteroOS will place in FastMem; page-table and DMA pages
#: are excluded (negligible impact measured in Section 3.2).
FASTMEM_ELIGIBLE: frozenset[PageType] = frozenset(
    {
        PageType.HEAP,
        PageType.PAGE_CACHE,
        PageType.BUFFER_CACHE,
        PageType.SLAB,
        PageType.NETWORK_BUFFER,
    }
)


@register_policy("heap-io-slab-od")
class HeapIoSlabOdPolicy(HeapOdPolicy):
    """Demand-based FastMem prioritization across all subsystems."""

    name = "heap-io-slab-od"
    FAST_TYPES = FASTMEM_ELIGIBLE

    #: FastMem free fraction below which budgeting kicks in; above it,
    #: everyone simply allocates on demand.
    SCARCITY_THRESHOLD = 0.25

    def __init__(self) -> None:
        super().__init__()
        self._budgets: dict[PageType, int] = {}
        self._budgeting_active = False
        self._last_ratios: dict[PageType, float] = {}
        self._last_demand: dict[PageType, int] = {}

    def bind(self, binding: PolicyBinding) -> None:
        super().bind(binding)
        self._budgets = {}
        self._budgeting_active = False

    # ------------------------------------------------------------------
    # Epoch hooks
    # ------------------------------------------------------------------

    def on_epoch_start(self, epoch: int) -> float:
        self._compute_budgets()
        return 0.0

    def on_epoch_end(self, epoch: int) -> float:
        # Snapshot this epoch's demand signal before the engine resets it.
        kernel = self.kernel
        self._last_ratios = kernel.epoch_miss_ratios()
        self._last_demand = {
            page_type: stats.requested_pages
            for page_type, stats in kernel.epoch_stats.items()
            if stats.requested_pages > 0
        }
        return 0.0

    def on_allocated(self, page_type: PageType, pages: int, fast_pages: int) -> None:
        """Engine callback: charge FastMem grants against the budget."""
        if self._budgeting_active and fast_pages > 0:
            remaining = self._budgets.get(page_type)
            if remaining is not None:
                self._budgets[page_type] = remaining - fast_pages

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def node_preference(self, page_type: PageType) -> list[int]:
        if page_type not in self.FAST_TYPES:
            return self.slow_first()
        if self._budgeting_active and self._budgets.get(page_type, 1) <= 0:
            return self.slow_first()
        return self.fast_first()

    # ------------------------------------------------------------------
    # Budgeting
    # ------------------------------------------------------------------

    def _fast_free_and_total(self) -> tuple[int, int]:
        kernel = self.kernel
        free = sum(kernel.nodes[nid].free_pages for nid in kernel.fast_node_ids)
        total = sum(
            kernel.nodes[nid].total_pages for nid in kernel.fast_node_ids
        )
        return free, total

    def _compute_budgets(self) -> None:
        """Split free FastMem across subsystems by miss-ratio-weighted
        demand; only active once FastMem becomes scarce."""
        free, total = self._fast_free_and_total()
        if total == 0:
            self._budgeting_active = False
            return
        self._budgeting_active = free < total * self.SCARCITY_THRESHOLD
        if not self._budgeting_active:
            self._budgets = {}
            return
        weights: dict[PageType, float] = {}
        for page_type in self.FAST_TYPES:
            demand = self._last_demand.get(page_type, 0)
            ratio = self._last_ratios.get(page_type, 0.0)
            if demand > 0:
                # Epsilon keeps a subsystem with recent demand but a zero
                # miss ratio from being locked out entirely.
                weights[page_type] = demand * (ratio + 0.05)
        if not weights:
            self._budgets = {}
            self._budgeting_active = False
            return
        scale = sum(weights.values())
        self._budgets = {
            page_type: int(free * weight / scale)
            for page_type, weight in weights.items()
        }
        # Subsystems without recent demand may still take leftovers.
        for page_type in self.FAST_TYPES:
            self._budgets.setdefault(page_type, max(0, free // 16))
