"""HeteroOS-LRU: eager, memory-type-aware contention resolution (§3.3).

The stock Linux split LRU is lazy (scan only past a whole-memory
pressure threshold) and I/O-focused.  HeteroOS-LRU fixes all three
limitations the paper lists:

1. *memory-type-specific thresholds* — reclaim triggers on the FastMem
   node's own free-page level, not system-wide pressure;
2. *eager state monitoring* — active->inactive transitions of heap, I/O
   cache, and slab extents are observed every epoch and inactive FastMem
   extents are demoted to SlowMem immediately;
3. *event-driven demotion* — I/O completion and unmap events demote the
   affected FastMem pages at once instead of waiting for a scan.

Demotions are guest-local (no VMM round trip, simple remap + copy), so
they are charged at a flat per-page cost far below Table 6's coordinated
migration costs.
"""

from __future__ import annotations

from repro.core.heap_io_slab_od import HeapIoSlabOdPolicy
from repro.core.policy import PolicyBinding, register_policy
from repro.errors import OutOfMemoryError, ReproError
from repro.guestos.vma import Vma
from repro.mem.extent import ExtentState, PageExtent
from repro.units import NS_PER_US


@register_policy("hetero-lru")
class HeteroLruPolicy(HeapIoSlabOdPolicy):
    """Heap-IO-Slab-OD plus eager FastMem eviction."""

    name = "hetero-lru"

    #: Guest-local demotion cost per page (remap + 4 KiB copy).
    DEMOTE_PAGE_NS = 3.0 * NS_PER_US

    def __init__(
        self,
        fast_free_target: float = 0.1,
        inactive_after_epochs: int = 2,
    ) -> None:
        super().__init__()
        self.fast_free_target = fast_free_target
        self.inactive_after_epochs = inactive_after_epochs
        self._demote_queue: list[PageExtent] = []
        self.pages_demoted = 0
        self.demote_cost_ns = 0.0

    def bind(self, binding: PolicyBinding) -> None:
        super().bind(binding)
        kernel = binding.kernel
        for lru in kernel.lru.values():
            lru.inactive_after_epochs = self.inactive_after_epochs
        kernel.page_cache.add_io_complete_hook(self._on_io_complete)
        kernel.address_space.add_unmap_hook(self._on_unmap)

    # ------------------------------------------------------------------
    # Eager event triggers
    # ------------------------------------------------------------------

    def _on_io_complete(self, extent: PageExtent) -> None:
        """I/O finished: if the pages sit in FastMem, queue their
        demotion for this epoch's batch."""
        kernel = self.kernel
        if extent.node_id in kernel.fast_node_ids and not extent.swapped:
            self._demote_queue.append(extent)

    def _on_unmap(self, vma: Vma) -> None:
        """Unmapped VMAs release their pages; nothing to demote (the
        frames return to the allocator), but mark any survivors inactive
        so a partial free cannot pin FastMem."""
        kernel = self.kernel
        if not kernel.has_region(vma.region_id):
            return
        for extent in kernel.region_extents(vma.region_id):
            if not extent.swapped:
                lru = kernel.lru[extent.node_id]
                if lru.contains(extent):
                    lru.deactivate(extent)

    # ------------------------------------------------------------------
    # Epoch work
    # ------------------------------------------------------------------

    def on_epoch_end(self, epoch: int) -> float:
        overhead = super().on_epoch_end(epoch)
        overhead += self._demote_pass(epoch)
        return overhead

    def _demote_pass(self, epoch: int) -> float:
        """Restore the FastMem free-page target by evicting cold pages.

        This is the memory-type-specific threshold of Section 3.3: the
        trigger is the FastMem node's *own* free level, not whole-system
        pressure.  Completed-I/O extents are *dropped* (the backing store
        holds the data — no copy needed); inactive anonymous/slab extents
        are migrated to SlowMem at the guest-local per-page cost.
        """
        kernel = self.kernel
        slow_ids = kernel.slow_node_ids
        if not slow_ids:
            self._demote_queue = []
            return 0.0
        target = slow_ids[0]
        demoted_before = self.pages_demoted
        cost = 0.0
        queued, self._demote_queue = self._demote_queue, []
        for fast_id in kernel.fast_node_ids:
            node = kernel.nodes[fast_id]
            lru = kernel.lru[fast_id]
            # Memory-type-specific threshold (Section 3.3): on a scarce
            # FastMem node, "cold" is relative — pages well below the
            # node's mean active density yield their slots so denser
            # newcomers (from any subsystem) can claim them.
            active = lru.active_extents
            active_pages = sum(e.pages for e in active)
            if active_pages > 0 and node.free_pages < node.total_pages * 0.5:
                mean_density = (
                    sum(e.temperature for e in active) / active_pages
                )
                lru.cold_density_threshold = max(2.0, 0.35 * mean_density)
            lru.scan(epoch)
            deficit = (
                int(node.total_pages * self.fast_free_target) - node.free_pages
            )
            # Eager path: completed I/O on this node is always dropped —
            # short-lived cache pages must never pin FastMem (Section 3.3
            # thresholds 1-2) — and dropping is free of copy cost.
            for extent in queued:
                if (
                    extent.extent_id in kernel.extents
                    and extent.node_id == fast_id
                    and extent.page_type.is_io
                    and not extent.swapped
                ):
                    deficit -= kernel.drop_io_extent(extent)
            if deficit <= 0:
                continue
            # Pressure path: demote the coldest inactive extents until
            # the free target is restored.
            for extent in list(lru.inactive_extents):
                if deficit <= 0:
                    break
                if extent.swapped or not extent.page_type.is_migratable:
                    continue
                if extent.page_type.is_io:
                    deficit -= kernel.drop_io_extent(extent)
                    continue
                # 1024 is a minimum demotion batch in *pages*, not bytes.
                # heterolint: disable-next-line=magic-number
                move_pages = min(extent.pages, max(deficit, 1024))
                try:
                    if move_pages < extent.pages:
                        kernel.split_extent(extent, move_pages)
                    moved = kernel.move_extent(extent, target)
                except (OutOfMemoryError, ReproError):
                    continue
                if moved:
                    kernel.lru[target].deactivate(extent)
                    self.pages_demoted += moved
                    cost += moved * self.DEMOTE_PAGE_NS
                    deficit -= moved
            cost += self._demote_for_denser(epoch, fast_id, target)
        self.demote_cost_ns += cost
        demoted = self.pages_demoted - demoted_before
        if demoted:
            self.record_decision(
                "demote-pass", epoch=epoch, pages=demoted, cost_ns=cost
            )
        return cost

    def _demote_for_denser(
        self, epoch: int, fast_id: int, target: int
    ) -> float:
        """Demand-based prioritization across subsystems (Section 3.2):
        when this epoch's allocations *missed* FastMem and are markedly
        denser than resident FastMem pages, demote the coldest actives to
        make room for the starving subsystem's next allocations."""
        kernel = self.kernel
        node = kernel.nodes[fast_id]
        # Incoming demand that missed FastMem this epoch.
        missed = [
            e
            for e in kernel.extents.values()
            if e.birth_epoch == epoch
            and e.node_id != fast_id
            and not e.swapped
            and e.page_type in self.FAST_TYPES
            and e.temperature > 0
        ]
        if not missed:
            return 0.0
        missed_pages = sum(e.pages for e in missed)
        # First-epoch temperature is one epoch's accesses; scale by 2 to
        # compare against steady-state EWMA densities (decay 0.5).
        incoming_density = (
            2.0 * sum(e.temperature for e in missed) / missed_pages
        )
        budget = min(missed_pages, node.total_pages // 8)
        cost = 0.0
        victims = sorted(
            kernel.lru[fast_id].active_extents,
            key=lambda e: e.temperature / e.pages if e.pages else 0.0,
        )
        freed = 0
        for extent in victims:
            if freed >= budget:
                break
            density = extent.temperature / extent.pages if extent.pages else 0.0
            # Hysteresis: only displace pages at most half as dense.
            if density * 2.0 >= incoming_density:
                break
            if extent.swapped or not extent.page_type.is_migratable:
                continue
            if extent.page_type.is_io:
                freed += kernel.drop_io_extent(extent)
                continue
            need = budget - freed
            try:
                if extent.pages > need:
                    kernel.split_extent(extent, need)
                moved = kernel.move_extent(extent, target)
            except (OutOfMemoryError, ReproError):
                continue
            if moved:
                kernel.lru[target].deactivate(extent)
                self.pages_demoted += moved
                cost += moved * self.DEMOTE_PAGE_NS
                freed += moved
        return cost
