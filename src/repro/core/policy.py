"""Placement policy interface and registry.

A :class:`PlacementPolicy` makes three kinds of decisions:

* **allocation-time**: the node preference order for each page type
  (:meth:`node_preference`), consulted by the engine for every region
  allocation;
* **epoch-time**: reclamation, hotness tracking, and migration work in
  :meth:`on_epoch_end`, whose returned nanoseconds are charged to the
  guest's virtual time as software-management overhead;
* **event-time**: reactions to I/O completion and unmap events (the
  HeteroOS-LRU eager triggers), wired into the kernel's hooks by
  :meth:`bind`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.guestos.kernel import GuestKernel
from repro.mem.extent import PageType
from repro.vmm.channel import CoordinationChannel
from repro.vmm.domain import Domain
from repro.vmm.hotness import HotnessTracker
from repro.units import Ns
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.migration import MigrationEngine


@dataclass
class PolicyBinding:
    """Everything a policy may touch, wired up by the engine."""

    kernel: GuestKernel
    hypervisor: Hypervisor | None = None
    domain: Domain | None = None
    rng: random.Random | None = None
    #: Telemetry bus (duck-typed ``repro.obs.Telemetry``; untyped here so
    #: core stays below obs in the layering).  ``None`` when telemetry is
    #: off — policies report via :meth:`PlacementPolicy.record_decision`
    #: which no-ops in that case.
    telemetry: object | None = None

    @property
    def channel(self) -> CoordinationChannel | None:
        if self.hypervisor is None or self.domain is None:
            return None
        return self.hypervisor.channel(self.domain.domain_id)

    @property
    def tracker(self) -> HotnessTracker | None:
        if self.hypervisor is None or self.domain is None:
            return None
        return self.hypervisor.tracker(self.domain.domain_id)

    @property
    def migration_engine(self) -> MigrationEngine | None:
        if self.hypervisor is None:
            return None
        return self.hypervisor.migration_engine


class PlacementPolicy(abc.ABC):
    """Base class for all placement policies."""

    #: Registry key; subclasses must override.
    name: str = ""
    #: FastMem-only needs the runner to provision unlimited FastMem.
    requires_unlimited_fast: bool = False

    def __init__(self) -> None:
        self.binding: PolicyBinding | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, binding: PolicyBinding) -> None:
        """Attach to a guest; subclasses extend to install kernel hooks."""
        self.binding = binding

    @property
    def kernel(self) -> GuestKernel:
        if self.binding is None:
            raise ConfigurationError(f"policy {self.name!r} is not bound")
        return self.binding.kernel

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def node_preference(self, page_type: PageType) -> list[int]:
        """Node ids to try, in order, for an allocation of ``page_type``."""

    def on_epoch_start(self, epoch: int) -> Ns:
        """Per-epoch setup; returns overhead nanoseconds."""
        return 0.0

    def on_epoch_end(self, epoch: int) -> Ns:
        """Reclaim/track/migrate work; returns overhead nanoseconds."""
        return 0.0

    def on_allocated(
        self, page_type: PageType, pages: int, fast_pages: int
    ) -> None:
        """Engine callback after each region allocation (budget hooks)."""

    def on_llc_sample(self, llc_misses: float, instructions: float) -> None:
        """Engine callback with each epoch's LLC-miss counter sample
        (bare-metal policies keep their own counters; virtualized ones
        read the VMM-exported channel instead)."""

    def record_decision(self, decision: str, **data: object) -> None:
        """Report a policy decision to the telemetry bus, if attached.

        Free when telemetry is off (unbound or ``binding.telemetry`` is
        ``None``); data must be JSON-safe scalars.  The event lands in
        the current epoch's sample under source ``core.policy``.
        """
        if self.binding is None or self.binding.telemetry is None:
            return
        self.binding.telemetry.policy_event(decision, policy=self.name, **data)

    # Convenience node lookups ------------------------------------------

    def fast_first(self) -> list[int]:
        kernel = self.kernel
        return kernel.fast_node_ids + kernel.slow_node_ids

    def slow_first(self) -> list[int]:
        kernel = self.kernel
        return kernel.slow_node_ids + kernel.fast_node_ids

    def slow_only(self) -> list[int]:
        return list(self.kernel.slow_node_ids)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], PlacementPolicy]] = {}


def register_policy(
    name: str, factory: Callable[[], PlacementPolicy] | None = None
):
    """Register a policy factory; usable as a decorator on the class."""

    def _register(target: Callable[[], PlacementPolicy]):
        if name in _REGISTRY:
            raise ConfigurationError(f"policy {name!r} already registered")
        _REGISTRY[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)  # type: ignore[call-arg]


def available_policies() -> list[str]:
    return sorted(_REGISTRY)
