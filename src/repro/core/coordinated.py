"""HeteroOS-coordinated: guest-guided VMM tracking, guest-run migration.

Section 4.1's design, on top of HeteroOS-LRU:

* **What to track** — the guest publishes a tracking list (heap regions,
  extracted from the VMA structure) and an exception list (short-lived
  I/O cache, page-table, DMA pages) over the shared-memory channel; the
  VMM scans only the tracked extents, slashing Observation 4's costs.
* **When to track** — the scan/migrate interval adapts to the LLC-miss
  counters the VMM exports, Equation 1:

      dLLC   = (miss_i - miss_{i-1}) / miss_{i-1}
      I_next = I - dLLC * I

  clamped to [50 ms, 1 s].  Rising misses shorten the interval (FastMem
  would pay off), falling misses lengthen it (migration wouldn't).
* **Who migrates** — the VMM only *reports* hot extents; the guest
  validates page state (live, not dirty I/O) and performs the moves
  itself, evicting inactive FastMem pages via HeteroOS-LRU first.
"""

from __future__ import annotations

from repro.core.hetero_lru import HeteroLruPolicy
from repro.core.policy import PolicyBinding, register_policy
from repro.errors import ConfigurationError, ReproError
from repro.mem.extent import PageExtent, PageType
from repro.units import NS_PER_MS


def next_interval_ms(
    interval_ms: float,
    llc_delta: float,
    min_ms: float = 50.0,
    max_ms: float = 1000.0,
) -> float:
    """Equation 1: shrink the interval when LLC misses rise, grow it when
    they fall; clamped to the paper's 50 ms - 1 s range."""
    updated = interval_ms - llc_delta * interval_ms
    return max(min_ms, min(max_ms, updated))


@register_policy("hetero-coordinated")
class CoordinatedPolicy(HeteroLruPolicy):
    """HeteroOS-LRU + OS-guided hotness tracking + architectural hints."""

    name = "hetero-coordinated"

    def __init__(
        self,
        initial_interval_ms: float = 100.0,
        min_interval_ms: float = 50.0,
        max_interval_ms: float = 1000.0,
        scan_batch_pages: int = 16 * 1024,
        migrate_batch_pages: int = 128 * 1024,
        migrate_budget_pages: int = 32 * 1024,
        fast_free_target: float = 0.1,
        inactive_after_epochs: int = 2,
    ) -> None:
        super().__init__(
            fast_free_target=fast_free_target,
            inactive_after_epochs=inactive_after_epochs,
        )
        if min_interval_ms <= 0 or max_interval_ms < min_interval_ms:
            raise ConfigurationError("bad interval clamp range")
        self.interval_ms = initial_interval_ms
        self.min_interval_ms = min_interval_ms
        self.max_interval_ms = max_interval_ms
        self.scan_batch_pages = scan_batch_pages
        self.migrate_batch_pages = migrate_batch_pages
        self.migrate_budget_pages = migrate_budget_pages
        self._elapsed_since_scan_ms = 0.0
        self._epoch_ms = 100.0
        self._displacement_floor = 0.0
        self.scan_cost_ns = 0.0
        self.migration_cost_ns = 0.0
        self.pages_migrated = 0
        self.intervals_ms: list[float] = []

    def bind(self, binding: PolicyBinding) -> None:
        super().bind(binding)
        if binding.channel is None or binding.tracker is None:
            raise ConfigurationError(
                "hetero-coordinated needs a hypervisor-backed binding"
            )

    # ------------------------------------------------------------------
    # Epoch work
    # ------------------------------------------------------------------

    def on_epoch_end(self, epoch: int) -> float:
        overhead = super().on_epoch_end(epoch)  # LRU demotions etc.
        binding = self.binding
        assert binding is not None
        channel = binding.channel
        assert channel is not None

        # Architectural hint: adapt the interval from the LLC counters.
        self.interval_ms = next_interval_ms(
            self.interval_ms,
            channel.guest_read_llc_delta(),
            self.min_interval_ms,
            self.max_interval_ms,
        )
        self.intervals_ms.append(self.interval_ms)

        self._elapsed_since_scan_ms += self._epoch_ms
        if self._elapsed_since_scan_ms < self.interval_ms:
            return overhead
        self._elapsed_since_scan_ms = 0.0

        overhead += self._publish_tracking(channel)
        overhead += self._vmm_scan(channel)
        overhead += self._guest_migrate(channel)
        return overhead

    # ------------------------------------------------------------------
    # Coordination steps
    # ------------------------------------------------------------------

    def _publish_tracking(self, channel) -> float:
        """Export the heap tracking list and the exception list."""
        kernel = self.kernel
        tracked = [
            region_id
            for region_id in kernel.live_regions()
            for extent in kernel.region_extents(region_id)[:1]
            if extent.page_type is PageType.HEAP
        ]
        channel.guest_publish_tracking(
            tracked,
            exception_types={
                PageType.PAGE_CACHE,
                PageType.BUFFER_CACHE,
                PageType.PAGE_TABLE,
                PageType.DMA,
            },
        )
        return 0.0

    def _vmm_scan(self, channel) -> float:
        """The VMM scans only the guest-listed regions' SlowMem extents."""
        binding = self.binding
        assert binding is not None and binding.tracker is not None
        kernel = binding.kernel
        regions, exceptions = channel.vmm_read_tracking()
        slow_ids = set(kernel.slow_node_ids)
        candidates: list[PageExtent] = []
        for region_id in regions:
            if not kernel.has_region(region_id):
                continue
            for extent in kernel.region_extents(region_id):
                if (
                    extent.node_id in slow_ids
                    and not extent.swapped
                    and extent.page_type not in exceptions
                ):
                    candidates.append(extent)
        if not candidates:
            channel.vmm_publish_hot([])
            return 0.0
        report = binding.tracker.scan(
            candidates, max_pages=self.scan_batch_pages
        )
        channel.vmm_publish_hot(
            [extent.extent_id for extent in report.hot_extents]
        )
        self.scan_cost_ns += report.cost_ns
        return report.cost_ns

    def _guest_migrate(self, channel) -> float:
        """Guest-side validation and migration of the VMM's hot report."""
        binding = self.binding
        assert binding is not None and binding.migration_engine is not None
        kernel = binding.kernel
        engine = binding.migration_engine
        fast_ids = kernel.fast_node_ids
        if not fast_ids:
            return 0.0
        target = fast_ids[0]
        # Allocation demand that is denser than a promotion candidate has
        # first claim on FastMem slots — promoting below it would only be
        # undone by the demand-based demotion pass.
        missed = [
            e
            for e in kernel.extents.values()
            if e.birth_epoch == kernel.epoch
            and e.node_id != target
            and not e.swapped
            and e.page_type in self.FAST_TYPES
            and e.temperature > 0
        ]
        missed_pages = sum(e.pages for e in missed)
        incoming_density = (
            2.0 * sum(e.temperature for e in missed) / missed_pages
            if missed_pages
            else 0.0
        )
        # Admission bar: a candidate must also beat half the FastMem
        # node's mean active density, or it would sit right at the
        # demotion threshold and flap in and out every few epochs.
        fast_active = kernel.lru[target].active_extents
        fast_active_pages = sum(e.pages for e in fast_active)
        fast_mean_density = (
            sum(e.temperature for e in fast_active) / fast_active_pages
            if fast_active_pages
            else 0.0
        )
        admission_bar = max(incoming_density, 0.5 * fast_mean_density)
        tracker = binding.tracker
        assert tracker is not None
        hot: list[PageExtent] = []
        for extent_id in channel.guest_read_hot_report():
            extent = kernel.extents.get(extent_id)
            # Guest page-state validation (Section 4.1): skip dead pages,
            # dirty I/O, unmigratable types — *before* paying for a move.
            if extent is None or extent.swapped:
                continue
            if not extent.page_type.is_migratable:
                continue
            if extent.page_type.is_io and kernel.page_cache.is_dirty(extent):
                continue
            if extent.node_id == target:
                continue
            if tracker.estimate(extent) <= admission_bar:
                continue
            hot.append(extent)
        if not hot:
            return 0.0
        # Pages at most half as dense as the weakest promotion candidate
        # may be displaced even while active (phase changes leave the old
        # hot set active-but-cooling; without this, a full FastMem could
        # never adapt).
        self._displacement_floor = (
            min(tracker.estimate(extent) for extent in hot) / 2.0
        )
        # Promote only into *surplus* FastMem: free pages beyond what
        # this epoch's FastMem-missing allocation demand will claim next
        # epoch.  Promoting into space the allocator is about to hand to
        # denser incoming pages would just be demoted again — a
        # migrate/demote thrash loop with pure cost.
        fast_node = kernel.nodes[target]
        reserve = sum(
            stats.miss_pages
            for page_type, stats in kernel.epoch_stats.items()
            if page_type in self.FAST_TYPES
        ) + kernel.epoch_freed_fast_pages
        # Inactive I/O pages are *not* room: HeteroOS-LRU drops them and
        # the recycling churn reclaims those slots next epoch.  Active
        # pages below the displacement floor count — they will yield.
        floor = self._displacement_floor
        room = (
            max(0, fast_node.free_pages - reserve)
            + sum(
                e.pages
                for e in kernel.lru[target].inactive_extents
                if not e.swapped and not e.page_type.is_io
            )
            + sum(
                e.pages
                for e in kernel.lru[target].active_extents
                if e.pages
                and not e.swapped
                and e.page_type.is_migratable
                and e.temperature / e.pages < floor
            )
        )
        budget = min(self.migrate_budget_pages, room)
        if budget <= 0:
            return 0.0
        demote_before = self.demote_cost_ns
        report = engine.migrate(
            hot,
            target,
            kernel,
            batch_pages=self.migrate_batch_pages,
            evict_with=self._make_room,
            budget_pages=budget,
        )
        evict_cost = self.demote_cost_ns - demote_before
        self.migration_cost_ns += report.cost_ns
        self.pages_migrated += report.pages_moved
        return report.cost_ns + evict_cost

    def _make_room(self, target_node_id: int, pages_needed: int) -> int:
        """Eviction callback: demote inactive FastMem extents (HeteroOS-
        LRU's candidates) to SlowMem to make room for hot pages."""
        kernel = self.kernel
        slow_ids = kernel.slow_node_ids
        if not slow_ids:
            return 0
        lru = kernel.lru[target_node_id]
        freed = 0
        # Inactive extents first; then active extents markedly colder
        # than the incoming hot pages (below the displacement floor) —
        # never peers, which would thrash FastMem.
        floor = getattr(self, "_displacement_floor", 0.0)
        cold_actives = sorted(
            (
                e
                for e in lru.active_extents
                if e.pages and e.temperature / e.pages < floor
            ),
            key=lambda e: e.temperature / e.pages,
        )
        for extent in lru.inactive_extents + cold_actives:
            if freed >= pages_needed:
                break
            if extent.swapped or not extent.page_type.is_migratable:
                continue
            if extent.page_type.is_io:
                freed += kernel.drop_io_extent(extent)
                continue
            need = pages_needed - freed
            try:
                if extent.pages > need:
                    kernel.split_extent(extent, need)
                moved = kernel.move_extent(extent, slow_ids[0])
            except ReproError:
                continue
            if moved:
                freed += moved
                self.pages_demoted += moved
                self.demote_cost_ns += moved * self.DEMOTE_PAGE_NS
        return freed
