"""Heap-OD: on-demand FastMem allocation for the heap (Section 3.2).

The first rung of the Table 5 ladder: the guest is heterogeneity-aware
and backs heap (anonymous) allocations with FastMem on demand, falling
back to SlowMem when FastMem is exhausted.  Every other page type follows
the conventional rule — I/O and kernel pages go to SlowMem — which is
exactly the "heap-only prioritization" the paper shows is insufficient
for storage- and network-intensive applications.
"""

from __future__ import annotations

from repro.core.policy import PlacementPolicy, register_policy
from repro.mem.extent import PageType


@register_policy("heap-od")
class HeapOdPolicy(PlacementPolicy):
    """On-demand heap allocation to FastMem; everything else SlowMem."""

    name = "heap-od"

    #: Page types this policy steers toward FastMem.
    FAST_TYPES: frozenset[PageType] = frozenset({PageType.HEAP})

    def node_preference(self, page_type: PageType) -> list[int]:
        if page_type in self.FAST_TYPES:
            return self.fast_first()
        return self.slow_first()
