"""Baseline placement policies.

* ``SlowMem-only`` — the naive floor every figure normalises against.
* ``FastMem-only`` — the ideal ceiling: unlimited FastMem.
* ``Random`` — heterogeneity-unaware random placement (Figures 6/7).
* ``NUMA-preferred`` — Linux's existing preferred-node policy with guest
  NUMA enabled but none of HeteroOS's extensions (Figure 9's comparison).
* ``VMM-exclusive`` — the HeteroVisor model: the guest sees one memory;
  the VMM lazily backs everything with SlowMem, then periodically scans
  the whole VM for hotness and migrates hot pages to FastMem, evicting
  the least-hot FastMem pages (Sections 2.3 and 5).
"""

from __future__ import annotations

from repro.core.policy import PlacementPolicy, PolicyBinding, register_policy
from repro.errors import ConfigurationError
from repro.mem.extent import PageExtent, PageType
from repro.vmm.hotness import ScanReport


@register_policy("slowmem-only")
class SlowMemOnlyPolicy(PlacementPolicy):
    """Everything on SlowMem; the paper's naive baseline."""

    name = "slowmem-only"

    def node_preference(self, page_type: PageType) -> list[int]:
        return self.slow_only()


@register_policy("fastmem-only")
class FastMemOnlyPolicy(PlacementPolicy):
    """Everything on FastMem with unlimited capacity; the ideal case."""

    name = "fastmem-only"
    requires_unlimited_fast = True

    def node_preference(self, page_type: PageType) -> list[int]:
        return self.fast_first()


@register_policy("random")
class RandomPolicy(PlacementPolicy):
    """Per-request random node choice, capacity-weighted.

    Models boot-time random placement without heterogeneity awareness;
    the non-deterministic latency/bandwidth behaviour of Figures 6-7.
    """

    name = "random"

    def node_preference(self, page_type: PageType) -> list[int]:
        binding = self.binding
        if binding is None or binding.rng is None:
            raise ConfigurationError("random policy needs a bound RNG")
        nodes = list(self.kernel.nodes.values())
        weights = [node.total_pages for node in nodes]
        first = binding.rng.choices(nodes, weights=weights, k=1)[0]
        rest = [n.node_id for n in nodes if n.node_id != first.node_id]
        return [first.node_id] + rest


@register_policy("numa-preferred")
class NumaPreferredPolicy(PlacementPolicy):
    """Linux ``preferred`` NUMA policy pointed at the FastMem node.

    Every allocation tries FastMem first, first-come-first-served, with
    no demand ranking, no eager reclaim, and no migration.  Because the
    stock kernel keeps the default zone split, watermark reserves, and
    automatic-balancing reservations on the FastMem node (HeteroOS's
    unified zone "conserve[s] pages"), a slice of FastMem is never
    usable: ``reserved_fraction`` models that slice.
    """

    name = "numa-preferred"

    def __init__(self, reserved_fraction: float = 0.2) -> None:
        super().__init__()
        if not 0 <= reserved_fraction < 1:
            raise ConfigurationError("reserved fraction must be in [0, 1)")
        self.reserved_fraction = reserved_fraction

    def bind(self, binding: PolicyBinding) -> None:
        super().bind(binding)
        for node_id in binding.kernel.fast_node_ids:
            node = binding.kernel.nodes[node_id]
            reserve = int(node.total_pages * self.reserved_fraction)
            if reserve > 0:
                binding.kernel.hide_pages(node_id, reserve)

    def node_preference(self, page_type: PageType) -> list[int]:
        return self.fast_first()


@register_policy("numa-balancing")
class NumaBalancingPolicy(PlacementPolicy):
    """Linux automatic NUMA balancing, heterogeneity-blind.

    Section 5.3: "we notice a significant slowdown with other policies
    such as 'local node first' or the Linux automatic NUMA balancing
    policy because some cores are bounded to SlowMem even when FastMem
    is available."  CPUs are spread across the nodes proportionally to
    nothing in particular (they are *CPU* topology, not memory speed),
    so a fixed share of allocations is node-local to SlowMem by
    construction, and the balancer's periodic NUMA-hinting faults add
    overhead without fixing the tier mismatch.
    """

    name = "numa-balancing"

    #: NUMA-hinting fault sampling cost per epoch per resident page
    #: sampled (256 pages/epoch window, ~2 us per hinting fault).
    HINT_FAULT_NS = 2_000.0
    HINT_SAMPLE_PAGES = 256

    def __init__(self) -> None:
        super().__init__()
        self._allocation_counter = 0

    def node_preference(self, page_type: PageType) -> list[int]:
        # Round-robin "local node" assignment: the faulting CPU's node,
        # which alternates across the machine's nodes.
        nodes = self.kernel.nodes_by_speed()
        self._allocation_counter += 1
        local = nodes[self._allocation_counter % len(nodes)]
        rest = [node_id for node_id in nodes if node_id != local]
        return [local] + rest

    def on_epoch_end(self, epoch: int) -> float:
        # The balancer samples pages via hinting faults every epoch.
        return self.HINT_SAMPLE_PAGES * self.HINT_FAULT_NS


@register_policy("vmm-exclusive")
class VmmExclusivePolicy(PlacementPolicy):
    """The HeteroVisor model: lazy SlowMem backing + VMM scan/migrate.

    Parameters
    ----------
    scan_interval_epochs:
        Hotness scans run every this many epochs (1 epoch == 100 ms, so
        the Figure 8 sweep maps intervals 100-500 ms to 1-5 epochs).
    scan_batch_pages:
        Pages examined per scan pass (HeteroVisor batches).
    migrate_batch_pages:
        Batch size used for the Table 6 migration cost lookup.
    """

    name = "vmm-exclusive"

    def __init__(
        self,
        scan_interval_epochs: int = 1,
        scan_batch_pages: int = 16 * 1024,
        migrate_batch_pages: int = 64 * 1024,
        migrate_budget_pages: int = 32 * 1024,
    ) -> None:
        super().__init__()
        if scan_interval_epochs <= 0:
            raise ConfigurationError("scan interval must be positive")
        self.scan_interval_epochs = scan_interval_epochs
        self.scan_batch_pages = scan_batch_pages
        self.migrate_batch_pages = migrate_batch_pages
        self.migrate_budget_pages = migrate_budget_pages
        #: Extent ids found hot last interval, migrated next interval.
        #: The one-interval lag is the staleness that lets the VMM try to
        #: migrate pages the guest has already freed (Section 4.1).
        self._pending_hot: list[int] = []
        self._cursor = 0
        self._epoch_evict_cost_ns = 0.0
        self.scan_cost_ns = 0.0
        self.migration_cost_ns = 0.0
        self.pages_migrated = 0

    def node_preference(self, page_type: PageType) -> list[int]:
        # The guest is heterogeneity-blind; the VMM backs it with SlowMem
        # and only migration ever populates FastMem.
        return self.slow_only()

    def on_epoch_end(self, epoch: int) -> float:
        if (epoch + 1) % self.scan_interval_epochs != 0:
            return 0.0
        overhead = self._migrate_pending()
        overhead += self._scan()
        return overhead

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scan(self) -> float:
        binding = self.binding
        assert binding is not None and binding.tracker is not None
        kernel = binding.kernel
        # Round-robin over the whole VM's extents: the VMM has no idea
        # which pages matter, so everything is scanned, I/O churn included.
        extents = sorted(kernel.extents.values(), key=lambda e: e.extent_id)
        if not extents:
            return 0.0
        self._cursor %= len(extents)
        window = extents[self._cursor:] + extents[: self._cursor]
        report: ScanReport = binding.tracker.scan(
            window, max_pages=self.scan_batch_pages
        )
        self._cursor = (self._cursor + report.extents_scanned) % len(extents)
        slow_ids = set(kernel.slow_node_ids)
        self._pending_hot = [
            extent.extent_id
            for extent in report.hot_extents
            if extent.node_id in slow_ids and not extent.swapped
        ]
        self.scan_cost_ns += report.cost_ns
        return report.cost_ns

    def _migrate_pending(self) -> float:
        binding = self.binding
        assert binding is not None
        engine = binding.migration_engine
        if engine is None or not self._pending_hot:
            self._pending_hot = []
            return 0.0
        kernel = binding.kernel
        fast_ids = kernel.fast_node_ids
        if not fast_ids:
            self._pending_hot = []
            return 0.0
        target = fast_ids[0]
        # Stale extents (freed since the scan) surface as dead ids; model
        # the wasted page walk the VMM pays for them.
        live: list[PageExtent] = []
        dead_pages = 0
        for extent_id in self._pending_hot:
            extent = kernel.extents.get(extent_id)
            if extent is None:
                dead_pages += 64  # representative stale-entry walk batch
            else:
                live.append(extent)
        self._pending_hot = []
        self._epoch_evict_cost_ns = 0.0
        # Cap the attempt at what FastMem can actually admit: free pages
        # plus evictable (not-hot) pages.  Blindly retrying promotions
        # against a FastMem full of hot pages would burn page walks every
        # interval for nothing.
        tracker = binding.tracker
        assert tracker is not None
        fast_node = kernel.nodes[target]
        evictable = sum(
            e.pages
            for e in kernel.extents.values()
            if e.node_id == target
            and not e.swapped
            and tracker.estimate(e) < tracker.config.hot_density
        )
        room = fast_node.free_pages + evictable
        budget = min(self.migrate_budget_pages, room)
        if budget <= 0:
            return 0.0
        report = engine.migrate(
            live,
            target,
            kernel,
            batch_pages=self.migrate_batch_pages,
            evict_with=self._evict_fast,
            budget_pages=budget,
        )
        _move_ns, walk_ns = engine.cost_model.per_page_costs(
            self.migrate_batch_pages
        )
        cost = report.cost_ns + dead_pages * walk_ns + self._epoch_evict_cost_ns
        self.migration_cost_ns += cost
        self.pages_migrated += report.pages_moved
        return cost

    def _evict_fast(self, target_node_id: int, pages_needed: int) -> int:
        """Demote the least-hot FastMem extents to SlowMem to make room."""
        binding = self.binding
        assert binding is not None and binding.tracker is not None
        kernel = binding.kernel
        tracker = binding.tracker
        slow_ids = kernel.slow_node_ids
        if not slow_ids:
            return 0
        # Only pages the tracker no longer considers hot are eviction
        # candidates; a FastMem full of genuinely hot pages stays put.
        victims = sorted(
            (
                e
                for e in kernel.extents.values()
                if e.node_id == target_node_id
                and not e.swapped
                and tracker.estimate(e) < tracker.config.hot_density
            ),
            key=lambda e: tracker.estimate(e),
        )
        engine = binding.migration_engine
        assert engine is not None
        freed = 0
        batch: list[PageExtent] = []
        for extent in victims:
            if freed >= pages_needed:
                break
            need = pages_needed - freed
            if extent.pages > need:
                # Evict only the shortfall, not a whole cold region.
                kernel.split_extent(extent, need)
            batch.append(extent)
            freed += extent.pages
        if not batch:
            return 0
        report = engine.migrate(
            batch, slow_ids[0], kernel, batch_pages=self.migrate_batch_pages
        )
        self._epoch_evict_cost_ns += report.cost_ns
        self.pages_migrated += report.pages_moved
        return report.pages_moved
