"""Deterministic fault injection (the resilience plane).

HeteroOS assumes its mechanisms — access-bit scans, migration passes,
balloon transfers, coordination-channel messages — always succeed; a
datacenter cannot.  This package schedules component faults against the
simulator so every degraded path the paper glosses over is exercised:

* :class:`FaultSpec` — one scheduled fault: a kind, an epoch window, a
  per-opportunity probability, and (for device derating) throttle
  factors.
* :class:`FaultPlan` — a frozen, hashable, pure-literal collection of
  fault specs plus its own seed.  Plans ride inside
  :class:`~repro.config.SimConfig` and
  :class:`~repro.sim.parallel.ExperimentSpec`, and their canonical JSON
  form enters sweep cache keys.
* :class:`FaultInjector` — the runtime: one seeded RNG stream *per
  fault kind* (streams never interleave, so adding a fault of one kind
  cannot shift another kind's draws), per-epoch windowing, fault
  counting, and buffered event records the engine drains into the
  telemetry bus.

Determinism contract: every draw comes from a stream derived from
``FaultPlan.seed`` and the fault kind, so a fixed ``(plan, seed)`` pair
reproduces the same :class:`~repro.sim.stats.RunResult` bit-for-bit.
No-perturbation contract: an empty plan (``FaultPlan.none()``) never
constructs an injector at all — the simulator takes the exact seed code
path.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "KIND_SOURCES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "merge_fault_counts",
]

#: Every fault kind the simulator knows how to inject.
FAULT_KINDS: tuple[str, ...] = (
    "channel-drop",
    "channel-duplicate",
    "migration-abort",
    "balloon-refuse",
    "device-derate",
    "scan-stale",
    "scan-lost",
    "swap-write-error",
)

#: Which component each kind degrades (telemetry event ``source``).
#: heterocontract anchor (``contract-fault-kind``): keys must mirror
#: FAULT_KINDS exactly and every value must name a real project module
#: (statically enforced by ``repro lint --contracts``).
KIND_SOURCES: dict[str, str] = {
    "channel-drop": "vmm.channel",
    "channel-duplicate": "vmm.channel",
    "migration-abort": "vmm.migration",
    "balloon-refuse": "vmm.balloon_backend",
    "device-derate": "hw.timing",
    "scan-stale": "vmm.hotness",
    "scan-lost": "vmm.hotness",
    "swap-write-error": "guestos.swap",
}

#: Kinds whose throttle factors are meaningful.
_DERATE_KINDS = frozenset({"device-derate"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``probability`` is drawn once per injection *opportunity* (a channel
    publish, a migration call, a swap write, ...; one draw per epoch for
    device derating) while the epoch window ``[start_epoch, end_epoch)``
    is active; ``end_epoch=None`` leaves the window open-ended.  The
    throttle factors only apply to ``device-derate`` and must be >= 1
    (a derate never speeds a device up).
    """

    kind: str
    probability: float = 1.0
    start_epoch: int = 0
    end_epoch: "int | None" = None
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )
        if self.start_epoch < 0:
            raise ConfigurationError("fault start epoch must be >= 0")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ConfigurationError(
                "fault window must be non-empty (end_epoch > start_epoch)"
            )
        if self.latency_factor < 1.0 or self.bandwidth_factor < 1.0:
            raise ConfigurationError("derate factors must be >= 1")
        if (
            self.kind not in _DERATE_KINDS
            and (self.latency_factor != 1.0 or self.bandwidth_factor != 1.0)
        ):
            raise ConfigurationError(
                f"throttle factors only apply to device-derate, "
                f"not {self.kind!r}"
            )

    def active_at(self, epoch: int) -> bool:
        """Whether the fault's window covers ``epoch``."""
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch

    def canonical(self) -> dict:
        """JSON-safe ordered mapping (the hashing/serialization form)."""
        return {
            "kind": self.kind,
            "probability": self.probability,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "latency_factor": self.latency_factor,
            "bandwidth_factor": self.bandwidth_factor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "kind",
            "probability",
            "start_epoch",
            "end_epoch",
            "latency_factor",
            "bandwidth_factor",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec fields: {sorted(unknown)}"
            )
        if "kind" not in data:
            raise ConfigurationError("fault spec needs a 'kind'")
        end = data.get("end_epoch")
        return cls(
            kind=str(data["kind"]),
            probability=float(data.get("probability", 1.0)),
            start_epoch=int(data.get("start_epoch", 0)),
            end_epoch=int(end) if end is not None else None,
            latency_factor=float(data.get("latency_factor", 1.0)),
            bandwidth_factor=float(data.get("bandwidth_factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of faults plus the seed for their RNG streams.

    Pure-literal and hashable so plans can live inside frozen
    experiment specs; :meth:`canonical` is the JSON form used for cache
    keys and the ``repro run --faults PLAN.json`` CLI.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: by contract, running with it is *identical*
        (field-by-field) to running with no plan at all."""
        return cls()

    @property
    def empty(self) -> bool:
        return not self.faults

    def kinds(self) -> tuple[str, ...]:
        """Distinct fault kinds in the plan, in first-occurrence order."""
        seen: list[str] = []
        for spec in self.faults:
            if spec.kind not in seen:
                seen.append(spec.kind)
        return tuple(seen)

    def canonical(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.canonical() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields: {sorted(unknown)}"
            )
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, (list, tuple)):
            raise ConfigurationError("fault plan 'faults' must be a list")
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(item) for item in raw_faults),
        )


def merge_fault_counts(
    into: "dict[str, int]", counts: "dict[str, int]"
) -> "dict[str, int]":
    """Accumulate per-kind fault counts into ``into`` (returned).

    The roll-up primitive behind sweep-level fault accounting: each
    ``RunResult.fault_counts`` mapping folds into a sweep-wide total,
    kind by kind.  Unknown kinds are accepted (a newer worker may know
    kinds this process does not) — accounting must never drop data.
    """
    for kind, count in counts.items():
        into[str(kind)] = into.get(str(kind), 0) + int(count)
    return into


def _stream_seed(plan_seed: int, kind: str) -> int:
    """A stable per-kind stream seed (version/platform independent)."""
    digest = hashlib.sha256(f"{plan_seed}:{kind}".encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


@dataclass
class FaultInjector:
    """Runtime fault scheduler: one seeded RNG stream per fault kind.

    Components hold a duck-typed ``faults`` attribute (``None`` by
    default) that the simulation engine points here when the run's plan
    is non-empty; each injection opportunity calls :meth:`fires` and
    degrades gracefully when a spec comes back.  Events buffer until the
    engine drains them into the telemetry bus at epoch end.
    """

    plan: FaultPlan
    epoch: int = 0
    #: kind -> times the fault actually fired.
    counts: dict[str, int] = field(default_factory=dict)
    _streams: dict[str, random.Random] = field(default_factory=dict)
    _by_kind: dict[str, "list[FaultSpec]"] = field(default_factory=dict)
    _events: list = field(default_factory=list)

    def __post_init__(self) -> None:
        for spec in self.plan.faults:
            self._by_kind.setdefault(spec.kind, []).append(spec)
        for kind in self._by_kind:
            self._streams[kind] = random.Random(
                _stream_seed(self.plan.seed, kind)
            )

    def advance_epoch(self, epoch: int) -> None:
        """Move the window clock; called once per epoch by the engine."""
        self.epoch = epoch

    def fires(self, kind: str) -> "FaultSpec | None":
        """Draw for one injection opportunity of ``kind``.

        Returns the first scheduled spec of that kind whose window is
        active and whose probability draw succeeds, recording the fault;
        ``None`` otherwise.  Draws only advance the *kind's* stream, and
        only for window-active specs, so plans compose without
        perturbing each other's schedules.
        """
        specs = self._by_kind.get(kind)
        if not specs:
            return None
        stream = self._streams[kind]
        for spec in specs:
            if not spec.active_at(self.epoch):
                continue
            if stream.random() < spec.probability:
                self.counts[kind] = self.counts.get(kind, 0) + 1
                self._events.append(
                    {
                        "name": "fault-" + kind,
                        "source": KIND_SOURCES[kind],
                        "epoch": self.epoch,
                    }
                )
                return spec
        return None

    def drain_events(self) -> list:
        """Return and clear fault events buffered since the last drain."""
        events = self._events
        self._events = []
        return events
