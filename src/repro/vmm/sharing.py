"""Multi-VM memory sharing policies — the max-min baseline.

"Most VMMs today employ simple but effective max-min fairness-based
resource management ... the resources are first allocated based on the
demands of the VMs to guarantee that each VM receives its basic share ...
Any unused memory is evenly distributed among VMs demanding more than the
fair share (overcommit)" (Section 4.2).

The paper's criticism — reproduced by :class:`MaxMinSharing` — is that
*single-resource* max-min protects fairness on only one memory type (the
scarce one, FastMem).  On every other tier, grants are effectively
first-come-first-served and a memory-hungry VM may balloon out a
neighbour's not-yet-used reserved pages (the Figure 13 failure mode).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.guestos.numa import NodeTier
from repro.vmm.domain import Domain
from repro.vmm.machine import MachineMemory


@dataclass(frozen=True)
class Reclaim:
    """An instruction to balloon pages out of a victim domain."""

    victim: Domain
    tier: NodeTier
    pages: int


@dataclass
class GrantDecision:
    """Outcome of arbitration: pages to grant now (from the free pool)
    plus reclaims whose proceeds also go to the requester."""

    granted_from_pool: int = 0
    reclaims: list[Reclaim] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        return self.granted_from_pool + sum(r.pages for r in self.reclaims)


class SharingPolicy(abc.ABC):
    """Arbitration interface consulted by the balloon back-end."""

    name: str = "sharing"

    @abc.abstractmethod
    def arbitrate(
        self,
        requester: Domain,
        tier: NodeTier,
        pages: int,
        machine: MachineMemory,
        domains: list[Domain],
    ) -> GrantDecision:
        """Decide how much of ``pages`` the requester may receive."""

    def fair_share_pages(
        self, tier: NodeTier, machine: MachineMemory, domains: list[Domain]
    ) -> float:
        """Equal split of a tier's capacity across domains."""
        if not domains:
            return 0.0
        return machine.total_pages(tier) / len(domains)


class MaxMinSharing(SharingPolicy):
    """Single-resource max-min fairness.

    ``protected_tier`` (FastMem by default — the scarce resource) is the
    one resource whose fair share is enforced: no domain may balloon past
    its fair share of it.  Other tiers are granted first-come-first-served
    and, when the pool is dry, taken from whichever neighbour holds the
    most overcommit — or failing that, the most reserved-but-granted
    pages — without regard to that neighbour's fair share.
    """

    name = "max-min"

    def __init__(self, protected_tier: NodeTier = NodeTier.FAST) -> None:
        self.protected_tier = protected_tier

    def arbitrate(
        self,
        requester: Domain,
        tier: NodeTier,
        pages: int,
        machine: MachineMemory,
        domains: list[Domain],
    ) -> GrantDecision:
        want = pages
        if tier is self.protected_tier:
            fair = self.fair_share_pages(tier, machine, domains)
            headroom = max(0, int(fair) - requester.pages(tier))
            want = min(want, headroom)
        if want <= 0:
            return GrantDecision()
        from_pool = min(want, machine.free_pages(tier))
        decision = GrantDecision(granted_from_pool=from_pool)
        shortfall = want - from_pool
        if shortfall > 0 and tier is not self.protected_tier:
            # FCFS scavenging: balloon the shortfall out of neighbours,
            # largest holdings first.  This is the unfairness the paper
            # demonstrates: reserved-but-idle pages are fair game.
            victims = sorted(
                (d for d in domains if d.domain_id != requester.domain_id),
                key=lambda d: d.pages(tier),
                reverse=True,
            )
            for victim in victims:
                if shortfall <= 0:
                    break
                reservation = victim.reservations.get(tier)
                floor = reservation.min_pages // 4 if reservation else 0
                takeable = max(0, victim.pages(tier) - floor)
                take = min(shortfall, takeable)
                if take > 0:
                    decision.reclaims.append(Reclaim(victim, tier, take))
                    shortfall -= take
        return decision
