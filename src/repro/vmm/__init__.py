"""Hypervisor (VMM) substrate.

Models the Xen-side machinery HeteroOS coordinates with: machine-wide
per-type frame pools, guest domains, the on-demand balloon back-end, the
access-bit hotness tracker (HeteroVisor's mechanism), the page-migration
engine with Table 6's batch-dependent costs, the guest/VMM shared-memory
coordination channel, and the multi-VM sharing policies (max-min and
weighted Dominant Resource Fairness).
"""

from repro.vmm.machine import MachineMemory
from repro.vmm.domain import Domain
from repro.vmm.balloon_backend import BalloonBackend
from repro.vmm.hotness import HotnessConfig, HotnessTracker, ScanReport
from repro.vmm.migration import (
    MigrationCostModel,
    MigrationEngine,
    MigrationReport,
    TABLE6_ANCHORS,
)
from repro.vmm.channel import CoordinationChannel
from repro.vmm.sharing import GrantDecision, MaxMinSharing, SharingPolicy
from repro.vmm.drf import WeightedDrf
from repro.vmm.hypervisor import Hypervisor

__all__ = [
    "MachineMemory",
    "Domain",
    "BalloonBackend",
    "HotnessConfig",
    "HotnessTracker",
    "ScanReport",
    "MigrationCostModel",
    "MigrationEngine",
    "MigrationReport",
    "TABLE6_ANCHORS",
    "CoordinationChannel",
    "SharingPolicy",
    "MaxMinSharing",
    "GrantDecision",
    "WeightedDrf",
    "Hypervisor",
]
