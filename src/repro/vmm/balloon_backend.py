"""On-demand allocation balloon — VMM back-end (Figure 5, steps 1-3).

"The back-end in the VMM handles the node-specific requests and also
maintains the per-node (memory type) machine page number (MFN) mapping
for each of the guests.  The front-end can also specify a fallback
strategy when pages from a particular memory type cannot be provided."

Every grant is arbitrated by the configured sharing policy (max-min or
weighted DRF); reclaims the policy orders are executed against the victim
guests' kernels (balloon-out: hide free pages, swap out cold extents).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SharingError
from repro.guestos.numa import NodeTier
from repro.units import Pages
from repro.vmm.domain import Domain
from repro.vmm.machine import MachineMemory
from repro.vmm.sharing import Reclaim, SharingPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guestos.kernel import GuestKernel


class BalloonBackend:
    """Implements :class:`repro.guestos.balloon.BalloonBackendProtocol`."""

    def __init__(self, machine: MachineMemory, policy: SharingPolicy) -> None:
        self.machine = machine
        self.policy = policy
        self.domains: dict[int, Domain] = {}
        self._kernels: dict[int, "GuestKernel"] = {}
        self.reclaimed_pages = 0
        self.granted_pages = 0
        #: Duck-typed :class:`repro.faults.FaultInjector`; ``None``
        #: (the default) keeps the exact fault-free code path.
        self.faults: object = None

    def register_domain(self, domain: Domain) -> None:
        if domain.domain_id in self.domains:
            raise SharingError(f"domain {domain.domain_id} already registered")
        self.domains[domain.domain_id] = domain

    def attach_kernel(self, domain_id: int, kernel: "GuestKernel") -> None:
        if domain_id not in self.domains:
            raise SharingError(f"unknown domain {domain_id}")
        self._kernels[domain_id] = kernel

    # ------------------------------------------------------------------
    # BalloonBackendProtocol
    # ------------------------------------------------------------------

    def request_pages(
        self, domain_id: int, tier: NodeTier, pages: Pages, allow_fallback: bool
    ) -> dict[NodeTier, int]:
        requester = self._domain(domain_id)
        if self.faults is not None and self.faults.fires("balloon-refuse") is not None:
            # Transient refusal: the back-end answers with an empty
            # grant, exactly what a dry machine pool produces — the
            # front-end's shortfall handling (reclaim, swap, drop)
            # degrades the request instead of failing it.
            return {}
        granted: dict[NodeTier, int] = {}
        got = self._grant_tier(requester, tier, pages)
        if got:
            granted[tier] = got
        shortfall = pages - got
        if shortfall > 0 and allow_fallback:
            for other in self._fallback_order(tier):
                if shortfall <= 0:
                    break
                extra = self._grant_tier(requester, other, shortfall)
                if extra:
                    granted[other] = granted.get(other, 0) + extra
                    shortfall -= extra
        return granted

    def return_pages(self, domain_id: int, tier: NodeTier, pages: Pages) -> None:
        domain = self._domain(domain_id)
        ranges = domain.surrender(tier, pages)
        self.machine.free(tier, ranges)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grant_tier(
        self, requester: Domain, tier: NodeTier, pages: Pages
    ) -> Pages:
        decision = self.policy.arbitrate(
            requester, tier, pages, self.machine, list(self.domains.values())
        )
        total = 0
        if decision.granted_from_pool > 0:
            ranges = self.machine.allocate(tier, decision.granted_from_pool)
            requester.record_grant(tier, ranges)
            total += decision.granted_from_pool
        for reclaim in decision.reclaims:
            recovered = self._execute_reclaim(reclaim)
            if recovered > 0:
                ranges = self.machine.allocate(tier, recovered)
                requester.record_grant(tier, ranges)
                total += recovered
        self.granted_pages += total
        return total

    def _execute_reclaim(self, reclaim: Reclaim) -> int:
        """Balloon pages out of the victim; returns pages recovered.

        Only the victim's *idle* (free) pages are taken — ballooning
        cannot forcibly swap out a neighbour's in-use data.  This is
        precisely why a VM that grows late loses under max-min: its
        reserved-but-idle pages are gone, and the pages cannot be pulled
        back once the thief is using them (Section 5.5).
        """
        kernel = self._kernels.get(reclaim.victim.domain_id)
        if kernel is None:
            return 0
        node = kernel.node_for_tier(reclaim.tier)
        hidden = kernel.hide_pages(
            node.node_id, min(reclaim.pages, node.free_pages)
        )
        if hidden <= 0:
            return 0
        ranges = reclaim.victim.surrender(reclaim.tier, hidden)
        self.machine.free(reclaim.tier, ranges)
        self.reclaimed_pages += hidden
        return hidden

    def _fallback_order(self, tier: NodeTier) -> list[NodeTier]:
        """Other tiers by increasing distance in speed rank."""
        others = [t for t in self.machine.pools if t is not tier]
        return sorted(others, key=lambda t: abs(t.rank - tier.rank))

    def _domain(self, domain_id: int) -> Domain:
        domain = self.domains.get(domain_id)
        if domain is None:
            raise SharingError(f"unknown domain {domain_id}")
        return domain
