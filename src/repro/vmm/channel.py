"""Shared-memory coordination channel between guest OS and VMM.

Figure 5 / Section 4.1: "The guest-OS exports a tracking list and an
exception list to the VMM using a shared memory channel.  The tracking
list contains address ranges of contiguous memory regions that the VMM
should track for hotness ... short-lived I/O page cache and buffer cache
pages ... are added to the exception list."  In the other direction the
VMM publishes its hot-page report and exports LLC-miss counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChannelError
from repro.hw.counters import PerfCounters
from repro.mem.extent import PageType


@dataclass
class CoordinationChannel:
    """One guest's mailbox pair with the VMM."""

    domain_id: int
    counters: PerfCounters = field(default_factory=PerfCounters)
    #: Guest -> VMM: region ids worth tracking for hotness.
    tracking_regions: list[str] = field(default_factory=list)
    #: Guest -> VMM: page types never worth tracking or migrating.
    exception_types: set[PageType] = field(
        default_factory=lambda: {PageType.PAGE_TABLE, PageType.DMA}
    )
    #: VMM -> guest: extent ids the tracker found hot, hottest first.
    hot_report: list[int] = field(default_factory=list)
    #: Duck-typed :class:`repro.faults.FaultInjector` (set by the
    #: engine when a fault plan is active); ``None`` keeps the exact
    #: fault-free code path.
    faults: object = None
    _tracking_version: int = 0
    _report_version: int = 0

    # Guest side ---------------------------------------------------------

    def guest_publish_tracking(
        self, regions: list[str], exception_types: set[PageType] | None = None
    ) -> None:
        """Replace the tracking list (and optionally the exception list)."""
        self.tracking_regions = list(regions)
        if exception_types is not None:
            forbidden = exception_types - set(PageType)
            if forbidden:
                raise ChannelError(f"unknown page types: {forbidden}")
            self.exception_types = set(exception_types)
        self._tracking_version += 1

    def guest_read_hot_report(self) -> list[int]:
        """Consume the VMM's latest hot-extent report."""
        report, self.hot_report = self.hot_report, []
        return report

    def guest_read_llc_delta(self) -> float:
        """Relative LLC-miss change (Equation 1 input)."""
        return self.counters.llc_miss_delta()

    # VMM side -----------------------------------------------------------

    def vmm_read_tracking(self) -> tuple[list[str], set[PageType]]:
        return list(self.tracking_regions), set(self.exception_types)

    def vmm_publish_hot(self, extent_ids: list[int]) -> None:
        report = list(extent_ids)
        if self.faults is not None:
            # A shared-memory mailbox message can be lost (the guest
            # sees an empty report and simply skips this interval's
            # guided migration) or retransmitted (duplicate ids, which
            # the guest's validity checks already tolerate).
            if self.faults.fires("channel-drop") is not None:
                report = []
            elif report and self.faults.fires("channel-duplicate") is not None:
                report = report + report
        self.hot_report = report
        self._report_version += 1

    def vmm_record_epoch(self, llc_misses: float, instructions: float) -> None:
        self.counters.record_epoch(llc_misses, instructions)
