"""Access-bit page hotness tracking (the HeteroVisor mechanism).

"HeteroVisor and most software methods capture page hotness by counting
the number of references to a page table entry ... The hotness-tracking
mechanism periodically scans the page table, records the value of the
access bit ..., and resets the bit" (Section 2.3).  The costs this module
charges are exactly the ones Observation 4 itemises: per-PTE scan work,
periodic TLB flushes to force re-walks, and batching effects.

The tracker operates on extents.  An extent's hardware ``accessed`` bit is
set by :meth:`PageExtent.record_access` whenever the workload touched it
during the epoch; a scan reads and clears those bits and refreshes each
extent's scan-side hotness estimate (an EWMA independent of the guest's
own temperature bookkeeping — the VMM cannot see guest state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.hw.tlb import Tlb
from repro.mem.extent import PageExtent
from repro.units import NS_PER_US, Ns, Pages


@dataclass(frozen=True)
class HotnessConfig:
    """Scan cost and classification parameters.

    ``per_pte_scan_ns`` covers the virtualized PTE read+clear including
    the amortised page-table traversal; with a registered reverse map the
    walk shortcut discounts it by ``rmap_discount``.
    """

    scan_batch_pages: int = 32 * 1024  # HeteroVisor's batch (Section 5.2)
    per_pte_scan_ns: float = 1.6 * NS_PER_US
    rmap_discount: float = 0.55
    #: Scan-side EWMA decay for the hotness estimate.
    decay: float = 0.5
    #: An extent is "hot" when the observed per-page access density (the
    #: fraction of its PTE access bits found set per scan, folded through
    #: the temperature EWMA) exceeds this many accesses per page.
    hot_density: float = 4.0
    #: Scans that must observe an extent accessed before it can be
    #: classified hot: access-bit *history*, which keeps one-shot
    #: short-lived pages (I/O churn) from triggering migrations.
    min_observations: int = 4
    #: Extents examined per scan pass, minimum — the per-extent PTE
    #: window shrinks so a scan always samples broad coverage instead of
    #: sinking the whole budget into one giant region.
    min_coverage_extents: int = 32

    def __post_init__(self) -> None:
        if self.scan_batch_pages <= 0:
            raise ConfigurationError("scan batch must be positive")
        if self.per_pte_scan_ns < 0:
            raise ConfigurationError("scan cost must be non-negative")
        if not 0 < self.decay <= 1:
            raise ConfigurationError("decay must be in (0, 1]")


@dataclass
class ScanReport:
    """Result of one hotness scan pass."""

    pages_scanned: Pages = 0
    extents_scanned: int = 0
    hot_extents: list[PageExtent] = field(default_factory=list)
    cost_ns: Ns = 0.0
    tlb_flushes: int = 0


class HotnessTracker:
    """Periodic access-bit scanner with per-extent hotness estimates."""

    def __init__(
        self, config: HotnessConfig | None = None, tlb: Tlb | None = None,
        has_rmap: bool = True,
    ) -> None:
        self.config = config or HotnessConfig()
        self.tlb = tlb or Tlb()
        self.has_rmap = has_rmap
        #: extent id -> scan-side per-page density estimate.
        self._estimates: dict[int, float] = {}
        #: extent id -> number of scans that observed it accessed.
        self._seen: dict[int, int] = {}
        self.total_pages_scanned = 0
        self.total_cost_ns = 0.0
        #: Duck-typed :class:`repro.faults.FaultInjector`; ``None`` (the
        #: default) keeps the exact fault-free code path.
        self.faults: object = None
        #: Last completed scan, kept only under fault injection so a
        #: stale-scan fault can replay it.
        self._last_report: "ScanReport | None" = None

    def scan(
        self,
        extents: Iterable[PageExtent],
        max_pages: "Pages | None" = None,
    ) -> ScanReport:
        """Scan up to ``max_pages`` (default: one batch) of ``extents``.

        Reads and clears the hardware accessed bits, updates hotness
        estimates, charges scan + TLB costs, and classifies hot extents.
        """
        if self.faults is not None:
            if self.faults.fires("scan-lost") is not None:
                # The scan epoch is lost outright (PEBS-style sample
                # loss): no bits read or cleared, no cost, no signal —
                # the consumer simply sees nothing hot this interval.
                return ScanReport()
            if (
                self._last_report is not None
                and self.faults.fires("scan-stale") is not None
            ):
                # The scan delivers last interval's data: same cost,
                # stale hot list.  Dead or already-migrated extents in
                # it are rejected downstream by the guest's validity
                # checks (they pay wasted walk cost, nothing breaks).
                stale = self._last_report
                return ScanReport(
                    pages_scanned=stale.pages_scanned,
                    extents_scanned=stale.extents_scanned,
                    hot_extents=list(stale.hot_extents),
                    cost_ns=stale.cost_ns,
                    tlb_flushes=stale.tlb_flushes,
                )
        budget = max_pages if max_pages is not None else self.config.scan_batch_pages
        report = ScanReport()
        per_pte = self.config.per_pte_scan_ns * (
            self.config.rmap_discount if self.has_rmap else 1.0
        )
        window = max(256, budget // self.config.min_coverage_extents)
        for extent in extents:
            if report.pages_scanned >= budget:
                break
            # The page budget is strict: each extent gets a bounded PTE
            # window so one giant region cannot sink the whole budget —
            # the density sample is unbiased either way.
            examined = min(
                extent.pages, window, budget - report.pages_scanned
            )
            accessed, _dirty = extent.clear_hardware_bits()
            # Per-page access density observed through the PTE bits; the
            # temperature EWMA stands in for the per-page bit counts a
            # real scanner accumulates across passes.
            if accessed and extent.pages > 0:
                density = extent.temperature / extent.pages
                self._seen[extent.extent_id] = (
                    self._seen.get(extent.extent_id, 0) + 1
                )
            else:
                density = 0.0
            estimate = (
                self._estimates.get(extent.extent_id, 0.0) * self.config.decay
                + density * (1.0 - self.config.decay)
            )
            self._estimates[extent.extent_id] = estimate
            report.pages_scanned += examined
            report.extents_scanned += 1
            report.cost_ns += examined * per_pte
            if (
                estimate >= self.config.hot_density
                and self._seen.get(extent.extent_id, 0)
                >= self.config.min_observations
            ):
                report.hot_extents.append(extent)
        if report.pages_scanned > 0:
            # One full flush per scan batch so future accesses re-set bits.
            batches = -(-report.pages_scanned // self.config.scan_batch_pages)
            for _ in range(batches):
                report.cost_ns += self.tlb.flush()
                report.tlb_flushes += 1
        report.hot_extents.sort(
            key=lambda e: self._estimates.get(e.extent_id, 0.0), reverse=True
        )
        self.total_pages_scanned += report.pages_scanned
        self.total_cost_ns += report.cost_ns
        if self.faults is not None:
            self._last_report = ScanReport(
                pages_scanned=report.pages_scanned,
                extents_scanned=report.extents_scanned,
                hot_extents=list(report.hot_extents),
                cost_ns=report.cost_ns,
                tlb_flushes=report.tlb_flushes,
            )
        return report

    def estimate(self, extent: PageExtent) -> float:
        """Current scan-side hotness estimate for an extent."""
        return self._estimates.get(extent.extent_id, 0.0)

    def observations(self, extent: PageExtent) -> int:
        """How many scans have observed the extent accessed."""
        return self._seen.get(extent.extent_id, 0)

    def forget(self, extents: Sequence[PageExtent]) -> None:
        """Drop estimates for dead extents."""
        for extent in extents:
            self._estimates.pop(extent.extent_id, None)
            self._seen.pop(extent.extent_id, None)
