"""The hypervisor facade.

Owns the machine memory, guest domains, the balloon back-end with its
sharing policy, the hotness tracker, the migration engine, the reverse
map, and one coordination channel per domain.  The simulation engines
(:mod:`repro.sim.engine`, :mod:`repro.sim.multi_vm`) and the placement
policies interact with the VMM exclusively through this class.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SharingError
from repro.guestos.balloon import BalloonFrontend, TierReservation
from repro.guestos.numa import MemoryNode, NodeTier, build_node
from repro.hw.memdevice import MemoryDevice
from repro.hw.tlb import Tlb
from repro.mem.rmap import ReverseMap
from repro.units import bytes_of_pages
from repro.vmm.balloon_backend import BalloonBackend
from repro.vmm.channel import CoordinationChannel
from repro.vmm.domain import Domain
from repro.vmm.hotness import HotnessConfig, HotnessTracker
from repro.vmm.machine import MachineMemory
from repro.vmm.migration import MigrationEngine
from repro.vmm.sharing import MaxMinSharing, SharingPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guestos.kernel import GuestKernel


class Hypervisor:
    """Machine-wide VMM state and services."""

    def __init__(
        self,
        devices: dict[NodeTier, MemoryDevice],
        sharing_policy: SharingPolicy | None = None,
        hotness_config: HotnessConfig | None = None,
        node_builder=None,
    ) -> None:
        self.machine = MachineMemory(devices)
        #: How guest NUMA nodes are constructed; the array-backed fast
        #: path substitutes ``repro.sim.fast.fast_build_node`` here.
        self._node_builder = node_builder if node_builder is not None else build_node
        self.sharing_policy = sharing_policy or MaxMinSharing()
        self.balloon_backend = BalloonBackend(self.machine, self.sharing_policy)
        self.tlb = Tlb()
        self.migration_engine = MigrationEngine(tlb=self.tlb)
        self.rmap = ReverseMap()
        self.channels: dict[int, CoordinationChannel] = {}
        self.trackers: dict[int, HotnessTracker] = {}
        self._hotness_config = hotness_config or HotnessConfig()
        self._domain_ids = itertools.count(1)
        self.domains: dict[int, Domain] = {}
        self.kernels: dict[int, "GuestKernel"] = {}

    # ------------------------------------------------------------------
    # Domain lifecycle
    # ------------------------------------------------------------------

    def create_domain(
        self,
        name: str,
        reservations: dict[NodeTier, TierReservation],
        weights: dict[NodeTier, float] | None = None,
    ) -> Domain:
        """Create a domain and grant its boot (minimum) reservations."""
        domain_id = next(self._domain_ids)
        domain = Domain(
            domain_id=domain_id,
            name=name,
            reservations=dict(reservations),
        )
        if weights:
            domain.weights.update(weights)
        for tier, reservation in reservations.items():
            if reservation.min_pages > 0:
                ranges = self.machine.allocate_exact_or_raise(
                    tier, reservation.min_pages
                )
                domain.record_grant(tier, ranges)
        self.domains[domain_id] = domain
        self.balloon_backend.register_domain(domain)
        self.channels[domain_id] = CoordinationChannel(domain_id=domain_id)
        self.trackers[domain_id] = HotnessTracker(
            config=self._hotness_config, tlb=self.tlb
        )
        return domain

    def build_guest_nodes(self, domain: Domain) -> dict[int, MemoryNode]:
        """Build the guest's NUMA nodes sized at each tier's *maximum*
        (balloonable) capacity; the kernel hides the unreserved part."""
        nodes: dict[int, MemoryNode] = {}
        base_frame = 0
        node_id = 0
        for tier in sorted(domain.reservations, key=lambda t: t.rank):
            reservation = domain.reservations[tier]
            if reservation.max_pages <= 0:
                continue
            device = self.machine.devices[tier].with_capacity(
                bytes_of_pages(reservation.max_pages)
            )
            nodes[node_id] = self._node_builder(node_id, tier, device, base_frame)
            base_frame += reservation.max_pages
            node_id += 1
        if not nodes:
            raise ConfigurationError(f"domain {domain.name!r} has no memory")
        return nodes

    def attach_kernel(self, domain: Domain, kernel: "GuestKernel") -> None:
        """Register a booted guest kernel and hide its unreserved span."""
        if domain.domain_id in self.kernels:
            raise SharingError(f"domain {domain.domain_id} already attached")
        self.kernels[domain.domain_id] = kernel
        self.balloon_backend.attach_kernel(domain.domain_id, kernel)
        for node in kernel.nodes.values():
            reservation = domain.reservations.get(node.tier)
            if reservation is None:
                continue
            beyond_min = node.total_pages - reservation.min_pages
            if beyond_min > 0:
                hidden = kernel.hide_pages(node.node_id, beyond_min)
                if hidden < beyond_min:
                    raise ConfigurationError(
                        f"could not hide unreserved span on node {node.node_id}"
                    )

    def make_balloon_frontend(self, domain: Domain) -> BalloonFrontend:
        return BalloonFrontend(
            domain_id=domain.domain_id,
            backend=self.balloon_backend,
            reservations=dict(domain.reservations),
        )

    # ------------------------------------------------------------------
    # Per-domain services
    # ------------------------------------------------------------------

    def channel(self, domain_id: int) -> CoordinationChannel:
        try:
            return self.channels[domain_id]
        except KeyError:
            raise SharingError(f"unknown domain {domain_id}") from None

    def tracker(self, domain_id: int) -> HotnessTracker:
        try:
            return self.trackers[domain_id]
        except KeyError:
            raise SharingError(f"unknown domain {domain_id}") from None

    def kernel(self, domain_id: int) -> "GuestKernel":
        try:
            return self.kernels[domain_id]
        except KeyError:
            raise SharingError(f"domain {domain_id} has no kernel") from None
