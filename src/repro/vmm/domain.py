"""Guest-VM domain state kept by the VMM.

A domain records, per memory tier: its boot reservation (min/max), the
machine frames currently granted, and the DRF resource weight.  The VMM's
view is deliberately coarse — "the VMM's memory management data structures
are coarse grained and treat the entire guest-VM as an application"
(Observation 5); everything finer lives in the guest kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SharingError
from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.mem.frames import FrameRange

#: Paper's static DRF weights: FastMem counts double (Section 4.2).
DEFAULT_WEIGHTS: dict[NodeTier, float] = {
    NodeTier.FAST: 2.0,
    NodeTier.MEDIUM: 1.5,
    NodeTier.SLOW: 1.0,
}


@dataclass
class Domain:
    """One guest VM as the VMM sees it."""

    domain_id: int
    name: str
    reservations: dict[NodeTier, TierReservation]
    weights: dict[NodeTier, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    #: Machine frames granted per tier (reservation + ballooned).
    granted_frames: dict[NodeTier, list[FrameRange]] = field(default_factory=dict)
    granted_pages: dict[NodeTier, int] = field(default_factory=dict)
    #: Reclaim work (ns) queued by the VMM, charged at the next epoch.
    pending_overhead_ns: float = 0.0

    def __post_init__(self) -> None:
        if not self.reservations:
            raise ConfigurationError(f"domain {self.name!r} has no reservations")
        for tier in self.reservations:
            self.granted_frames.setdefault(tier, [])
            self.granted_pages.setdefault(tier, 0)
            self.weights.setdefault(tier, 1.0)

    def reservation(self, tier: NodeTier) -> TierReservation:
        try:
            return self.reservations[tier]
        except KeyError:
            raise SharingError(
                f"domain {self.name!r} has no reservation for {tier.value}"
            ) from None

    def pages(self, tier: NodeTier) -> int:
        return self.granted_pages.get(tier, 0)

    def overcommit_pages(self, tier: NodeTier) -> int:
        """Pages held beyond the boot minimum (reclaimable by DRF)."""
        reservation = self.reservations.get(tier)
        minimum = reservation.min_pages if reservation else 0
        return max(0, self.pages(tier) - minimum)

    def record_grant(self, tier: NodeTier, ranges: list[FrameRange]) -> None:
        pages = sum(fr.count for fr in ranges)
        self.granted_frames.setdefault(tier, []).extend(ranges)
        self.granted_pages[tier] = self.granted_pages.get(tier, 0) + pages

    def surrender(self, tier: NodeTier, pages: int) -> list[FrameRange]:
        """Remove ``pages`` worth of granted frames (balloon-out path)."""
        if pages <= 0:
            return []
        if pages > self.pages(tier):
            raise SharingError(
                f"domain {self.name!r}: surrender of {pages} {tier.value} "
                f"pages but only {self.pages(tier)} granted"
            )
        surrendered: list[FrameRange] = []
        remaining = pages
        stash = self.granted_frames[tier]
        while remaining > 0:
            frame_range = stash.pop()
            if frame_range.count > remaining:
                keep, give = frame_range.split(frame_range.count - remaining)
                stash.append(keep)
                frame_range = give
            surrendered.append(frame_range)
            remaining -= frame_range.count
        self.granted_pages[tier] -= pages
        return surrendered

    def dominant_share(
        self, capacities: dict[NodeTier, int]
    ) -> tuple[float, NodeTier]:
        """Weighted dominant share (Algorithm 1 line 10) and its tier."""
        best = (0.0, NodeTier.SLOW)
        for tier, pages in self.granted_pages.items():
            capacity = capacities.get(tier, 0)
            if capacity <= 0:
                continue
            share = self.weights.get(tier, 1.0) * pages / capacity
            if share > best[0]:
                best = (share, tier)
        return best
