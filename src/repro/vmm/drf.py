"""Weighted Dominant Resource Fairness (Algorithm 1, Section 4.2).

Each memory type is a resource; a domain's *dominant share* is the
maximum, over tiers, of ``weight * granted / capacity``.  Requests are
served in ascending dominant-share order, so the VM that has consumed the
smallest weighted share of its dominant resource goes first.  When the
machine cannot cover a request, DRF reclaims *overcommit* pages (beyond
boot minimum) from the domain with the highest dominant share — never a
victim's reserved minimum, which is how DRF protects the Graphchi VM's
SlowMem in Figure 13.

DRF is strategy-proof and Pareto-efficient (Ghodsi et al., NSDI'11): a VM
inflating its stated demand only raises its own dominant share, making
the ballooning mechanism reclaim from it sooner.
"""

from __future__ import annotations

from repro.guestos.numa import NodeTier
from repro.vmm.domain import Domain
from repro.vmm.machine import MachineMemory
from repro.vmm.sharing import GrantDecision, Reclaim, SharingPolicy


class WeightedDrf(SharingPolicy):
    """Weighted DRF arbitration over memory tiers."""

    name = "weighted-drf"

    def dominant_shares(
        self, machine: MachineMemory, domains: list[Domain]
    ) -> dict[int, float]:
        """Current dominant share per domain id (Algorithm 1 line 10)."""
        capacities = {
            tier: machine.total_pages(tier) for tier in machine.pools
        }
        return {
            domain.domain_id: domain.dominant_share(capacities)[0]
            for domain in domains
        }

    def arbitrate(
        self,
        requester: Domain,
        tier: NodeTier,
        pages: int,
        machine: MachineMemory,
        domains: list[Domain],
    ) -> GrantDecision:
        shares = self.dominant_shares(machine, domains)
        my_share = shares.get(requester.domain_id, 0.0)

        from_pool = min(pages, machine.free_pages(tier))
        decision = GrantDecision(granted_from_pool=from_pool)
        shortfall = pages - from_pool
        if shortfall <= 0:
            return decision

        # Algorithm 1's else-branch: capacity exhausted.  Reclaim
        # overcommit from domains with a *strictly higher* dominant share
        # than the requester — the queue-ordering property expressed as a
        # reclaim rule.  Reserved minimums are never touched.
        candidates = sorted(
            (
                d
                for d in domains
                if d.domain_id != requester.domain_id
                and shares.get(d.domain_id, 0.0) > my_share
                and d.overcommit_pages(tier) > 0
            ),
            key=lambda d: shares[d.domain_id],
            reverse=True,
        )
        for victim in candidates:
            if shortfall <= 0:
                break
            take = min(shortfall, victim.overcommit_pages(tier))
            if take > 0:
                decision.reclaims.append(Reclaim(victim, tier, take))
                shortfall -= take
        return decision
