"""Page migration engine with Table 6's batch-dependent costs.

Table 6 measures the two components of a page move in a virtualized
system: the page-table walk (validity checks, PTE updates) and the data
copy, both *per page*, both shrinking as the batch grows because tree
traversals and flushes amortise:

    batch   T_page_move (us)   T_page_walk (us)
    8K          25.5               43.21
    64K         15.7               26.32
    128K        11.12              10.25

:class:`MigrationCostModel` interpolates those anchors in log2(batch)
space.  :class:`MigrationEngine` executes guest-controlled moves (the
guest kernel performs the actual relocation and its validity checks —
Section 4.1) and charges walk + copy + shootdown costs.  Moves rejected
by the guest (dead/unmigratable pages) still pay the walk — that wasted
work is exactly what the VMM-exclusive approach suffers from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

#: evict_with(target_node_id, pages_needed) -> pages actually freed.
EvictionCallback = Callable[[int, int], int]

from repro.errors import AllocationError, MigrationError, OutOfMemoryError
from repro.guestos.kernel import GuestKernel
from repro.hw.tlb import Tlb
from repro.mem.extent import PageExtent
from repro.units import NS_PER_US, Ns, Pages

#: batch pages -> (per-page move ns, per-page walk ns).  Table 6.
TABLE6_ANCHORS: dict[int, tuple[float, float]] = {
    8 * 1024: (25.5 * NS_PER_US, 43.21 * NS_PER_US),
    64 * 1024: (15.7 * NS_PER_US, 26.32 * NS_PER_US),
    128 * 1024: (11.12 * NS_PER_US, 10.25 * NS_PER_US),
}


class MigrationCostModel:
    """Per-page move/walk costs as a function of batch size."""

    def __init__(
        self, anchors: dict[int, tuple[float, float]] | None = None
    ) -> None:
        source = anchors or TABLE6_ANCHORS
        if len(source) < 2:
            raise MigrationError("cost model needs at least two anchors")
        self._points = sorted(
            (math.log2(batch), costs[0], costs[1])
            for batch, costs in source.items()
        )

    def per_page_costs(self, batch_pages: int) -> tuple[float, float]:
        """(move_ns, walk_ns) per page for a given batch size; clamped
        log-linear interpolation between the Table 6 anchors."""
        if batch_pages <= 0:
            raise MigrationError("batch size must be positive")
        x = math.log2(batch_pages)
        points = self._points
        if x <= points[0][0]:
            return points[0][1], points[0][2]
        if x >= points[-1][0]:
            return points[-1][1], points[-1][2]
        for (x0, m0, w0), (x1, m1, w1) in zip(points, points[1:]):
            if x <= x1:
                t = (x - x0) / (x1 - x0)
                return m0 + t * (m1 - m0), w0 + t * (w1 - w0)
        raise MigrationError("unreachable")  # pragma: no cover

    def migration_cost_ns(self, pages: Pages, batch_pages: Pages) -> Ns:
        """Total walk+copy cost for migrating ``pages`` at ``batch_pages``."""
        move, walk = self.per_page_costs(batch_pages)
        return pages * (move + walk)


@dataclass
class MigrationReport:
    """Outcome of one migration pass."""

    pages_moved: Pages = 0
    pages_failed: Pages = 0
    pages_rejected: Pages = 0
    extents_moved: int = 0
    cost_ns: Ns = 0.0
    evicted_pages: Pages = 0

    def merge(self, other: "MigrationReport") -> None:
        self.pages_moved += other.pages_moved
        self.pages_failed += other.pages_failed
        self.pages_rejected += other.pages_rejected
        self.extents_moved += other.extents_moved
        self.cost_ns += other.cost_ns
        self.evicted_pages += other.evicted_pages


@dataclass
class MigrationEngine:
    """Executes extent moves through a guest kernel, charging costs.

    ``stall_fraction`` is the share of the raw walk+copy cost that stalls
    the application: migration batches run concurrently with the guest on
    spare cores, so only TLB shootdowns, page-lock contention, and the
    final remap serialize with it (the batching columns of Table 6 exist
    precisely because this overlap grows with batch size).
    """

    cost_model: MigrationCostModel = field(default_factory=MigrationCostModel)
    tlb: Tlb = field(default_factory=Tlb)
    default_batch_pages: Pages = 64 * 1024
    stall_fraction: float = 0.3
    total: MigrationReport = field(default_factory=MigrationReport)
    #: Report accumulating the pass bracketed by begin_pass()/commit_pass();
    #: ``None`` when no pass is open.
    in_flight: "MigrationReport | None" = None
    #: Optional ``callback(kind, report)`` invoked at each pass boundary
    #: with kind "begin" | "commit" | "abort".  Duck-typed so telemetry
    #: (repro.obs, a higher layer) can attach without an import here.
    observer: "Callable[[str, MigrationReport], None] | None" = None
    #: Duck-typed :class:`repro.faults.FaultInjector`; ``None`` (the
    #: default) keeps the exact fault-free code path.
    faults: object = None

    # ------------------------------------------------------------------
    # Pass bracketing
    # ------------------------------------------------------------------
    #
    # A migration *pass* is the unit the epoch engine accounts: open it,
    # run one or more migrate() calls, then commit (fold into ``total``)
    # or abort (discard — the pass never happened, e.g. the epoch was
    # cancelled mid-flight).  ``migrate()`` brackets itself when called
    # outside a pass, so single-shot callers need no ceremony.

    def begin_pass(self) -> MigrationReport:
        """Open a migration pass; subsequent :meth:`migrate` calls
        accumulate into it until :meth:`commit_pass` or
        :meth:`abort_pass`."""
        if self.in_flight is not None:
            raise MigrationError("migration pass already in flight")
        self.in_flight = MigrationReport()
        if self.observer is not None:
            self.observer("begin", self.in_flight)
        return self.in_flight

    def commit_pass(self) -> MigrationReport:
        """Close the open pass and fold it into :attr:`total`."""
        if self.in_flight is None:
            raise MigrationError("no migration pass in flight")
        report = self.in_flight
        self.in_flight = None
        self.total.merge(report)
        if self.observer is not None:
            self.observer("commit", report)
        return report

    def abort_pass(self) -> MigrationReport:
        """Close the open pass *without* folding it into :attr:`total`
        (the work is discarded, as when an epoch is cancelled)."""
        if self.in_flight is None:
            raise MigrationError("no migration pass in flight")
        report = self.in_flight
        self.in_flight = None
        if self.observer is not None:
            self.observer("abort", report)
        return report

    def migrate(
        self,
        extents: Sequence[PageExtent],
        target_node_id: int,
        kernel: GuestKernel,
        batch_pages: int | None = None,
        evict_with: "EvictionCallback | None" = None,
        budget_pages: int | None = None,
    ) -> MigrationReport:
        """Move ``extents`` to ``target_node_id``.

        At most ``budget_pages`` pages move per call (real systems bound
        per-interval migration work); an extent straddling the budget is
        split and only the in-budget piece moves.  When the target is
        full and ``evict_with`` is provided, it is asked to make room
        (returning pages freed); otherwise the move counts as failed.
        Rejected moves (dead extents, unmigratable types, stale targets)
        charge the walk cost only.
        """
        owns_pass = self.in_flight is None
        if owns_pass:
            self.begin_pass()
        abort_fault = (
            self.faults.fires("migration-abort")
            if self.faults is not None
            else None
        )
        batch = batch_pages or self.default_batch_pages
        move_ns, walk_ns = self.cost_model.per_page_costs(batch)
        report = MigrationReport()
        #: Successful moves this call, oldest first, for abort rollback.
        undo: "list[tuple[PageExtent, int]]" = []
        remaining_budget = budget_pages if budget_pages is not None else None
        for extent in extents:
            if remaining_budget is not None and remaining_budget <= 0:
                break
            if extent.swapped:
                continue
            if extent.node_id == target_node_id:
                continue
            if (
                remaining_budget is not None
                and extent.pages > remaining_budget
            ):
                try:
                    kernel.split_extent(extent, remaining_budget)
                except (AllocationError, MigrationError):
                    continue
                # ``extent`` now holds exactly the in-budget prefix.
            if remaining_budget is not None:
                remaining_budget -= extent.pages
            source_node_id = extent.node_id
            try:
                moved = self._move_once(
                    extent, target_node_id, kernel, evict_with, report
                )
            except (AllocationError, MigrationError):
                # Guest validity checks rejected the page: walk wasted.
                report.pages_rejected += extent.pages
                report.cost_ns += (
                    extent.pages * walk_ns * self.stall_fraction
                )
                continue
            if moved:
                undo.append((extent, source_node_id))
                report.pages_moved += extent.pages
                report.extents_moved += 1
                report.cost_ns += (
                    extent.pages * (move_ns + walk_ns) * self.stall_fraction
                )
                report.cost_ns += self.tlb.shootdown()
            else:
                report.pages_failed += extent.pages
                report.cost_ns += (
                    extent.pages * walk_ns * self.stall_fraction
                )
        if abort_fault is not None:
            self._roll_back(undo, kernel, move_ns, report)
        self.in_flight.merge(report)
        if owns_pass:
            if abort_fault is not None:
                self.abort_pass()
            else:
                self.commit_pass()
        return report

    def _roll_back(
        self,
        undo: "list[tuple[PageExtent, int]]",
        kernel: GuestKernel,
        move_ns: float,
        report: MigrationReport,
    ) -> None:
        """Unwind an aborted pass's moves (newest first), converting
        their accounting to wasted work.

        Every page moved is copied *back* to its source node — the
        abort-mid-copy degradation: all the copy cost is paid, nothing
        lands.  A rollback blocked by the source filling up in the
        meantime leaves that extent at the target (still a consistent
        placement) rather than risking a second failure.
        """
        for extent, source_node_id in reversed(undo):
            try:
                kernel.move_extent(extent, source_node_id)
            except (AllocationError, MigrationError, OutOfMemoryError):
                continue
            report.pages_moved -= extent.pages
            report.extents_moved -= 1
            report.pages_failed += extent.pages
            # The copy-back is real data movement and stalls like one.
            report.cost_ns += extent.pages * move_ns * self.stall_fraction
            report.cost_ns += self.tlb.shootdown()

    def _move_once(
        self,
        extent: PageExtent,
        target_node_id: int,
        kernel: GuestKernel,
        evict_with: "EvictionCallback | None",
        report: MigrationReport,
    ) -> bool:
        try:
            kernel.move_extent(extent, target_node_id)
            return True
        except OutOfMemoryError:
            if evict_with is None:
                return False
            freed = evict_with(target_node_id, extent.pages)
            report.evicted_pages += freed
            if freed < extent.pages:
                return False
            kernel.move_extent(extent, target_node_id)
            return True
