"""Machine-wide memory: one frame pool per memory tier.

The VMM owns all machine frames; guests receive reservations at boot and
further grants through the balloon back-end.  The per-tier split is the
"per-node (memory type) machine page number (MFN) mapping" back-end state
of Section 3.1.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import MemoryDevice
from repro.mem.frames import FramePool, FrameRange
from repro.units import pages_of_bytes


class MachineMemory:
    """Per-tier machine frame pools."""

    def __init__(self, devices: dict[NodeTier, MemoryDevice]) -> None:
        if not devices:
            raise ConfigurationError("machine needs at least one memory device")
        self.devices = dict(devices)
        self.pools: dict[NodeTier, FramePool] = {}
        base = 0
        for tier in sorted(devices, key=lambda t: t.rank):
            device = devices[tier]
            frames = pages_of_bytes(device.capacity_bytes)
            if frames <= 0:
                raise ConfigurationError(
                    f"tier {tier.value}: device has no capacity"
                )
            self.pools[tier] = FramePool(base, frames, name=tier.value)
            base += frames

    def total_pages(self, tier: NodeTier) -> int:
        return self.pools[tier].total_frames

    def free_pages(self, tier: NodeTier) -> int:
        return self.pools[tier].free_frames

    def allocate(self, tier: NodeTier, pages: int) -> list[FrameRange]:
        pool = self.pools.get(tier)
        if pool is None:
            raise ConfigurationError(f"no pool for tier {tier.value}")
        return pool.allocate_scattered(pages)

    def free(self, tier: NodeTier, ranges: list[FrameRange]) -> None:
        pool = self.pools.get(tier)
        if pool is None:
            raise ConfigurationError(f"no pool for tier {tier.value}")
        for frame_range in ranges:
            pool.free(frame_range)

    def allocate_exact_or_raise(self, tier: NodeTier, pages: int) -> list[FrameRange]:
        """Allocate exactly ``pages`` or raise without side effects."""
        if self.free_pages(tier) < pages:
            raise OutOfMemoryError(
                f"tier {tier.value}: {pages} pages requested, "
                f"{self.free_pages(tier)} free"
            )
        return self.allocate(tier, pages)
