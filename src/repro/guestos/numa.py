"""Heterogeneity-aware NUMA node abstraction (Principle 1).

Each memory *type* becomes one guest NUMA node — the paper enables the
normally-disabled guest NUMA support via the fake-NUMA patch and adds "a
special flag ... to the node structure" distinguishing memory types.
:class:`NodeTier` is that flag (with a MEDIUM tier supporting the
multi-level-memory extension discussed in Section 4.3).

SlowMem nodes carry the classic DMA + NORMAL zone split; FastMem nodes a
single unified zone (Section 3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.guestos.zone import Zone, ZoneKind, make_zone, zone_preference
from repro.hw.memdevice import MemoryDevice
from repro.mem.extent import PageType
from repro.mem.frames import FrameRange
from repro.units import MIB, PAGE_SIZE, pages_of_bytes

#: Size of the DMA zone carved from SlowMem nodes.
DMA_ZONE_BYTES = 16 * MIB


class NodeTier(enum.Enum):
    """The memory-type flag added to the node structure."""

    FAST = "fastmem"
    MEDIUM = "mediummem"
    SLOW = "slowmem"

    @property
    def rank(self) -> int:
        """Lower rank = faster tier."""
        return {"fastmem": 0, "mediummem": 1, "slowmem": 2}[self.value]


@dataclass
class MemoryNode:
    """One guest NUMA node backed by one memory device."""

    node_id: int
    tier: NodeTier
    device: MemoryDevice
    zones: list[Zone] = field(default_factory=list)

    @property
    def is_fastmem(self) -> bool:
        return self.tier is NodeTier.FAST

    @property
    def total_pages(self) -> int:
        return sum(zone.total_pages for zone in self.zones)

    @property
    def free_pages(self) -> int:
        return sum(zone.free_pages for zone in self.zones)

    @property
    def used_pages(self) -> int:
        return self.total_pages - self.free_pages

    @property
    def under_pressure(self) -> bool:
        return any(zone.under_pressure for zone in self.zones)

    def zones_for(self, page_type: PageType) -> list[Zone]:
        """Zones eligible to serve ``page_type``, in preference order."""
        preference = zone_preference(page_type)
        by_kind = {zone.kind: zone for zone in self.zones}
        return [by_kind[kind] for kind in preference if kind in by_kind]

    def allocate_pages(self, pages: int, page_type: PageType) -> list[FrameRange]:
        """Allocate from the first eligible zone with room; no splitting
        across zones (matching Linux's zone fallback walk)."""
        eligible = self.zones_for(page_type)
        if not eligible:
            raise OutOfMemoryError(
                f"node {self.node_id}: no zone serves {page_type.value}"
            )
        for zone in eligible:
            if zone.free_pages >= pages:
                return zone.buddy.allocate_pages(pages)
        raise OutOfMemoryError(
            f"node {self.node_id}: {pages} pages of {page_type.value} "
            f"not available ({self.free_pages} free)"
        )

    def allocate_up_to(
        self, pages: int, page_type: PageType
    ) -> list[FrameRange]:
        """Best-effort allocation: take what is available from eligible
        zones, in preference order; may return fewer pages than asked."""
        granted: list[FrameRange] = []
        remaining = pages
        for zone in self.zones_for(page_type):
            take = min(remaining, zone.free_pages)
            if take > 0:
                granted.extend(zone.buddy.allocate_pages(take))
                remaining -= take
            if remaining == 0:
                break
        return granted

    def free_pages_for(self, page_type: PageType) -> int:
        """Free pages in zones eligible to serve ``page_type``."""
        return sum(zone.free_pages for zone in self.zones_for(page_type))

    def free_ranges(self, ranges: list[FrameRange]) -> None:
        """Return frame ranges to whichever zone owns them."""
        for frame_range in ranges:
            zone = self._zone_owning(frame_range.start)
            zone.buddy.free_range(frame_range)

    def _zone_owning(self, frame: int) -> Zone:
        for zone in self.zones:
            base = zone.buddy.base
            if base <= frame < base + zone.buddy.total_frames:
                return zone
        raise OutOfMemoryError(f"node {self.node_id}: frame {frame} not mine")


def build_node(
    node_id: int,
    tier: NodeTier,
    device: MemoryDevice,
    base_frame: int = 0,
    buddy_factory=None,
    node_cls: "type[MemoryNode] | None" = None,
) -> MemoryNode:
    """Construct a node with the tier-appropriate zone layout.

    ``buddy_factory``/``node_cls`` substitute the array-backed
    allocator and node from ``repro.sim.fast``; the default layout and
    zone arithmetic are identical either way.
    """
    total_pages = pages_of_bytes(device.capacity_bytes)
    if total_pages <= 0:
        raise ConfigurationError(f"node {node_id}: device has no capacity")
    make_node = node_cls if node_cls is not None else MemoryNode
    node = make_node(node_id=node_id, tier=tier, device=device)

    def _zone(kind: ZoneKind, base: int, frames: int) -> Zone:
        return make_zone(kind, base, frames, buddy_factory=buddy_factory)

    if tier is NodeTier.FAST:
        node.zones.append(_zone(ZoneKind.UNIFIED, base_frame, total_pages))
        return node
    dma_pages = min(DMA_ZONE_BYTES // PAGE_SIZE, max(1, total_pages // 16))
    normal_pages = total_pages - dma_pages
    if normal_pages <= 0:
        node.zones.append(_zone(ZoneKind.NORMAL, base_frame, total_pages))
        return node
    node.zones.append(_zone(ZoneKind.DMA, base_frame, dma_pages))
    node.zones.append(
        _zone(ZoneKind.NORMAL, base_frame + dma_pages, normal_pages)
    )
    return node
