"""The guest kernel: ties the subsystems together.

:class:`GuestKernel` is what placement policies program against.  It owns
the heterogeneity-aware NUMA nodes, routes allocation requests through
per-CPU lists and zone buddy allocators along a policy-supplied node
preference order, keeps the per-subsystem allocation statistics that
drive demand-based FastMem prioritization (Section 3.2), and performs
guest-controlled extent moves for the migration engine.

Allocation statistics
---------------------
For every :class:`~repro.mem.extent.PageType` the kernel counts requested
pages and pages that landed on a FastMem node, per epoch and cumulatively.
``FastMem allocation miss ratio`` (Figure 10) is
``1 - fast_granted / requested``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError, SwapWriteError
from repro.guestos.balloon import BalloonFrontend
from repro.guestos.lru import SplitLru
from repro.guestos.numa import MemoryNode, NodeTier
from repro.guestos.pagecache import PageCache
from repro.guestos.percpu import PerCpuFreeLists
from repro.guestos.slab import SlabAllocator
from repro.guestos.swap import SwapDevice
from repro.guestos.vma import AddressSpace
from repro.mem.extent import ExtentState, PageExtent, PageType
from repro.mem.frames import FrameRange
from repro.units import GIB, Ns, Pages, pages_of_bytes

#: Requests at or below this many pages take the per-CPU fast path.
PERCPU_THRESHOLD_PAGES = 16

#: PTEs per page-table page (x86-64: 512 eight-byte entries).
PTES_PER_PT_PAGE = 512


@dataclass
class AllocStats:
    """Per-page-type allocation accounting."""

    requested_pages: int = 0
    fast_granted_pages: int = 0

    @property
    def miss_pages(self) -> int:
        return self.requested_pages - self.fast_granted_pages

    @property
    def miss_ratio(self) -> float:
        """Fraction of requested pages NOT served by FastMem."""
        if self.requested_pages == 0:
            return 0.0
        return self.miss_pages / self.requested_pages

    def merge(self, other: "AllocStats") -> None:
        self.requested_pages += other.requested_pages
        self.fast_granted_pages += other.fast_granted_pages


def _new_stats() -> dict[PageType, AllocStats]:
    return {page_type: AllocStats() for page_type in PageType}


@dataclass
class PageDistribution:
    """Cumulative pages allocated per type (Figure 4's data)."""

    allocated: dict[PageType, int] = field(
        default_factory=lambda: {page_type: 0 for page_type in PageType}
    )

    @property
    def total_pages(self) -> int:
        return sum(self.allocated.values())

    def fraction(self, page_type: PageType) -> float:
        total = self.total_pages
        return self.allocated[page_type] / total if total else 0.0


class GuestKernel:
    """One guest VM's operating system."""

    def __init__(
        self,
        nodes: dict[int, MemoryNode],
        cpus: int = 16,
        balloon: BalloonFrontend | None = None,
        swap: SwapDevice | None = None,
        lru_factory: "type[SplitLru] | None" = None,
    ) -> None:
        if not nodes:
            raise AllocationError("guest needs at least one memory node")
        make_lru = lru_factory if lru_factory is not None else SplitLru
        self.nodes = dict(nodes)
        # The node topology is fixed for the kernel's lifetime (ballooning
        # hides frames, it never adds or removes nodes), so the ordered
        # id views consulted on every allocation are computed once.
        self._fast_node_ids = sorted(
            nid for nid, node in self.nodes.items() if node.is_fastmem
        )
        self._slow_node_ids = sorted(
            (nid for nid, node in self.nodes.items() if not node.is_fastmem),
            key=lambda nid: self.nodes[nid].tier.rank,
        )
        self._nodes_by_speed = sorted(
            self.nodes, key=lambda nid: (self.nodes[nid].tier.rank, nid)
        )
        self.cpus = cpus
        self.balloon = balloon
        self.swap = swap or SwapDevice(capacity_pages=pages_of_bytes(16 * GIB))
        self.percpu = PerCpuFreeLists(cpus, self.nodes)
        self.lru: dict[int, SplitLru] = {
            node_id: make_lru(node_id) for node_id in self.nodes
        }
        self.page_cache = PageCache()
        self.slab = SlabAllocator(self._slab_page_source, self._slab_page_release)
        self.address_space = AddressSpace()
        self.extents: dict[int, PageExtent] = {}
        self.regions: dict[str, list[int]] = {}
        self.epoch = 0
        self.epoch_stats: dict[PageType, AllocStats] = _new_stats()
        self.cumulative_stats: dict[PageType, AllocStats] = _new_stats()
        self.distribution = PageDistribution()
        #: Balloon-hidden guest-physical frames per node (unrevealed span).
        self._hidden: dict[int, list[FrameRange]] = {nid: [] for nid in self.nodes}
        self._slab_regions = 0
        #: Costs accrued by kernel-internal work (swap, reclaim) since the
        #: engine last drained them into the run's virtual time.
        self.pending_cost_ns = 0.0
        #: FastMem pages released by frees this epoch — the short-lived
        #: churn's recycling claim on FastMem (see CoordinatedPolicy).
        self.epoch_freed_fast_pages = 0

    # ------------------------------------------------------------------
    # Node topology helpers
    # ------------------------------------------------------------------

    @property
    def fast_node_ids(self) -> list[int]:
        return self._fast_node_ids

    @property
    def slow_node_ids(self) -> list[int]:
        return self._slow_node_ids

    def nodes_by_speed(self) -> list[int]:
        """All node ids, fastest tier first."""
        return self._nodes_by_speed

    def node_for_tier(self, tier: NodeTier) -> MemoryNode:
        for node in self.nodes.values():
            if node.tier is tier:
                return node
        raise AllocationError(f"no node of tier {tier.value}")

    def free_pages(self, node_id: int) -> Pages:
        return self.nodes[node_id].free_pages

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def begin_epoch(self, epoch: int) -> None:
        """Reset the per-epoch statistics window."""
        self.epoch = epoch
        self.epoch_stats = _new_stats()
        self.epoch_freed_fast_pages = 0

    def epoch_miss_ratios(self) -> dict[PageType, float]:
        """Per-subsystem FastMem allocation miss ratios for this epoch —
        the signal demand-based prioritization ranks subsystems by."""
        return {
            page_type: stats.miss_ratio
            for page_type, stats in self.epoch_stats.items()
            if stats.requested_pages > 0
        }

    # ------------------------------------------------------------------
    # Region allocation / free
    # ------------------------------------------------------------------

    def allocate_region(
        self,
        region_id: str,
        page_type: PageType,
        pages: Pages,
        node_preference: list[int],
        cpu: int = 0,
        allow_partial_nodes: bool = True,
        dirty: bool = False,
    ) -> list[PageExtent]:
        """Allocate ``pages`` of ``page_type`` walking ``node_preference``.

        One extent is created per node that contributes frames.  When the
        preferred nodes cannot cover the request the balloon (if present)
        is asked for more of the first-choice tier; any remaining
        shortfall falls back to whichever node has room.  Raises
        :class:`OutOfMemoryError` when the guest truly has no pages.
        """
        if pages <= 0:
            raise AllocationError(f"region {region_id!r}: zero-page request")
        if region_id in self.regions:
            raise AllocationError(f"region {region_id!r} already allocated")
        if not node_preference:
            raise AllocationError("empty node preference")

        self.address_space.mmap(region_id, pages, page_type)
        extents: list[PageExtent] = []
        remaining = pages
        try:
            for node_id in node_preference:
                if remaining == 0:
                    break
                remaining -= self._allocate_on_node(
                    region_id, page_type, node_id, remaining, cpu, extents,
                    exact=not allow_partial_nodes,
                )
                # On-demand driver (Figure 5 steps 1-3): before settling
                # for the next-best memory type, ask the VMM for more of
                # *this* one.
                if remaining > 0 and self.balloon is not None:
                    remaining -= self._balloon_for(
                        region_id, page_type, node_id, remaining, cpu,
                        extents, allow_fallback=False,
                    )
            if remaining > 0:
                # Last resort: any node with room, fastest first.
                for node_id in self.nodes_by_speed():
                    if remaining == 0:
                        break
                    if node_id in node_preference:
                        continue
                    remaining -= self._allocate_on_node(
                        region_id, page_type, node_id, remaining, cpu, extents
                    )
            if remaining > 0 and self.balloon is not None:
                # Truly out of revealed memory: take any tier the VMM can
                # still provide (the front-end's fallback strategy).
                remaining -= self._balloon_for(
                    region_id, page_type, node_preference[0], remaining,
                    cpu, extents, allow_fallback=True,
                )
            if remaining > 0:
                raise OutOfMemoryError(
                    f"region {region_id!r}: {remaining} of {pages} pages "
                    "unsatisfiable on any node"
                )
        except OutOfMemoryError:
            for extent in extents:
                self._destroy_extent(extent)
            self.address_space.munmap(region_id)
            raise

        self.regions[region_id] = [extent.extent_id for extent in extents]
        fast_pages = sum(
            extent.pages
            for extent in extents
            if self.nodes[extent.node_id].is_fastmem
        )
        self._record_allocation(page_type, pages, fast_pages)
        for extent in extents:
            if page_type.is_io:
                self.page_cache.insert(extent, dirty=dirty)
            elif dirty:
                extent.dirty = True
        return extents

    def free_region(self, region_id: str) -> Pages:
        """Release a region entirely; returns pages freed.

        Fires the unmap hooks (HeteroOS-LRU's eager-demotion trigger) and
        writes back any dirty I/O pages first — the page-state validity
        checks of Section 4.1.
        """
        extent_ids = self.regions.pop(region_id, None)
        if extent_ids is None:
            raise AllocationError(f"free of unknown region {region_id!r}")
        self.address_space.munmap(region_id)
        freed = 0
        for extent_id in extent_ids:
            extent = self.extents[extent_id]
            if extent.page_type.is_io and self.page_cache.is_resident(extent):
                self.page_cache.writeback(extent)
                self.page_cache.drop(extent)
            freed += extent.pages
            self._destroy_extent(extent)
        return freed

    def region_extents(self, region_id: str) -> list[PageExtent]:
        ids = self.regions.get(region_id)
        if ids is None:
            raise AllocationError(f"unknown region {region_id!r}")
        return [self.extents[eid] for eid in ids]

    def has_region(self, region_id: str) -> bool:
        return region_id in self.regions

    def live_regions(self) -> list[str]:
        return list(self.regions)

    # ------------------------------------------------------------------
    # Access recording
    # ------------------------------------------------------------------

    def touch_region(
        self,
        region_id: str,
        accesses: float,
        write: bool = False,
        writes: float = 0.0,
    ) -> None:
        """Record one epoch's accesses to a region: update extent
        temperatures (read and write), hardware access bits, and LRU
        recency.

        Touching a swapped extent faults it back in (swap-in cost goes to
        :attr:`pending_cost_ns`); when no node has room, a refault storm
        penalty is charged instead, capped at one read per page.
        """
        total_pages = self._region_pages(region_id)
        if total_pages == 0:
            return
        for extent in self.region_extents(region_id):
            fraction = extent.pages / total_pages
            share = accesses * fraction
            if extent.swapped and share > 0:
                self._swap_in(extent)
            extent.record_access(self.epoch, share, writes=writes * fraction)
            if write or writes > 0:
                extent.dirty = True
            if share > 0 and not extent.swapped:
                self.lru[extent.node_id].record_access(extent)

    def _swap_in(self, extent: PageExtent) -> None:
        """Fault a swapped extent back into memory: whole if room exists,
        partially (splitting the extent) if only part fits, and charging
        a bounded refault penalty for whatever thrashes in place."""
        remaining = extent
        for node_id in self.nodes_by_speed():
            node = self.nodes[node_id]
            room = node.free_pages_for(remaining.page_type)
            if room <= 0:
                continue
            if room < remaining.pages:
                landed = remaining
                remaining = self.split_swapped(landed, room)
            else:
                landed, remaining = remaining, None
            frames = node.allocate_up_to(landed.pages, landed.page_type)
            got = sum(fr.count for fr in frames)
            if got < landed.pages:
                # Raced out (fragmentation); both pieces stay swapped.
                node.free_ranges(frames)
                stuck = landed.pages + (remaining.pages if remaining else 0)
                self.pending_cost_ns += (
                    stuck * self.swap.read_page_ns * 0.1
                )
                return
            landed.frames = frames
            landed.node_id = node_id
            landed.swapped = False
            self.lru[node_id].insert(landed)
            self.pending_cost_ns += self.swap.swap_in(landed.pages)
            if remaining is None:
                return
        if remaining is not None:
            # The unfit tail thrashes: its hot subset refaults in place.
            self.pending_cost_ns += (
                remaining.pages * self.swap.read_page_ns * 0.1
            )

    def split_swapped(self, extent: PageExtent, first_pages: Pages) -> PageExtent:
        """Split a *swapped* extent (no frames to divide); returns the
        tail, which stays swapped."""
        if not 0 < first_pages < extent.pages:
            raise AllocationError("bad swapped split point")
        rest_pages = extent.pages - first_pages
        fraction = rest_pages / extent.pages
        sibling = PageExtent(
            region_id=extent.region_id,
            page_type=extent.page_type,
            pages=rest_pages,
            node_id=extent.node_id,
            frames=[],
            state=extent.state,
            temperature=extent.temperature * fraction,
            write_temperature=extent.write_temperature * fraction,
            swapped=True,
            birth_epoch=extent.birth_epoch,
            last_access_epoch=extent.last_access_epoch,
        )
        extent.pages = first_pages
        extent.temperature *= 1.0 - fraction
        extent.write_temperature *= 1.0 - fraction
        self.extents[sibling.extent_id] = sibling
        ids = self.regions.get(extent.region_id)
        if ids is not None:
            ids.insert(ids.index(extent.extent_id) + 1, sibling.extent_id)
        return sibling

    # ------------------------------------------------------------------
    # Reclaim (balloon-out path)
    # ------------------------------------------------------------------

    def shrink_node(self, node_id: int, pages: Pages) -> Pages:
        """Make up to ``pages`` pages free on ``node_id`` for ballooning
        out: counts already-free pages first, then swaps out the coldest
        extents (cost accrues to :attr:`pending_cost_ns`).  Returns the
        number of free pages now available."""
        node = self.nodes[node_id]
        if node.free_pages >= pages:
            return pages
        need = pages - node.free_pages
        for extent in self.lru[node_id].evict_candidates(need):
            if extent.swapped:
                continue
            if extent.page_type.is_io and self.page_cache.is_resident(extent):
                # Clean page-cache drop is cheaper than swap.
                self.page_cache.writeback(extent)
                self.page_cache.drop(extent)
                self._remove_extent_from_region(extent)
                self.lru[node_id].remove(extent)
                node.free_ranges(extent.frames)
                del self.extents[extent.extent_id]
            else:
                if self.swap.free_pages < extent.pages:
                    continue  # swap device full; cannot reclaim this one
                try:
                    cost = self.swap.swap_out(extent.pages)
                except SwapWriteError:
                    # Transient write error: the extent stays resident
                    # (nothing was written, nothing to unwind); charge
                    # the wasted device pass and try the next victim.
                    self.pending_cost_ns += (
                        extent.pages * self.swap.write_page_ns
                    )
                    continue
                self.pending_cost_ns += cost
                node.free_ranges(extent.frames)
                self.lru[node_id].remove(extent)
                extent.frames = []
                extent.swapped = True
            need -= extent.pages
            if need <= 0:
                break
        return min(pages, node.free_pages)

    def _remove_extent_from_region(self, extent: PageExtent) -> None:
        ids = self.regions.get(extent.region_id)
        if ids is not None and extent.extent_id in ids:
            ids.remove(extent.extent_id)

    def drain_pending_cost(self) -> Ns:
        """Hand accumulated kernel-internal costs to the engine."""
        cost = self.pending_cost_ns
        self.pending_cost_ns = 0.0
        return cost

    def occupancy_snapshot(self) -> dict:
        """Zone/LRU/balloon occupancy gauges for telemetry.

        Read-only and JSON-safe; node keys are strings (fastest tier
        first) so a sample round-trips losslessly through JSON.
        """
        nodes: dict[str, dict] = {}
        for node_id in self.nodes_by_speed():
            node = self.nodes[node_id]
            lru = self.lru[node_id]
            nodes[str(node_id)] = {
                "tier": node.tier.value,
                "device": node.device.name,
                "total_pages": node.total_pages,
                "free_pages": node.free_pages,
                "used_pages": node.used_pages,
                "active_pages": lru.active_pages,
                "inactive_pages": lru.inactive_pages,
                "percpu_cached_pages": self.percpu.cached_pages(node_id),
                "ballooned_pages": self.hidden_pages(node_id),
                "zones": {
                    zone.kind.value: {
                        "total_pages": zone.total_pages,
                        "free_pages": zone.free_pages,
                    }
                    for zone in node.zones
                },
            }
        return {
            "nodes": nodes,
            "swap": {
                "used_pages": self.swap.used_pages,
                "pages_out": self.swap.stats.pages_out,
                "pages_in": self.swap.stats.pages_in,
            },
        }

    # ------------------------------------------------------------------
    # Whole-kernel invariants (used by tests and debugging sessions)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify cross-subsystem accounting; raises on violation.

        Checks: buddy allocators self-consistent; every live extent's
        frames lie inside its node and don't overlap any other extent's;
        region indexes reference live extents; resident (non-swapped)
        extents are exactly the LRU population; per-node page accounting
        adds up (free + extents + hidden + per-CPU cached == total).
        """
        for node in self.nodes.values():
            for zone in node.zones:
                zone.buddy.check_invariants()
        # Frame ownership: disjoint and in-node.
        seen_frames: dict[int, int] = {}
        extent_pages_by_node: dict[int, int] = {nid: 0 for nid in self.nodes}
        for extent in self.extents.values():
            if extent.swapped:
                if extent.frames:
                    raise AllocationError(
                        f"swapped extent {extent.extent_id} still holds frames"
                    )
                continue
            extent_pages_by_node[extent.node_id] += extent.pages
            frame_total = 0
            for frame_range in extent.frames:
                frame_total += frame_range.count
                for frame in (frame_range.start, frame_range.end - 1):
                    owner = seen_frames.get(frame)
                    if owner is not None and owner != extent.extent_id:
                        raise AllocationError(
                            f"frame {frame} owned by extents {owner} and "
                            f"{extent.extent_id}"
                        )
                seen_frames[frame_range.start] = extent.extent_id
                seen_frames[frame_range.end - 1] = extent.extent_id
            if frame_total != extent.pages:
                raise AllocationError(
                    f"extent {extent.extent_id}: {frame_total} frames for "
                    f"{extent.pages} pages"
                )
        # Region indexes reference live extents exactly once.
        referenced: set[int] = set()
        for region_id, extent_ids in self.regions.items():
            for extent_id in extent_ids:
                if extent_id not in self.extents:
                    raise AllocationError(
                        f"region {region_id!r} references dead extent "
                        f"{extent_id}"
                    )
                if extent_id in referenced:
                    raise AllocationError(
                        f"extent {extent_id} in two regions"
                    )
                referenced.add(extent_id)
        # LRU population == resident extents per node.
        for node_id, lru in self.lru.items():
            lru_pages = lru.active_pages + lru.inactive_pages
            if lru_pages != extent_pages_by_node[node_id]:
                raise AllocationError(
                    f"node {node_id}: LRU holds {lru_pages} pages, extents "
                    f"hold {extent_pages_by_node[node_id]}"
                )
        # Node capacity accounting.
        for node_id, node in self.nodes.items():
            cached = self.percpu.cached_pages(node_id)
            hidden = self.hidden_pages(node_id)
            used = extent_pages_by_node[node_id]
            total = node.free_pages + cached + hidden + used
            if total != node.total_pages:
                raise AllocationError(
                    f"node {node_id}: {node.free_pages} free + {cached} "
                    f"cached + {hidden} hidden + {used} in extents != "
                    f"{node.total_pages} total"
                )

    def _region_pages(self, region_id: str) -> Pages:
        return sum(e.pages for e in self.region_extents(region_id))

    # ------------------------------------------------------------------
    # Extent movement (guest-controlled migration target ops)
    # ------------------------------------------------------------------

    def move_extent(self, extent: PageExtent, target_node_id: int) -> int:
        """Physically relocate an extent to another node.

        Performs the guest-side validity checks of Section 4.1: the extent
        must still be live (mapped) and not a dirty I/O page.  Returns the
        number of pages moved.  The *cost* of the move is charged by the
        migration engine, not here.
        """
        if extent.extent_id not in self.extents:
            raise AllocationError(f"move of dead extent {extent.extent_id}")
        if target_node_id not in self.nodes:
            raise AllocationError(f"unknown target node {target_node_id}")
        if extent.node_id == target_node_id:
            return 0
        if not extent.page_type.is_migratable:
            raise AllocationError(
                f"{extent.page_type.value} pages are not migratable"
            )
        if extent.page_type.is_io and self.page_cache.is_dirty(extent):
            self.page_cache.writeback(extent)
        target = self.nodes[target_node_id]
        if target.free_pages_for(extent.page_type) < extent.pages:
            raise OutOfMemoryError(
                f"node {target_node_id}: no room for {extent.pages} pages"
            )
        new_frames = target.allocate_up_to(extent.pages, extent.page_type)
        got = sum(fr.count for fr in new_frames)
        if got < extent.pages:
            target.free_ranges(new_frames)
            raise OutOfMemoryError(
                f"node {target_node_id}: raced out of pages during move"
            )
        was_inactive = extent.state is ExtentState.INACTIVE
        source = self.nodes[extent.node_id]
        source.free_ranges(extent.frames)
        self.lru[extent.node_id].remove(extent)
        extent.frames = new_frames
        extent.node_id = target_node_id
        self.lru[target_node_id].insert(extent)
        if was_inactive:
            self.lru[target_node_id].deactivate(extent)
        return extent.pages

    def split_extent(self, extent: PageExtent, first_pages: Pages) -> PageExtent:
        """Split an extent in place: ``extent`` keeps ``first_pages``, the
        remainder becomes a new extent of the same region returned to the
        caller.  Temperatures split proportionally (uniform within a
        region).  Used to migrate partial regions under a page budget."""
        if extent.extent_id not in self.extents:
            raise AllocationError(f"split of dead extent {extent.extent_id}")
        if not 0 < first_pages < extent.pages:
            raise AllocationError(
                f"split point {first_pages} outside extent of {extent.pages}"
            )
        if extent.swapped:
            raise AllocationError("cannot split a swapped extent")
        rest_pages = extent.pages - first_pages
        keep_frames: list[FrameRange] = []
        rest_frames: list[FrameRange] = []
        needed = first_pages
        for frame_range in extent.frames:
            if needed >= frame_range.count:
                keep_frames.append(frame_range)
                needed -= frame_range.count
            elif needed > 0:
                head, tail = frame_range.split(needed)
                keep_frames.append(head)
                rest_frames.append(tail)
                needed = 0
            else:
                rest_frames.append(frame_range)
        fraction = rest_pages / extent.pages
        sibling = PageExtent(
            region_id=extent.region_id,
            page_type=extent.page_type,
            pages=rest_pages,
            node_id=extent.node_id,
            frames=rest_frames,
            state=extent.state,
            temperature=extent.temperature * fraction,
            write_temperature=extent.write_temperature * fraction,
            accessed=extent.accessed,
            dirty=extent.dirty,
            birth_epoch=extent.birth_epoch,
            last_access_epoch=extent.last_access_epoch,
        )
        extent.frames = keep_frames
        extent.pages = first_pages
        extent.temperature *= 1.0 - fraction
        extent.write_temperature *= 1.0 - fraction
        self.extents[sibling.extent_id] = sibling
        ids = self.regions.get(extent.region_id)
        if ids is not None:
            ids.insert(ids.index(extent.extent_id) + 1, sibling.extent_id)
        lru = self.lru[extent.node_id]
        # A resident extent is always on its node's LRU; its page count
        # just shrank in place, so LRUs with running counters must hear
        # about it (no-op on the baseline lists).
        lru.note_resized(extent, -rest_pages)
        lru.insert(sibling)
        if extent.state is ExtentState.INACTIVE:
            lru.deactivate(sibling)
        if extent.page_type.is_io and self.page_cache.is_resident(extent):
            self.page_cache.insert(sibling, dirty=self.page_cache.is_dirty(extent))
        return sibling

    def drop_io_extent(self, extent: PageExtent) -> Pages:
        """Release an I/O cache extent outright (writeback first if
        dirty): the cheap eviction path for completed I/O — the backing
        store already holds the data, no copy to SlowMem is needed.
        Returns pages freed."""
        if extent.extent_id not in self.extents:
            raise AllocationError(f"drop of dead extent {extent.extent_id}")
        if not extent.page_type.is_io:
            raise AllocationError(
                f"drop_io_extent on {extent.page_type.value} pages"
            )
        if extent.swapped:
            return 0
        if self.page_cache.is_resident(extent):
            self.page_cache.writeback(extent)
            self.page_cache.drop(extent)
        self._remove_extent_from_region(extent)
        self.lru[extent.node_id].remove(extent)
        self.nodes[extent.node_id].free_ranges(extent.frames)
        if self.nodes[extent.node_id].is_fastmem:
            self.epoch_freed_fast_pages += extent.pages
        del self.extents[extent.extent_id]
        return extent.pages

    # ------------------------------------------------------------------
    # Balloon support
    # ------------------------------------------------------------------

    def hide_pages(self, node_id: int, pages: Pages) -> Pages:
        """Remove free pages from a node (balloon inflation); returns
        pages actually hidden."""
        node = self.nodes[node_id]
        take = min(pages, node.free_pages)
        if take <= 0:
            return 0
        # Hide from the least-preferred zone first to preserve DMA space.
        hidden = 0
        for zone in reversed(node.zones):
            grab = min(take - hidden, zone.free_pages)
            if grab > 0:
                self._hidden[node_id].extend(zone.buddy.allocate_pages(grab))
                hidden += grab
            if hidden == take:
                break
        return hidden

    def reveal_pages(self, node_id: int, pages: Pages) -> Pages:
        """Return balloon-hidden pages to a node's allocator; returns
        pages revealed."""
        node = self.nodes[node_id]
        revealed = 0
        stash = self._hidden[node_id]
        while stash and revealed < pages:
            frame_range = stash.pop()
            if revealed + frame_range.count > pages:
                use, keep = frame_range.split(pages - revealed)
                stash.append(keep)
                frame_range = use
            node.free_ranges([frame_range])
            revealed += frame_range.count
        return revealed

    def hidden_pages(self, node_id: int) -> Pages:
        return sum(fr.count for fr in self._hidden[node_id])

    def hidden_ranges(self, node_id: int) -> list[FrameRange]:
        """Balloon-hidden frame ranges on ``node_id`` (read-only view
        for the frame sanitizer's teardown reconciliation)."""
        return list(self._hidden[node_id])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _allocate_on_node(
        self,
        region_id: str,
        page_type: PageType,
        node_id: int,
        pages: int,
        cpu: int,
        extents: list[PageExtent],
        exact: bool = False,
    ) -> int:
        """Allocate up to ``pages`` on one node; appends an extent and
        returns the page count obtained."""
        node = self.nodes.get(node_id)
        if node is None:
            raise AllocationError(f"unknown node {node_id}")
        available = node.free_pages_for(page_type)
        take = pages if exact else min(pages, available)
        if take <= 0 or available < take:
            return 0
        if take <= PERCPU_THRESHOLD_PAGES:
            try:
                frames = self.percpu.allocate(cpu, node_id, take, page_type)
            except OutOfMemoryError:
                return 0
        else:
            frames = node.allocate_up_to(take, page_type)
            got = sum(fr.count for fr in frames)
            if got < take:
                node.free_ranges(frames)
                return 0
        extent = PageExtent(
            region_id=region_id,
            page_type=page_type,
            pages=take,
            node_id=node_id,
            frames=frames,
            birth_epoch=self.epoch,
        )
        self.extents[extent.extent_id] = extent
        self.lru[node_id].insert(extent)
        extents.append(extent)
        return take

    def _balloon_for(
        self,
        region_id: str,
        page_type: PageType,
        node_id: int,
        pages: int,
        cpu: int,
        extents: list[PageExtent],
        allow_fallback: bool = False,
    ) -> int:
        """Ask the VMM for more memory of ``node_id``'s tier, reveal the
        grant, and allocate from it."""
        assert self.balloon is not None
        tier = self.nodes[node_id].tier
        granted = self.balloon.request(tier, pages, allow_fallback=allow_fallback)
        obtained = 0
        for got_tier, got_pages in granted.items():
            if got_pages <= 0:
                continue
            target = self.node_for_tier(got_tier)
            self.reveal_pages(target.node_id, got_pages)
            obtained += self._allocate_on_node(
                region_id, page_type, target.node_id,
                min(pages - obtained, got_pages), cpu, extents,
            )
            if obtained >= pages:
                break
        return obtained

    def _destroy_extent(self, extent: PageExtent) -> None:
        if extent.swapped:
            # Pages live on the swap device; release the swap slots.
            self.swap.used_pages = max(0, self.swap.used_pages - extent.pages)
        else:
            self.lru[extent.node_id].remove(extent)
            self.nodes[extent.node_id].free_ranges(extent.frames)
            if self.nodes[extent.node_id].is_fastmem:
                self.epoch_freed_fast_pages += extent.pages
        del self.extents[extent.extent_id]

    def _record_allocation(
        self, page_type: PageType, pages: int, fast_pages: int
    ) -> None:
        for window in (self.epoch_stats, self.cumulative_stats):
            window[page_type].requested_pages += pages
            window[page_type].fast_granted_pages += fast_pages
        self.distribution.allocated[page_type] += pages
        # Page-table footprint: one PT page per 512 mapped pages.
        if page_type is not PageType.PAGE_TABLE:
            pt_pages = -(-pages // PTES_PER_PT_PAGE)
            self.distribution.allocated[PageType.PAGE_TABLE] += pt_pages

    # Slab page plumbing -------------------------------------------------

    def _slab_page_source(
        self, cache_name: str, pages: int, page_type: PageType
    ) -> object:
        self._slab_regions += 1
        region_id = f"slab:{cache_name}:{self._slab_regions}"
        preference = self.fast_node_ids + self.slow_node_ids
        self.allocate_region(region_id, page_type, pages, preference)
        return region_id

    def _slab_page_release(self, cache_name: str, token: object) -> None:
        self.free_region(str(token))
