"""Virtual memory areas and the per-process address space.

The guest's VMA list serves two purposes in HeteroOS: it is the source of
the *tracking list* — "address ranges of contiguous memory regions that
the VMM should track for hotness ... extract[ed] using the virtual memory
area (VMA) structure" (Section 4.1) — and the unmap path is one of
HeteroOS-LRU's eager-demotion triggers ("during an unmap operation,
several continuous pages in a VMA region are released", Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AllocationError
from repro.mem.extent import PageType

#: Hook fired on munmap with the released VMA (HeteroOS-LRU's trigger).
UnmapHook = Callable[["Vma"], None]


@dataclass(frozen=True)
class Vma:
    """One mapped virtual region."""

    start_vpn: int
    pages: int
    page_type: PageType
    region_id: str

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.pages


@dataclass
class AddressSpace:
    """A process's mm: bump-pointer mmap, VMA registry, tracking export."""

    # heterolint: disable-next-line=magic-number — VPN base, not bytes
    next_vpn: int = 0x1000
    vmas: dict[str, Vma] = field(default_factory=dict)
    _unmap_hooks: list[UnmapHook] = field(default_factory=list)

    @property
    def mapped_pages(self) -> int:
        return sum(vma.pages for vma in self.vmas.values())

    def add_unmap_hook(self, hook: UnmapHook) -> None:
        self._unmap_hooks.append(hook)

    def mmap(self, region_id: str, pages: int, page_type: PageType) -> Vma:
        """Map a new region; virtual addresses are bump-allocated."""
        if pages <= 0:
            raise AllocationError("mmap of zero pages")
        if region_id in self.vmas:
            raise AllocationError(f"region {region_id!r} already mapped")
        vma = Vma(
            start_vpn=self.next_vpn,
            pages=pages,
            page_type=page_type,
            region_id=region_id,
        )
        self.next_vpn += pages
        self.vmas[region_id] = vma
        return vma

    def munmap(self, region_id: str) -> Vma:
        """Unmap a region; fires the eager-demotion hooks."""
        vma = self.vmas.pop(region_id, None)
        if vma is None:
            raise AllocationError(f"munmap of unmapped region {region_id!r}")
        for hook in self._unmap_hooks:
            hook(vma)
        return vma

    def find(self, vpn: int) -> Vma | None:
        """VMA containing virtual page ``vpn``, or ``None``."""
        for vma in self.vmas.values():
            if vma.start_vpn <= vpn < vma.end_vpn:
                return vma
        return None

    def tracking_list(self) -> list[tuple[int, int]]:
        """Heap VMA (start, pages) ranges worth tracking for hotness.

        I/O cache and kernel-buffer regions are excluded — they go on the
        exception list instead (Section 4.1).
        """
        return [
            (vma.start_vpn, vma.pages)
            for vma in self.vmas.values()
            if vma.page_type is PageType.HEAP
        ]
