"""Multi-dimensional per-CPU free lists (Section 3.1).

Linux keeps a per-CPU list of free pages so hot-path allocations bypass
the buddy allocator; the stock lists assume a single memory type.
HeteroOS "redesign[s] the per-CPU lists with a multi-dimensional (arrays
of lists) support for different memory types which significantly boosts
the allocation performance."  Here each CPU holds one cache row per node,
refilled in batches from that node's buddy allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError
from repro.guestos.numa import MemoryNode
from repro.mem.extent import PageType
from repro.mem.frames import FrameRange


@dataclass
class PerCpuStats:
    """Hit/miss accounting for the fast path."""

    hits: int = 0
    refills: int = 0
    spills: int = 0


@dataclass
class _CpuRow:
    ranges: list[FrameRange] = field(default_factory=list)
    pages: int = 0


class PerCpuFreeLists:
    """Per-(CPU, node) cached free pages.

    Parameters
    ----------
    cpus:
        Number of CPUs.
    nodes:
        The guest's memory nodes (one cache row per node per CPU).
    batch_pages:
        Refill granularity pulled from the buddy allocator.
    capacity_pages:
        High watermark per row; spills return pages to the buddy.
    """

    def __init__(
        self,
        cpus: int,
        nodes: dict[int, MemoryNode],
        batch_pages: int = 32,
        capacity_pages: int = 128,
    ) -> None:
        if cpus <= 0:
            raise AllocationError("need at least one CPU")
        if batch_pages <= 0 or capacity_pages < batch_pages:
            raise AllocationError("capacity must be >= batch > 0")
        self.cpus = cpus
        self.nodes = nodes
        self.batch_pages = batch_pages
        self.capacity_pages = capacity_pages
        self._rows: dict[tuple[int, int], _CpuRow] = {
            (cpu, node_id): _CpuRow()
            for cpu in range(cpus)
            for node_id in nodes
        }
        self.stats = PerCpuStats()

    def cached_pages(self, node_id: int) -> int:
        """Pages parked in per-CPU rows for ``node_id`` (unavailable to
        other allocation paths until flushed)."""
        return sum(
            row.pages for (_, nid), row in self._rows.items() if nid == node_id
        )

    def iter_cached_ranges(self, node_id: int) -> list[FrameRange]:
        """Frame ranges currently parked in per-CPU rows for ``node_id``
        (used by the frame sanitizer's teardown reconciliation)."""
        ranges: list[FrameRange] = []
        for (_, nid), row in sorted(self._rows.items()):
            if nid == node_id:
                ranges.extend(row.ranges)
        return ranges

    def allocate(
        self, cpu: int, node_id: int, pages: int, page_type: PageType
    ) -> list[FrameRange]:
        """Allocate small orders from the CPU row, refilling on miss."""
        row = self._row(cpu, node_id)
        if row.pages < pages:
            self._refill(row, node_id, pages - row.pages, page_type)
        else:
            self.stats.hits += 1
        return self._take(row, pages)

    def free(self, cpu: int, node_id: int, ranges: list[FrameRange]) -> None:
        """Return pages to the CPU row; spill to buddy above capacity.

        Only whole ranges can be spilled back (they are buddy blocks).
        """
        row = self._row(cpu, node_id)
        for frame_range in ranges:
            row.ranges.append(frame_range)
            row.pages += frame_range.count
        while row.pages > self.capacity_pages and row.ranges:
            spilled = row.ranges.pop()
            row.pages -= spilled.count
            self.nodes[node_id].free_ranges([spilled])
            self.stats.spills += 1

    def flush(self) -> None:
        """Return every cached page to its node (memory-pressure path)."""
        for (_, node_id), row in self._rows.items():
            if row.ranges:
                self.nodes[node_id].free_ranges(row.ranges)
                row.ranges.clear()
                row.pages = 0

    def _row(self, cpu: int, node_id: int) -> _CpuRow:
        key = (cpu % self.cpus, node_id)
        row = self._rows.get(key)
        if row is None:
            raise AllocationError(f"unknown node {node_id}")
        return row

    def _refill(
        self, row: _CpuRow, node_id: int, shortfall: int, page_type: PageType
    ) -> None:
        want = max(shortfall, self.batch_pages)
        node = self.nodes[node_id]
        grab = min(want, node.free_pages)
        if grab < shortfall:
            raise OutOfMemoryError(
                f"node {node_id}: per-CPU refill of {shortfall} pages failed"
            )
        ranges = node.allocate_pages(grab, page_type)
        row.ranges.extend(ranges)
        row.pages += grab
        self.stats.refills += 1

    def _take(self, row: _CpuRow, pages: int) -> list[FrameRange]:
        taken: list[FrameRange] = []
        remaining = pages
        while remaining > 0:
            if not row.ranges:
                raise OutOfMemoryError("per-CPU row underflow")
            head = row.ranges.pop()
            if head.count <= remaining:
                taken.append(head)
                row.pages -= head.count
                remaining -= head.count
            else:
                use, keep = head.split(remaining)
                taken.append(use)
                row.ranges.append(keep)
                row.pages -= use.count
                remaining = 0
        return taken
