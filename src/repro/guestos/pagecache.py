"""I/O page cache and buffer cache bookkeeping.

The page cache "plays a crucial role in improving the I/O throughput ...
by reading ahead I/O pages and buffering dirty blocks" (Section 3.2), and
its pages are "short-lived and have high reuse, as they are released once
an I/O is complete" (Observation 3).  This module tracks which extents
belong to the cache, their dirty state, and — the hook HeteroOS-LRU
relies on — the *I/O completion* event that turns a cache page inactive
and eligible for eager FastMem eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AllocationError
from repro.mem.extent import ExtentState, PageExtent, PageType

#: Callback fired when an extent's I/O completes (HeteroOS-LRU's trigger).
IoCompleteHook = Callable[[PageExtent], None]


@dataclass
class PageCacheStats:
    inserted_pages: int = 0
    completed_pages: int = 0
    writeback_pages: int = 0
    dropped_pages: int = 0


@dataclass
class PageCache:
    """Residency and dirty-state tracking for I/O extents."""

    stats: PageCacheStats = field(default_factory=PageCacheStats)

    def __post_init__(self) -> None:
        self._resident: dict[int, PageExtent] = {}
        self._dirty: dict[int, PageExtent] = {}
        self._io_complete_hooks: list[IoCompleteHook] = []

    @property
    def resident_pages(self) -> int:
        return sum(e.pages for e in self._resident.values())

    @property
    def dirty_pages(self) -> int:
        return sum(e.pages for e in self._dirty.values())

    def add_io_complete_hook(self, hook: IoCompleteHook) -> None:
        self._io_complete_hooks.append(hook)

    def insert(self, extent: PageExtent, dirty: bool = False) -> None:
        """Register a freshly allocated I/O extent."""
        if not extent.page_type.is_io:
            raise AllocationError(
                f"page cache only holds I/O pages, got {extent.page_type.value}"
            )
        if extent.extent_id in self._resident:
            raise AllocationError(f"extent {extent.extent_id} already cached")
        self._resident[extent.extent_id] = extent
        if dirty:
            extent.dirty = True
            self._dirty[extent.extent_id] = extent
        self.stats.inserted_pages += extent.pages

    def complete_io(self, extent: PageExtent) -> None:
        """I/O finished: page goes inactive; hooks may evict it eagerly."""
        if extent.extent_id not in self._resident:
            raise AllocationError(f"extent {extent.extent_id} not cached")
        extent.state = ExtentState.INACTIVE
        self.stats.completed_pages += extent.pages
        for hook in self._io_complete_hooks:
            hook(extent)

    def mark_dirty(self, extent: PageExtent) -> None:
        if extent.extent_id not in self._resident:
            raise AllocationError(f"extent {extent.extent_id} not cached")
        extent.dirty = True
        self._dirty[extent.extent_id] = extent

    def writeback(self, extent: PageExtent) -> int:
        """Flush a dirty extent; returns pages written."""
        entry = self._dirty.pop(extent.extent_id, None)
        if entry is None:
            return 0
        entry.dirty = False
        self.stats.writeback_pages += entry.pages
        return entry.pages

    def writeback_all(self) -> int:
        """Flush every dirty extent; returns pages written."""
        written = 0
        for extent in list(self._dirty.values()):
            written += self.writeback(extent)
        return written

    def drop(self, extent: PageExtent) -> None:
        """Remove an extent (its frames are freed by the kernel).

        Dirty extents must be written back first — dropping one is the
        validity check the guest performs before migration/free that the
        VMM cannot (Section 4.1, "Page state").
        """
        if extent.extent_id in self._dirty:
            raise AllocationError(
                f"extent {extent.extent_id} is dirty; writeback before drop"
            )
        if self._resident.pop(extent.extent_id, None) is None:
            raise AllocationError(f"extent {extent.extent_id} not cached")
        self.stats.dropped_pages += extent.pages

    def is_resident(self, extent: PageExtent) -> bool:
        return extent.extent_id in self._resident

    def is_dirty(self, extent: PageExtent) -> bool:
        return extent.extent_id in self._dirty
