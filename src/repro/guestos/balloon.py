"""On-demand allocation balloon driver — guest front-end (Section 3.1).

The guest boots with a per-memory-type reservation; the rest of each
node's guest-physical span is *hidden* (held by the balloon).  When the
kernel needs more pages of a type, the front-end asks the VMM back-end
for that node's memory (steps 1-2 in Figure 5); granted pages are revealed
into the node's buddy allocator.  Ballooning out (inflation) hides free
pages again and returns them to the VMM.

The front-end can specify a *fallback strategy*: whether a request for one
memory type may be satisfied with another when the preferred pool is dry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError
from repro.guestos.numa import NodeTier
from repro.units import Pages


class BalloonBackendProtocol(Protocol):
    """The VMM side of the split driver (see
    :mod:`repro.vmm.balloon_backend`)."""

    def request_pages(
        self, domain_id: int, tier: NodeTier, pages: Pages, allow_fallback: bool
    ) -> dict[NodeTier, int]:
        """Grant up to ``pages``; returns pages granted per tier."""
        ...

    def return_pages(self, domain_id: int, tier: NodeTier, pages: Pages) -> None:
        """Give pages of ``tier`` back to the machine pool."""
        ...


@dataclass
class BalloonStats:
    requests: int = 0
    granted_pages: dict[NodeTier, int] = field(default_factory=dict)
    returned_pages: dict[NodeTier, int] = field(default_factory=dict)


@dataclass
class TierReservation:
    """Boot-time minimum and balloonable maximum for one memory type
    (the Section 4.2 ballooning extension)."""

    min_pages: Pages
    max_pages: Pages

    def __post_init__(self) -> None:
        if not 0 <= self.min_pages <= self.max_pages:
            raise ConfigurationError(
                f"reservation must satisfy 0 <= min <= max "
                f"(got {self.min_pages}, {self.max_pages})"
            )


class BalloonFrontend:
    """Guest-side balloon with per-memory-type accounting."""

    def __init__(
        self,
        domain_id: int,
        backend: BalloonBackendProtocol,
        reservations: dict[NodeTier, TierReservation],
    ) -> None:
        self.domain_id = domain_id
        self.backend = backend
        self.reservations = dict(reservations)
        #: Pages currently held beyond the boot reservation, per tier.
        self.ballooned_in: dict[NodeTier, int] = {t: 0 for t in reservations}
        self.stats = BalloonStats()

    def current_pages(self, tier: NodeTier) -> Pages:
        reservation = self.reservations.get(tier)
        if reservation is None:
            return 0
        return reservation.min_pages + self.ballooned_in.get(tier, 0)

    def headroom(self, tier: NodeTier) -> Pages:
        """Pages this tier may still balloon in under its max."""
        reservation = self.reservations.get(tier)
        if reservation is None:
            return 0
        return reservation.max_pages - self.current_pages(tier)

    def request(
        self, tier: NodeTier, pages: Pages, allow_fallback: bool = False
    ) -> dict[NodeTier, int]:
        """Ask the VMM for ``pages`` of ``tier``; respects the tier max.

        Returns pages granted per tier (fallback grants appear under their
        own tier).  A zero-value dict means the VMM had nothing to give.
        """
        if pages <= 0:
            return {}
        capped = min(pages, max(0, self.headroom(tier)))
        if capped == 0:
            return {}
        self.stats.requests += 1
        granted = self.backend.request_pages(
            self.domain_id, tier, capped, allow_fallback
        )
        for got_tier, got_pages in granted.items():
            if got_pages < 0:
                raise ConfigurationError("backend granted negative pages")
            self.ballooned_in[got_tier] = (
                self.ballooned_in.get(got_tier, 0) + got_pages
            )
            self.stats.granted_pages[got_tier] = (
                self.stats.granted_pages.get(got_tier, 0) + got_pages
            )
        return granted

    def inflate(self, tier: NodeTier, pages: Pages) -> Pages:
        """Return up to ``pages`` of ``tier`` to the VMM (never digging
        below the boot minimum).  Returns pages actually returned."""
        if pages <= 0:
            return 0
        give = min(pages, self.ballooned_in.get(tier, 0))
        if give <= 0:
            return 0
        self.backend.return_pages(self.domain_id, tier, give)
        self.ballooned_in[tier] -= give
        self.stats.returned_pages[tier] = (
            self.stats.returned_pages.get(tier, 0) + give
        )
        return give
