"""Binary buddy allocator over a frame span.

The Linux page allocator HeteroOS extends.  Blocks are power-of-two sized
and naturally aligned relative to the span base; freeing coalesces with
the buddy block recursively.

Two entry points matter to callers:

* :meth:`allocate_pages` — decompose an arbitrary page count into buddy
  blocks, falling back to smaller orders under fragmentation and rolling
  back cleanly when the request cannot be satisfied.
* :meth:`free_span` — return *any* previously-allocated range, including
  fragments produced by the per-CPU free lists.  A frame bitmask makes
  double frees and frees of never-allocated frames hard errors.
"""

from __future__ import annotations

from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.frames import FrameRange

MAX_ORDER = 10  # Linux's default: blocks up to 2^10 = 1024 pages (4 MiB).


class BuddyAllocator:
    """Classic binary buddy allocator with arbitrary-span frees.

    Parameters
    ----------
    base:
        First frame number of the managed span.
    frames:
        Span length in frames (any positive integer; a non-power-of-two
        tail is handled by seeding multiple maximal blocks).
    max_order:
        Largest block order.
    """

    def __init__(self, base: int, frames: int, max_order: int = MAX_ORDER) -> None:
        if frames <= 0:
            raise AllocationError("buddy span must contain at least one frame")
        if max_order < 0:
            raise AllocationError("max_order must be non-negative")
        self.base = base
        self.total_frames = frames
        self.max_order = max_order
        #: order -> set of free block start frames (absolute).
        self._free_lists: list[set[int]] = [set() for _ in range(max_order + 1)]
        self._free_frames = 0
        #: Bit i set == frame (base + i) is free.  Exact double-free guard.
        self._free_mask = 0
        self._insert_span(base, frames)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def free_frames(self) -> int:
        return self._free_frames

    @property
    def allocated_frames(self) -> int:
        return self.total_frames - self._free_frames

    def largest_free_order(self) -> int:
        """Largest order with a free block, or -1 when empty."""
        for order in range(self.max_order, -1, -1):
            if self._free_lists[order]:
                return order
        return -1

    def is_free(self, frame: int) -> bool:
        """Whether a single frame is currently free."""
        offset = frame - self.base
        if not 0 <= offset < self.total_frames:
            raise AllocationError(f"frame {frame} outside span")
        return bool((self._free_mask >> offset) & 1)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate_block(self, order: int) -> FrameRange:
        """Allocate one block of exactly ``2**order`` frames."""
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range")
        source = order
        while source <= self.max_order and not self._free_lists[source]:
            source += 1
        if source > self.max_order:
            raise OutOfMemoryError(
                f"no free block of order >= {order} "
                f"({self._free_frames} frames free)"
            )
        start = min(self._free_lists[source])
        self._free_lists[source].discard(start)
        # Split down to the requested order, freeing the upper halves.
        while source > order:
            source -= 1
            buddy = start + (1 << source)
            self._free_lists[source].add(buddy)
        count = 1 << order
        self._free_frames -= count
        self._mask_clear(start, count)
        return FrameRange(start, count)

    def allocate_pages(self, pages: int) -> list[FrameRange]:
        """Allocate ``pages`` frames as buddy blocks (largest-first).

        Falls back to smaller orders under fragmentation; on failure the
        partial allocation is rolled back and the allocator is unchanged.
        """
        if pages <= 0:
            raise AllocationError(f"page count must be positive: {pages}")
        if pages > self._free_frames:
            raise OutOfMemoryError(
                f"requested {pages} pages, only {self._free_frames} free"
            )
        granted: list[FrameRange] = []
        remaining = pages
        try:
            while remaining > 0:
                want_order = min(self.max_order, remaining.bit_length() - 1)
                order = want_order
                # Prefer the largest available order not exceeding the
                # need; when fragmentation leaves nothing small, split a
                # larger block (allocate_block handles the split).
                while order >= 0 and not self._free_lists[order]:
                    order -= 1
                if order < 0:
                    order = want_order
                block = self.allocate_block(order)
                granted.append(block)
                remaining -= block.count
        except OutOfMemoryError:
            for block in granted:
                self.free_span(block.start, block.count)
            raise
        return granted

    # ------------------------------------------------------------------
    # Free
    # ------------------------------------------------------------------

    def free_span(self, start: int, count: int) -> None:
        """Free ``count`` frames at ``start``; every frame must currently
        be allocated.  Accepts fragments of original blocks; reinserts
        maximal aligned blocks and coalesces with free buddies."""
        if count <= 0:
            raise AllocationError("free count must be positive")
        offset = start - self.base
        if offset < 0 or offset + count > self.total_frames:
            raise AllocationError(
                f"span [{start}, {start + count}) outside allocator"
            )
        window = ((1 << count) - 1) << offset
        if self._free_mask & window:
            raise AllocationError(
                f"double free within span [{start}, {start + count})"
            )
        self._insert_span(start, count)

    def free_range(self, frame_range: FrameRange) -> None:
        """Convenience wrapper over :meth:`free_span`."""
        self.free_span(frame_range.start, frame_range.count)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert_span(self, start: int, count: int) -> None:
        """Insert a free span as maximal aligned blocks, coalescing up."""
        self._mask_set(start, count)
        self._free_frames += count
        cursor = start
        remaining = count
        while remaining > 0:
            offset = cursor - self.base
            align_order = (
                (offset & -offset).bit_length() - 1 if offset else self.max_order
            )
            size_order = remaining.bit_length() - 1
            order = min(self.max_order, align_order, size_order)
            self._coalesce_insert(cursor, order)
            cursor += 1 << order
            remaining -= 1 << order

    def _coalesce_insert(self, start: int, order: int) -> None:
        """Add a free block, merging with its buddy while possible."""
        while order < self.max_order:
            offset = start - self.base
            buddy = self.base + (offset ^ (1 << order))
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].discard(buddy)
            start = min(start, buddy)
            order += 1
        self._free_lists[order].add(start)

    def _mask_set(self, start: int, count: int) -> None:
        self._free_mask |= ((1 << count) - 1) << (start - self.base)

    def _mask_clear(self, start: int, count: int) -> None:
        self._free_mask &= ~(((1 << count) - 1) << (start - self.base))

    def check_invariants(self) -> None:
        """Free lists must be aligned, disjoint, mask-consistent."""
        total_free = 0
        seen: list[tuple[int, int]] = []
        for order, starts in enumerate(self._free_lists):
            size = 1 << order
            for block_start in starts:
                if (block_start - self.base) % size != 0:
                    raise AllocationError(
                        f"misaligned free block at {block_start} order {order}"
                    )
                offset = block_start - self.base
                window = ((1 << size) - 1) << offset
                if (self._free_mask & window) != window:
                    raise AllocationError("free list and mask disagree")
                seen.append((block_start, block_start + size))
                total_free += size
        seen.sort()
        for (_, end_a), (start_b, _) in zip(seen, seen[1:]):
            if end_a > start_b:
                raise AllocationError("overlapping free blocks")
        if total_free != self._free_frames:
            raise AllocationError(
                f"free accounting mismatch: {total_free} != {self._free_frames}"
            )
        if bin(self._free_mask).count("1") != self._free_frames:
            raise AllocationError("mask population does not match free count")
