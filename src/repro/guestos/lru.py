"""Linux-style split LRU (active / inactive lists) per memory node.

"Linux uses an approximate split LRU that maintains an active list of hot
or recently used pages, and an inactive list with cold pages for each
memory zone" (Section 3.3).  This is the *baseline* mechanism: lazy —
scanned only when node pressure crosses a watermark — and driven by whole-
node memory pressure.  HeteroOS-LRU (:mod:`repro.core.hetero_lru`) layers
its memory-type thresholds and eager demotion on top of these lists.

The lists hold extents; ordering within a list is recency (head = most
recent).  ``dict`` insertion order provides the queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AllocationError
from repro.mem.extent import ExtentState, PageExtent


@dataclass
class LruStats:
    promotions: int = 0
    demotions: int = 0
    scans: int = 0


@dataclass
class SplitLru:
    """Active/inactive extent lists for one node."""

    node_id: int
    #: Epochs without access before an active extent is demotable.
    inactive_after_epochs: int = 2
    #: Extents whose per-page access temperature stays below this are
    #: treated as cold even when technically "accessed": a huge region
    #: with a handful of touches per epoch should not pin fast memory.
    cold_density_threshold: float = 2.0
    stats: LruStats = field(default_factory=LruStats)

    def __post_init__(self) -> None:
        self._active: dict[int, PageExtent] = {}
        self._inactive: dict[int, PageExtent] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def insert(self, extent: PageExtent) -> None:
        """New extents enter the active list (they were just touched)."""
        if extent.extent_id in self._active or extent.extent_id in self._inactive:
            raise AllocationError(f"extent {extent.extent_id} already on LRU")
        extent.state = ExtentState.ACTIVE
        self._active[extent.extent_id] = extent

    def remove(self, extent: PageExtent) -> None:
        if self._active.pop(extent.extent_id, None) is not None:
            return
        if self._inactive.pop(extent.extent_id, None) is not None:
            return
        raise AllocationError(f"extent {extent.extent_id} not on LRU")

    def contains(self, extent: PageExtent) -> bool:
        return (
            extent.extent_id in self._active
            or extent.extent_id in self._inactive
        )

    def note_resized(self, extent: PageExtent, delta_pages: int) -> None:
        """Hook: ``extent.pages`` changed in place by ``delta_pages``
        while the extent sits on this LRU (extent splits do this).

        The baseline lists re-read ``extent.pages`` on every walk, so
        there is nothing to update here; subclasses that keep running
        page counters (``repro.sim.fast.FastSplitLru``) adjust them in
        this hook.  Callers must invoke it *after* mutating the extent.
        """

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def record_access(self, extent: PageExtent) -> None:
        """Access promotes to the active head (second-chance style)."""
        if extent.extent_id in self._inactive:
            del self._inactive[extent.extent_id]
            extent.state = ExtentState.ACTIVE
            self._active[extent.extent_id] = extent
            self.stats.promotions += 1
        elif extent.extent_id in self._active:
            # Refresh recency: move to dict tail (most recent).
            del self._active[extent.extent_id]
            self._active[extent.extent_id] = extent
        else:
            raise AllocationError(f"extent {extent.extent_id} not on LRU")

    def deactivate(self, extent: PageExtent) -> None:
        """Explicitly move an extent to the inactive list."""
        if extent.extent_id in self._active:
            del self._active[extent.extent_id]
            extent.state = ExtentState.INACTIVE
            self._inactive[extent.extent_id] = extent
            self.stats.demotions += 1
        elif extent.extent_id not in self._inactive:
            raise AllocationError(f"extent {extent.extent_id} not on LRU")

    def scan(self, current_epoch: int) -> int:
        """Age the active list: extents untouched for
        ``inactive_after_epochs``, or whose per-page temperature fell
        below the cold-density threshold, move to the inactive list.
        Returns the number of pages deactivated."""
        self.stats.scans += 1
        moved_pages = 0
        for extent in list(self._active.values()):
            idle = current_epoch - max(extent.last_access_epoch, extent.birth_epoch)
            age = current_epoch - extent.birth_epoch
            density = extent.temperature / extent.pages if extent.pages else 0.0
            stale = idle >= self.inactive_after_epochs
            # Density only counts once the EWMA has had time to settle.
            cold = (
                age >= self.inactive_after_epochs
                and density < self.cold_density_threshold
            )
            if stale or cold:
                self.deactivate(extent)
                moved_pages += extent.pages
        return moved_pages

    # ------------------------------------------------------------------
    # Reclaim
    # ------------------------------------------------------------------

    def evict_candidates(self, pages_needed: int) -> list[PageExtent]:
        """Coldest extents covering ``pages_needed`` pages: inactive list
        in insertion order first, then the coldest actives."""
        picked: list[PageExtent] = []
        total = 0
        for extent in self._iter_cold():
            if total >= pages_needed:
                break
            picked.append(extent)
            total += extent.pages
        return picked

    def _iter_cold(self) -> Iterator[PageExtent]:
        yield from self._inactive.values()
        yield from self._active.values()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active_pages(self) -> int:
        return sum(e.pages for e in self._active.values())

    @property
    def inactive_pages(self) -> int:
        return sum(e.pages for e in self._inactive.values())

    @property
    def inactive_extents(self) -> list[PageExtent]:
        return list(self._inactive.values())

    @property
    def active_extents(self) -> list[PageExtent]:
        return list(self._active.values())
