"""Guest operating system substrate.

A functional model of the Linux memory-management machinery HeteroOS
extends: NUMA nodes with a memory-type flag, zones (single unified zone on
FastMem nodes), a buddy allocator, multi-dimensional per-CPU free lists,
slab caches, the I/O page cache, VMAs, the split active/inactive LRU,
swap, and the on-demand balloon front-end.  :class:`repro.guestos.kernel.
GuestKernel` ties them together and keeps the per-subsystem allocation
statistics Section 3.2's demand-based prioritization consumes.
"""

from repro.guestos.numa import MemoryNode, NodeTier
from repro.guestos.zone import Zone, ZoneKind
from repro.guestos.buddy import BuddyAllocator
from repro.guestos.percpu import PerCpuFreeLists
from repro.guestos.slab import SlabAllocator, SlabCache
from repro.guestos.pagecache import PageCache
from repro.guestos.vma import AddressSpace, Vma
from repro.guestos.lru import SplitLru
from repro.guestos.swap import SwapDevice
from repro.guestos.balloon import BalloonFrontend
from repro.guestos.kernel import AllocStats, GuestKernel

__all__ = [
    "MemoryNode",
    "NodeTier",
    "Zone",
    "ZoneKind",
    "BuddyAllocator",
    "PerCpuFreeLists",
    "SlabAllocator",
    "SlabCache",
    "PageCache",
    "AddressSpace",
    "Vma",
    "SplitLru",
    "SwapDevice",
    "BalloonFrontend",
    "GuestKernel",
    "AllocStats",
]
