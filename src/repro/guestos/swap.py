"""Swap device.

The last-resort backing store: the extended balloon drivers "first use
HeteroOS-LRU to find inactive pages, and if not, swap pages to the disk"
(Section 4.2).  Costs model a datacenter SATA SSD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, OutOfMemoryError, SwapWriteError
from repro.units import NS_PER_US


@dataclass
class SwapStats:
    pages_out: int = 0
    pages_in: int = 0
    cost_ns: float = 0.0


@dataclass
class SwapDevice:
    """Page-granular swap with per-page transfer cost."""

    capacity_pages: int
    #: Batched sequential swap traffic on a datacenter SSD: ~800 MB/s
    #: writes, ~500 MB/s reads including fault handling.
    write_page_ns: float = 5.0 * NS_PER_US
    read_page_ns: float = 8.0 * NS_PER_US
    stats: SwapStats = field(default_factory=SwapStats)
    used_pages: int = 0
    #: Duck-typed :class:`repro.faults.FaultInjector`; ``None`` (the
    #: default) keeps the exact fault-free code path.
    faults: object = None

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise ConfigurationError("swap capacity must be positive")
        if self.write_page_ns < 0 or self.read_page_ns < 0:
            raise ConfigurationError("swap costs must be non-negative")

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    def swap_out(self, pages: int) -> float:
        """Write ``pages`` to swap; returns the time charged (ns)."""
        if pages <= 0:
            return 0.0
        if pages > self.free_pages:
            raise OutOfMemoryError(
                f"swap full: need {pages} pages, {self.free_pages} free"
            )
        if self.faults is not None and self.faults.fires("swap-write-error") is not None:
            # Transient device write error: nothing was persisted and no
            # state changed — the caller picks another victim.
            raise SwapWriteError(
                f"transient swap write error ({pages} pages not written)"
            )
        self.used_pages += pages
        cost = pages * self.write_page_ns
        self.stats.pages_out += pages
        self.stats.cost_ns += cost
        return cost

    def swap_in(self, pages: int) -> float:
        """Fault ``pages`` back in; returns the time charged (ns)."""
        if pages <= 0:
            return 0.0
        if pages > self.used_pages:
            raise OutOfMemoryError(f"swap-in of {pages} pages, only {self.used_pages} out")
        self.used_pages -= pages
        cost = pages * self.read_page_ns
        self.stats.pages_in += pages
        self.stats.cost_ns += cost
        return cost
