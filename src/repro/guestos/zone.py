"""Memory zones.

Linux statically partitions each NUMA node into DMA / NORMAL / HIGHMEM
zones.  HeteroOS keeps that layout for SlowMem nodes but gives FastMem
nodes a *single unified zone* "where both the application and OS related
pages can be allocated to conserve pages" (Section 3.1).

Each zone owns a buddy allocator over its sub-span and low/min watermarks
that drive reclaim triggers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.guestos.buddy import BuddyAllocator
from repro.mem.extent import PageType


class ZoneKind(enum.Enum):
    DMA = "dma"
    NORMAL = "normal"
    HIGHMEM = "highmem"
    #: HeteroOS's single FastMem zone serving user and kernel pages alike.
    UNIFIED = "unified"


#: Which zones may serve each page type, in preference order.
_ZONE_PREFERENCE: dict[PageType, tuple[ZoneKind, ...]] = {
    PageType.HEAP: (ZoneKind.UNIFIED, ZoneKind.HIGHMEM, ZoneKind.NORMAL),
    PageType.PAGE_CACHE: (ZoneKind.UNIFIED, ZoneKind.HIGHMEM, ZoneKind.NORMAL),
    PageType.BUFFER_CACHE: (ZoneKind.UNIFIED, ZoneKind.NORMAL),
    PageType.SLAB: (ZoneKind.UNIFIED, ZoneKind.NORMAL),
    PageType.NETWORK_BUFFER: (ZoneKind.UNIFIED, ZoneKind.NORMAL),
    PageType.PAGE_TABLE: (ZoneKind.UNIFIED, ZoneKind.NORMAL),
    PageType.DMA: (ZoneKind.DMA, ZoneKind.UNIFIED, ZoneKind.NORMAL),
}


def zone_preference(page_type: PageType) -> tuple[ZoneKind, ...]:
    """Zone kinds that may serve ``page_type``, most preferred first."""
    return _ZONE_PREFERENCE[page_type]


@dataclass
class Zone:
    """One zone: a kind, a buddy allocator, and reclaim watermarks."""

    kind: ZoneKind
    buddy: BuddyAllocator
    low_watermark_pages: int
    min_watermark_pages: int

    def __post_init__(self) -> None:
        if self.min_watermark_pages > self.low_watermark_pages:
            raise ConfigurationError("min watermark above low watermark")

    @property
    def total_pages(self) -> int:
        return self.buddy.total_frames

    @property
    def free_pages(self) -> int:
        return self.buddy.free_frames

    @property
    def under_pressure(self) -> bool:
        """Free pages fell below the low watermark (reclaim trigger)."""
        return self.free_pages < self.low_watermark_pages


def make_zone(
    kind: ZoneKind,
    base_frame: int,
    frames: int,
    watermark_fraction: float = 0.04,
    buddy_factory: "Callable[[int, int], BuddyAllocator] | None" = None,
) -> Zone:
    """Build a zone with Linux-style proportional watermarks.

    ``buddy_factory`` swaps in an alternative :class:`BuddyAllocator`
    implementation (the array-backed one from ``repro.sim.fast``);
    zones never construct allocators any other way, so this is the
    single substitution point.
    """
    if frames <= 0:
        raise ConfigurationError("zone must contain at least one frame")
    make_buddy = buddy_factory if buddy_factory is not None else BuddyAllocator
    low = max(1, int(frames * watermark_fraction))
    return Zone(
        kind=kind,
        buddy=make_buddy(base_frame, frames),
        low_watermark_pages=low,
        min_watermark_pages=max(1, low // 2),
    )
