"""Slab allocator for kernel objects.

Storage- and network-intensive applications "spend a significant time
allocating and accessing the OS kernel buffers (slab pages)" — skbuffs for
the network stack, dentries/inodes for filesystem metadata (Section 3.2).
HeteroOS prioritizes these slab pages into FastMem; this module provides
the mechanism those policies act on.

A :class:`SlabCache` obtains whole slabs (page groups) from the kernel via
a page-source callback, hands out fixed-size objects, and returns empty
slabs.  The callback indirection keeps this module free of a kernel
dependency cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AllocationError
from repro.mem.extent import PageType
from repro.units import KIB, PAGE_SIZE

#: page_source(cache_name, pages, page_type) -> opaque slab token
PageSource = Callable[[str, int, PageType], object]
#: page_release(cache_name, token)
PageRelease = Callable[[str, object], None]


@dataclass
class _Slab:
    token: object
    capacity: int
    used: int = 0
    free_slots: list[int] = field(default_factory=list)


@dataclass
class SlabStats:
    allocations: int = 0
    frees: int = 0
    slabs_created: int = 0
    slabs_destroyed: int = 0


class SlabCache:
    """One object-size class (e.g. ``skbuff``)."""

    def __init__(
        self,
        name: str,
        object_size: int,
        page_source: PageSource,
        page_release: PageRelease,
        pages_per_slab: int = 8,
        page_type: PageType = PageType.SLAB,
    ) -> None:
        if object_size <= 0 or object_size > pages_per_slab * PAGE_SIZE:
            raise AllocationError(
                f"slab {name!r}: object size {object_size} does not fit a slab"
            )
        self.name = name
        self.object_size = object_size
        self.pages_per_slab = pages_per_slab
        self.page_type = page_type
        self.objects_per_slab = (pages_per_slab * PAGE_SIZE) // object_size
        self._page_source = page_source
        self._page_release = page_release
        self._slabs: dict[int, _Slab] = {}
        self._partial: list[int] = []  # slab ids with free slots
        self._next_slab_id = 0
        self.stats = SlabStats()

    @property
    def total_pages(self) -> int:
        return len(self._slabs) * self.pages_per_slab

    @property
    def live_objects(self) -> int:
        return sum(slab.used for slab in self._slabs.values())

    def allocate(self) -> tuple[int, int]:
        """Allocate one object; returns an opaque (slab_id, slot) handle."""
        slab_id = self._partial[-1] if self._partial else self._grow()
        slab = self._slabs[slab_id]
        slot = (
            slab.free_slots.pop() if slab.free_slots else slab.used
        )
        slab.used += 1
        if slab.used >= slab.capacity and slab_id in self._partial:
            self._partial.remove(slab_id)
        self.stats.allocations += 1
        return (slab_id, slot)

    def free(self, handle: tuple[int, int]) -> None:
        """Release an object; empty slabs return their pages."""
        slab_id, slot = handle
        slab = self._slabs.get(slab_id)
        if slab is None:
            raise AllocationError(f"slab {self.name!r}: free of unknown slab")
        if slot in slab.free_slots or slab.used <= 0:
            raise AllocationError(f"slab {self.name!r}: double free")
        slab.used -= 1
        slab.free_slots.append(slot)
        self.stats.frees += 1
        if slab.used == 0:
            self._page_release(self.name, slab.token)
            del self._slabs[slab_id]
            if slab_id in self._partial:
                self._partial.remove(slab_id)
            self.stats.slabs_destroyed += 1
        elif slab_id not in self._partial:
            self._partial.append(slab_id)

    def _grow(self) -> int:
        token = self._page_source(self.name, self.pages_per_slab, self.page_type)
        slab_id = self._next_slab_id
        self._next_slab_id += 1
        self._slabs[slab_id] = _Slab(token=token, capacity=self.objects_per_slab)
        self._partial.append(slab_id)
        self.stats.slabs_created += 1
        return slab_id


class SlabAllocator:
    """Registry of slab caches; pre-creates the caches the paper names."""

    #: (name, object size in bytes, pages per slab, page type)
    DEFAULT_CACHES = (
        ("skbuff", 2 * KIB, 8, PageType.NETWORK_BUFFER),
        ("dentry", 192, 4, PageType.SLAB),
        ("inode", KIB, 8, PageType.SLAB),
        ("buffer_head", 104, 4, PageType.SLAB),
    )

    def __init__(self, page_source: PageSource, page_release: PageRelease) -> None:
        self._page_source = page_source
        self._page_release = page_release
        self.caches: dict[str, SlabCache] = {}
        for name, size, pages, page_type in self.DEFAULT_CACHES:
            self.create_cache(name, size, pages_per_slab=pages, page_type=page_type)

    def create_cache(
        self,
        name: str,
        object_size: int,
        pages_per_slab: int = 8,
        page_type: PageType = PageType.SLAB,
    ) -> SlabCache:
        if name in self.caches:
            raise AllocationError(f"slab cache {name!r} already exists")
        cache = SlabCache(
            name,
            object_size,
            self._page_source,
            self._page_release,
            pages_per_slab=pages_per_slab,
            page_type=page_type,
        )
        self.caches[name] = cache
        return cache

    def cache(self, name: str) -> SlabCache:
        try:
            return self.caches[name]
        except KeyError:
            raise AllocationError(f"no slab cache named {name!r}") from None
