"""Byte, page, and time unit helpers shared by every subsystem.

The simulator works in three currencies:

* **bytes** for device capacities and cache sizes,
* **pages** (4 KiB) for everything the OS manages,
* **nanoseconds** of virtual time for every cost the timing model charges.

Keeping the conversions in one module avoids the classic off-by-1024 bug
class and makes capacity arithmetic greppable.
"""

from __future__ import annotations

from typing import Annotated

# ----------------------------------------------------------------------
# Dimension aliases (heteroflow seeds)
# ----------------------------------------------------------------------
#
# Lightweight ``Annotated`` aliases naming the simulator's five
# currencies.  They cost nothing at runtime (``Annotated[float, ...]``
# behaves exactly like ``float``) but they make signatures
# self-documenting and give ``repro lint --deep`` its dimension seeds:
# a ``Pages`` value flowing into a ``Bytes`` parameter is a finding.

Ns = Annotated[float, "heteroflow-dim:ns"]
Bytes = Annotated[int, "heteroflow-dim:bytes"]
Pages = Annotated[int, "heteroflow-dim:pages"]
Instructions = Annotated[float, "heteroflow-dim:instructions"]
Epochs = Annotated[int, "heteroflow-dim:epochs"]

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Base page size used throughout (x86-64 small page).
PAGE_SIZE: int = 4 * KIB

#: Cache line size; the unit of traffic the LLC model emits per miss.
CACHE_LINE: int = 64

NS_PER_US: float = 1_000.0
NS_PER_MS: float = 1_000_000.0
NS_PER_SEC: float = 1_000_000_000.0


def pages_of_bytes(num_bytes: Bytes) -> Pages:
    """Number of whole pages needed to hold ``num_bytes`` (rounds up)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return -(-num_bytes // PAGE_SIZE)


def bytes_of_pages(pages: Pages) -> Bytes:
    """Byte size of ``pages`` whole pages."""
    if pages < 0:
        raise ValueError(f"page count must be non-negative, got {pages}")
    return pages * PAGE_SIZE


def gib(amount: float) -> Bytes:
    """Whole bytes in ``amount`` GiB (accepts fractional amounts)."""
    return int(amount * GIB)


def mib(amount: float) -> Bytes:
    """Whole bytes in ``amount`` MiB (accepts fractional amounts)."""
    return int(amount * MIB)


def ns_to_ms(ns: Ns) -> float:
    """Nanoseconds to milliseconds."""
    return ns / NS_PER_MS


def ns_to_sec(ns: Ns) -> float:
    """Nanoseconds to seconds."""
    return ns / NS_PER_SEC


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Device bandwidth in GB/s (decimal, as vendors quote) to bytes/ns."""
    return gbps  # 1 GB/s == 1e9 B / 1e9 ns == 1 byte per ns ... scaled below


# NOTE: 1 GB/s = 1e9 bytes / 1e9 ns = exactly 1 byte/ns, so the conversion is
# the identity.  The function exists so call sites state their intent.
