"""Reverse map: machine frame -> (domain, extent).

HeteroVisor "implements ... a VMM-level page reverse map for quick page
table walk, similar to non-virtualized OSes" (Section 2.3).  The reverse
map lets the hotness tracker and migration engine locate the owner of a
frame range without a forward page-table search; its presence cuts the
per-page walk cost (the migration cost model charges the cheaper rmap-
assisted rate when a reverse map is registered).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MigrationError
from repro.mem.frames import FrameRange


@dataclass(frozen=True)
class RmapOwner:
    """Identity of the extent owning a frame range."""

    domain_id: int
    extent_id: int


class ReverseMap:
    """Interval map from machine frame ranges to owning extents."""

    def __init__(self) -> None:
        #: start frame -> (FrameRange, RmapOwner); ranges are disjoint.
        self._by_start: dict[int, tuple[FrameRange, RmapOwner]] = {}
        self._sorted_starts: list[int] = []
        self._dirty_order = False

    def register(self, frames: FrameRange, owner: RmapOwner) -> None:
        """Record ownership of ``frames``; must not overlap existing entries."""
        existing = self._locate(frames.start)
        if existing is not None and existing[0].overlaps(frames):
            raise MigrationError(f"rmap overlap registering {frames}")
        if frames.start in self._by_start:
            raise MigrationError(f"rmap duplicate start {frames.start}")
        self._by_start[frames.start] = (frames, owner)
        self._sorted_starts.append(frames.start)
        self._dirty_order = True

    def unregister(self, frames: FrameRange) -> None:
        """Drop the entry registered at exactly ``frames.start``."""
        entry = self._by_start.pop(frames.start, None)
        if entry is None or entry[0] != frames:
            raise MigrationError(f"rmap unregister of unknown range {frames}")
        self._sorted_starts.remove(frames.start)

    def lookup(self, frame: int) -> RmapOwner | None:
        """Owner of machine frame ``frame``, or ``None``."""
        entry = self._locate(frame)
        if entry is None:
            return None
        frames, owner = entry
        return owner if frames.start <= frame < frames.end else None

    def _locate(self, frame: int) -> tuple[FrameRange, RmapOwner] | None:
        """Entry whose start is the greatest start <= frame."""
        if self._dirty_order:
            self._sorted_starts.sort()
            self._dirty_order = False
        starts = self._sorted_starts
        lo, hi = 0, len(starts)
        while lo < hi:
            mid = (lo + hi) // 2
            if starts[mid] <= frame:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return self._by_start[starts[lo - 1]]

    def __len__(self) -> int:
        return len(self._by_start)
