"""Radix (x86-style 4-level) page table with access/dirty bits.

The guest maps virtual page numbers to (extent, offset) pairs.  Software
hotness tracking works exactly as described in Section 2.3: scan a range
of PTEs, record and clear the access bit, and rely on a TLB flush to force
the hardware to set bits again on the next touch.

The engine charges scan/walk costs analytically (see
:mod:`repro.vmm.migration` for the batch-size-dependent cost model), so
this structure is exercised directly by the guest kernel's mapping
bookkeeping and by tests; it is a real radix tree, not a flat dict, so the
walk-depth accounting is honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AllocationError

#: 9 bits per level, 4 levels: the x86-64 small-page layout.
LEVEL_BITS = 9
LEVELS = 4
FANOUT = 1 << LEVEL_BITS


@dataclass
class PageTableEntry:
    """A leaf PTE."""

    extent_id: int
    present: bool = True
    accessed: bool = False
    dirty: bool = False
    writable: bool = True


def _indices(vpn: int) -> tuple[int, ...]:
    """Per-level radix indices for ``vpn``, root first."""
    parts = []
    for level in reversed(range(LEVELS)):
        parts.append((vpn >> (level * LEVEL_BITS)) & (FANOUT - 1))
    return tuple(parts)


class PageTable:
    """4-level radix table from virtual page number to PTE."""

    def __init__(self) -> None:
        self._root: dict = {}
        self.mapped_pages = 0
        #: Interior nodes created; proxies the page-table-page footprint.
        self.interior_nodes = 1

    def map_range(self, vpn: int, count: int, extent_id: int) -> None:
        """Map ``[vpn, vpn+count)`` to ``extent_id``; pages must be unmapped."""
        if count <= 0:
            raise AllocationError("map count must be positive")
        for page in range(vpn, vpn + count):
            node = self._root
            for index in _indices(page)[:-1]:
                nxt = node.get(index)
                if nxt is None:
                    nxt = {}
                    node[index] = nxt
                    self.interior_nodes += 1
                node = nxt
            leaf_index = _indices(page)[-1]
            if leaf_index in node:
                raise AllocationError(f"vpn {page} already mapped")
            node[leaf_index] = PageTableEntry(extent_id=extent_id)
        self.mapped_pages += count

    def unmap_range(self, vpn: int, count: int) -> None:
        """Unmap ``[vpn, vpn+count)``; pages must be mapped."""
        if count <= 0:
            raise AllocationError("unmap count must be positive")
        for page in range(vpn, vpn + count):
            node = self._root
            path = _indices(page)
            for index in path[:-1]:
                node = node.get(index)
                if node is None:
                    raise AllocationError(f"vpn {page} not mapped")
            if path[-1] not in node:
                raise AllocationError(f"vpn {page} not mapped")
            del node[path[-1]]
        self.mapped_pages -= count

    def walk(self, vpn: int) -> PageTableEntry | None:
        """Translate one page; returns ``None`` on a translation hole."""
        node = self._root
        path = _indices(vpn)
        for index in path[:-1]:
            node = node.get(index)
            if node is None:
                return None
        entry = node.get(path[-1])
        return entry if isinstance(entry, PageTableEntry) else entry

    def touch(self, vpn: int, write: bool = False) -> None:
        """Set access (and dirty) bits, as the hardware walker would."""
        entry = self.walk(vpn)
        if entry is None:
            raise AllocationError(f"touch of unmapped vpn {vpn}")
        entry.accessed = True
        if write:
            entry.dirty = True

    def scan_and_clear(self, vpn: int, count: int) -> int:
        """Hotness scan: count accessed pages in range and clear the bits.

        Unmapped holes are skipped (a real scanner checks present bits).
        """
        accessed = 0
        for entry in self._iter_range(vpn, count):
            if entry.accessed:
                accessed += 1
                entry.accessed = False
        return accessed

    def _iter_range(self, vpn: int, count: int) -> Iterator[PageTableEntry]:
        for page in range(vpn, vpn + count):
            entry = self.walk(page)
            if entry is not None:
                yield entry
