"""Machine memory mechanics: frames, extents, page tables, reverse map."""

from repro.mem.frames import FramePool, FrameRange
from repro.mem.extent import ExtentState, PageExtent, PageType
from repro.mem.pagetable import PageTable, PageTableEntry
from repro.mem.rmap import ReverseMap

__all__ = [
    "FramePool",
    "FrameRange",
    "PageExtent",
    "PageType",
    "ExtentState",
    "PageTable",
    "PageTableEntry",
    "ReverseMap",
]
