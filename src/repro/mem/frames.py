"""Machine frame ranges and per-device frame pools.

The VMM owns all machine frames.  Each memory device (FastMem, SlowMem)
contributes one contiguous machine-frame span managed by a
:class:`FramePool` — a first-fit range allocator with coalescing on free.
Guest-visible allocation refinement (buddy orders, per-CPU lists) happens
inside the guest OS on top of frames granted by these pools.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError
from repro.units import Pages


@dataclass(frozen=True)
class FrameRange:
    """A contiguous run of machine frames ``[start, start + count)``."""

    start: int
    count: Pages

    def __post_init__(self) -> None:
        if self.start < 0 or self.count <= 0:
            raise AllocationError(
                f"invalid frame range start={self.start} count={self.count}"
            )

    @classmethod
    def unchecked(cls, start: int, count: Pages) -> "FrameRange":
        """Construct without ``__post_init__`` validation.

        Reserved for allocators whose own invariants already guarantee
        ``start >= 0`` and ``count > 0`` (the buddy split arithmetic in
        ``repro.sim.fast`` produces only such pairs); the frozen
        dataclass ``__init__`` is a measurable share of the allocation
        hot path, and this bypasses it while keeping the type and its
        equality/hash semantics identical.
        """
        made = object.__new__(cls)
        # Direct instance-dict writes: the frozen-dataclass __setattr__
        # guard only needs bypassing at construction, and this is the
        # cheapest bypass (no descriptor dispatch).
        attrs = made.__dict__
        attrs["start"] = start
        attrs["count"] = count
        return made

    @property
    def end(self) -> int:
        return self.start + self.count

    def overlaps(self, other: "FrameRange") -> bool:
        return self.start < other.end and other.start < self.end

    def split(self, count: Pages) -> tuple["FrameRange", "FrameRange"]:
        """Split into a prefix of ``count`` frames and the remainder."""
        if not 0 < count < self.count:
            raise AllocationError(
                f"cannot split range of {self.count} frames at {count}"
            )
        return (
            FrameRange(self.start, count),
            FrameRange(self.start + count, self.count - count),
        )


class FramePool:
    """First-fit range allocator over one device's machine-frame span."""

    def __init__(self, base: int, frames: int, name: str = "pool") -> None:
        if frames <= 0:
            raise AllocationError(f"pool {name!r} needs at least one frame")
        self.name = name
        self.base = base
        self.total_frames = frames
        #: Sorted, disjoint, non-adjacent free ranges.
        self._free: list[FrameRange] = [FrameRange(base, frames)]
        self._allocated_frames = 0

    @property
    def free_frames(self) -> Pages:
        return self.total_frames - self._allocated_frames

    @property
    def allocated_frames(self) -> Pages:
        return self._allocated_frames

    def allocate(self, count: Pages) -> FrameRange:
        """Allocate ``count`` contiguous frames (first fit).

        Raises :class:`OutOfMemoryError` when no single free range is large
        enough — callers that can tolerate discontiguity should use
        :meth:`allocate_scattered`.
        """
        if count <= 0:
            raise AllocationError(f"allocation count must be positive: {count}")
        for index, free_range in enumerate(self._free):
            if free_range.count >= count:
                if free_range.count == count:
                    taken = self._free.pop(index)
                else:
                    taken, rest = free_range.split(count)
                    self._free[index] = rest
                self._allocated_frames += count
                return taken
        raise OutOfMemoryError(
            f"pool {self.name!r}: no contiguous run of {count} frames "
            f"({self.free_frames} free total)"
        )

    def allocate_scattered(self, count: Pages) -> list[FrameRange]:
        """Allocate ``count`` frames as one or more ranges.

        Raises :class:`OutOfMemoryError` (leaving the pool untouched) when
        fewer than ``count`` frames are free in total.
        """
        if count <= 0:
            raise AllocationError(f"allocation count must be positive: {count}")
        if count > self.free_frames:
            raise OutOfMemoryError(
                f"pool {self.name!r}: requested {count} frames, "
                f"only {self.free_frames} free"
            )
        taken: list[FrameRange] = []
        remaining = count
        while remaining > 0:
            grab = min(remaining, self._free[0].count)
            taken.append(self.allocate(grab))
            remaining -= grab
        return taken

    def free(self, frame_range: FrameRange) -> None:
        """Return a previously-allocated range; coalesces neighbours."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].start < frame_range.start:
                lo = mid + 1
            else:
                hi = mid
        # Validate: must not overlap neighbours and must be inside the span.
        if frame_range.start < self.base or frame_range.end > self.base + self.total_frames:
            raise AllocationError(
                f"pool {self.name!r}: range {frame_range} outside pool span"
            )
        if lo > 0 and self._free[lo - 1].overlaps(frame_range):
            raise AllocationError(f"double free of {frame_range} in {self.name!r}")
        if lo < len(self._free) and self._free[lo].overlaps(frame_range):
            raise AllocationError(f"double free of {frame_range} in {self.name!r}")

        merged = frame_range
        # Coalesce with predecessor.
        if lo > 0 and self._free[lo - 1].end == merged.start:
            prev = self._free.pop(lo - 1)
            merged = FrameRange(prev.start, prev.count + merged.count)
            lo -= 1
        # Coalesce with successor.
        if lo < len(self._free) and merged.end == self._free[lo].start:
            nxt = self._free.pop(lo)
            merged = FrameRange(merged.start, merged.count + nxt.count)
        self._free.insert(lo, merged)
        self._allocated_frames -= frame_range.count
        if self._allocated_frames < 0:
            raise AllocationError(f"pool {self.name!r}: negative allocation count")

    def check_invariants(self) -> None:
        """Free list must stay sorted, disjoint, non-adjacent, in-span."""
        total_free = 0
        previous: FrameRange | None = None
        for free_range in self._free:
            total_free += free_range.count
            if free_range.start < self.base or free_range.end > self.base + self.total_frames:
                raise AllocationError("free range escaped the pool span")
            if previous is not None and previous.end >= free_range.start:
                raise AllocationError("free list not sorted/disjoint/coalesced")
            previous = free_range
        if total_free != self.free_frames:
            raise AllocationError("free accounting mismatch")
