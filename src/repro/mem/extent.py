"""Page extents: the unit of placement and accounting.

Simulating five million individual page structs per application (Figure 4's
totals) is neither necessary nor tractable in Python.  The OS in this
reproduction manages pages in *extents* — groups of same-typed pages from
one logical workload region that live on one memory node.  All per-page
costs (PTE scans, TLB flushes, migration copies) are still charged per
page; only the bookkeeping is grouped.

:class:`PageType` mirrors the kernel page classes the paper's placement
logic distinguishes (Figure 4 and Section 3.2): anonymous heap, I/O page
cache, buffer cache, slab, network (skbuff) slab, page-table, and DMA
pages.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.mem.frames import FrameRange
from repro.units import PAGE_SIZE, Bytes, Epochs, Pages


class PageType(enum.Enum):
    """Kernel page classes distinguished by HeteroOS placement."""

    HEAP = "heap"
    PAGE_CACHE = "page-cache"
    BUFFER_CACHE = "buffer-cache"
    SLAB = "slab"
    NETWORK_BUFFER = "nw-buff"
    PAGE_TABLE = "pagetable"
    DMA = "dma"

    @property
    def is_io(self) -> bool:
        """Short-lived I/O pages released once the request completes."""
        return self in (PageType.PAGE_CACHE, PageType.BUFFER_CACHE)

    @property
    def is_migratable(self) -> bool:
        """Linearly-mapped page-table and DMA pages cannot migrate
        (Section 4.1's exception list)."""
        return self not in (PageType.PAGE_TABLE, PageType.DMA)


class ExtentState(enum.Enum):
    """Split-LRU state (Linux active/inactive lists)."""

    ACTIVE = "active"
    INACTIVE = "inactive"
    UNEVICTABLE = "unevictable"


_extent_ids = itertools.count(1)


@dataclass
class PageExtent:
    """A group of pages of one type on one node.

    Attributes
    ----------
    region_id:
        The workload region these pages back (access accounting key).
    node_id:
        Guest NUMA node currently holding the pages.
    frames:
        Machine frame ranges backing the extent.
    temperature:
        EWMA of per-epoch access counts; the hotness signal trackers read.
    state:
        LRU list membership.
    accessed / dirty:
        Sticky per-epoch hardware bits (cleared by scans, like PTE bits).
    """

    region_id: str
    page_type: PageType
    pages: Pages
    node_id: int
    frames: list[FrameRange] = field(default_factory=list)
    extent_id: int = field(default_factory=lambda: next(_extent_ids))
    state: ExtentState = ExtentState.ACTIVE
    temperature: float = 0.0
    #: EWMA of per-epoch *write* counts (PAGE_RW-bit tracking, §4.3).
    write_temperature: float = 0.0
    accessed: bool = False
    dirty: bool = False
    #: True while the extent's pages live on the swap device (reclaimed).
    swapped: bool = False
    birth_epoch: Epochs = 0
    last_access_epoch: Epochs = -1

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise AllocationError("extent must contain at least one page")

    @property
    def bytes(self) -> Bytes:
        return self.pages * PAGE_SIZE

    def record_access(
        self,
        epoch: int,
        accesses: float,
        decay: float = 0.5,
        writes: float = 0.0,
    ) -> None:
        """Fold one epoch's access count into the hotness EWMA and set the
        hardware-visible accessed bit when any access occurred.

        ``writes`` feeds a separate write-temperature EWMA — the signal
        the Section 4.3 write-aware NVM extension tracks by periodically
        resetting the PAGE_RW bit.
        """
        self.temperature = self.temperature * decay + accesses
        self.write_temperature = self.write_temperature * decay + writes
        if accesses > 0:
            self.accessed = True
            self.last_access_epoch = epoch

    def clear_hardware_bits(self) -> tuple[bool, bool]:
        """Read-and-clear the (accessed, dirty) bits, as a PTE scan does."""
        bits = (self.accessed, self.dirty)
        self.accessed = False
        self.dirty = False
        return bits
