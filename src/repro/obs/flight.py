# heterolint: disable-file=unseeded-random
"""Sweep flight recorder: host-side observability for ``run_specs``.

PR 4 made a single run observable; this module makes the *sweep* — the
scheduler, the result cache, the retry/journal machinery — observable.
:class:`SweepRecorder` is the passive listener ``run_specs`` notifies
(cache hit/miss, journal reuse, per-spec outcome, retry), accumulating:

* a :class:`~repro.obs.metrics.MetricsRegistry` of sweep metrics
  (``sweep_specs_total``, ``sweep_cache_lookups_total``,
  ``sweep_spec_seconds`` histograms, queue-depth gauges, fault-count
  roll-ups), written as canonical JSON or Prometheus text via
  :meth:`SweepRecorder.write_metrics`;
* per-spec host wall-clock *spans* rendered as worker lanes in a Chrome
  ``trace_event`` file (:meth:`SweepRecorder.write_chrome_trace`, pid
  :data:`SWEEP_PID`), composable with PR 4's per-run traces through
  :func:`merge_traces` into one Perfetto view;
* a live one-screen status (:meth:`SweepRecorder.status` +
  :func:`format_live_status`) behind ``repro sweep --live``, and the
  post-hoc reconstruction behind ``repro report``
  (:func:`reconstruct_report`).

``time.perf_counter`` here is host-side measurement only — it never
feeds a simulated quantity, hence the ``unseeded-random`` file waiver
(same rationale as :mod:`repro.obs.profiler`).

Hard contract (mirrors PR 4's no-perturbation rule): the recorder
observes, never steers.  It is not a ``run_spec`` parameter, never
crosses into worker processes, and never enters cache keys —
``tests/test_sweep_recorder.py`` pins recorder-on ``run_specs`` results
field-by-field identical to recorder-off.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.faults import merge_fault_counts
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SWEEP_PID",
    "SweepRecorder",
    "format_live_status",
    "merge_traces",
    "reconstruct_report",
]

#: Chrome-trace process id for the sweep scheduler's worker lanes.
#: PR 4's per-run traces use pid 0 (virtual time) and pid 1 (host
#: profiler); the sweep view claims the next slot so the three compose
#: in one Perfetto session without colliding.
SWEEP_PID = 2

#: Outcome statuses a spec can finish with (journal + metrics label).
_STATUSES = ("ok", "failed")


def _now() -> float:
    """Host wall-clock seconds; harness telemetry, never virtual time."""
    return time.perf_counter()


class SweepRecorder:
    """Accumulates sweep-execution telemetry from ``run_specs`` hooks.

    Purely observational: every hook only mutates recorder-owned state,
    so attaching one cannot change a single result bit.  One recorder
    instance covers one sweep (reuse across sweeps keeps accumulating,
    like a Prometheus process registry).
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._t0 = _now()
        self.total = 0
        self.distinct = 0
        self.max_workers = 1
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.failures_by_kind: "Dict[str, int]" = {}
        self.fault_counts: "Dict[str, int]" = {}
        #: (label, start_sec, end_sec, source, status) per executed spec.
        self._spans: "List[Tuple[str, float, float, str, str]]" = []
        #: (name, ts_sec, args) instant events (cache hits, retries).
        self._instants: "List[Tuple[str, float, dict]]" = []
        self._cache_baseline: "Dict[str, int]" = {}
        reg = self.registry
        self._m_specs = reg.counter(
            "sweep_specs_total",
            "Grid points finished, by outcome status.",
            labels=("status",),
        )
        self._m_sources = reg.counter(
            "sweep_spec_results_total",
            "Distinct spec resolutions, by result source.",
            labels=("source",),
        )
        self._m_lookups = reg.counter(
            "sweep_cache_lookups_total",
            "Result-cache lookups, by result.",
            labels=("result",),
        )
        self._m_evictions = reg.counter(
            "sweep_cache_evictions_total",
            "Invalid result-cache entries evicted during lookups.",
        )
        self._m_store_failures = reg.counter(
            "sweep_cache_store_failures_total",
            "Result-cache writes that failed (results not persisting).",
        )
        self._m_retries = reg.counter(
            "sweep_retries_total",
            "Transient-failure retries, by failure kind.",
            labels=("kind",),
        )
        self._m_failures = reg.counter(
            "sweep_failures_total",
            "Final per-spec failures, by kind.",
            labels=("kind",),
        )
        self._m_journal_reused = reg.counter(
            "sweep_journal_reused_total",
            "Journaled deterministic failures reused without re-running.",
        )
        self._m_journal_corrupt = reg.counter(
            "sweep_journal_corrupt_lines_total",
            "Corrupt journal lines skipped while loading (torn writes).",
        )
        self._m_dedup = reg.counter(
            "sweep_specs_deduped_total",
            "Duplicate grid points folded into one execution.",
        )
        self._m_faults = reg.counter(
            "sweep_fault_events_total",
            "Injected-fault firings rolled up across results, by kind.",
            labels=("kind",),
        )
        self._m_seconds = reg.histogram(
            "sweep_spec_seconds",
            "Host wall-clock seconds per executed spec, by source.",
            labels=("source",),
        )
        self._g_queue = reg.gauge(
            "sweep_queue_depth", "Grid points not yet finished."
        )
        self._g_inflight = reg.gauge(
            "sweep_in_flight_workers",
            "Upper-bound estimate of busy workers "
            "(min of pool size and queue depth).",
        )
        self._g_workers = reg.gauge(
            "sweep_max_workers", "Worker-pool size for this sweep."
        )

    # ------------------------------------------------------------------
    # Hooks called by run_specs (all observation, no steering)
    # ------------------------------------------------------------------

    def sweep_started(
        self,
        total: int,
        distinct: int,
        max_workers: int,
        cache: "object | None" = None,
    ) -> None:
        """The grid is known: sizes, dedup factor, pool width."""
        self._t0 = _now()
        self.total = total
        self.distinct = distinct
        self.max_workers = max_workers
        self._m_dedup.inc(total - distinct)
        self._g_workers.set(max_workers)
        self._update_depth()
        if cache is not None:
            # Caches may be shared across sweeps; remember the baseline
            # so sweep_finished() attributes only this sweep's deltas.
            self._cache_baseline = {
                "evictions": getattr(cache, "evictions", 0),
                "store_failures": getattr(cache, "store_failures", 0),
            }

    def instant(self, name: str, **args: object) -> None:
        """Record a point-in-time event on the sweep's instant track.

        The recorder's own hooks route through this; external harness
        layers (the ``repro serve`` scheduler) may add their own marks —
        job admissions, drains — so one Chrome trace shows the full
        service timeline alongside the spec spans."""
        self._instants.append((name, _now() - self._t0, dict(args)))

    def cache_hit(self, label: str) -> None:
        self.cache_hits += 1
        self._m_lookups.inc(result="hit")
        self.instant("cache-hit", spec=label)

    def cache_miss(self, label: str) -> None:
        self.cache_misses += 1
        self._m_lookups.inc(result="miss")

    def journal_reused(self, label: str) -> None:
        self._m_journal_reused.inc()
        self.instant("journal-reuse", spec=label)

    def journal_corrupt_lines(self, count: int) -> None:
        if count > 0:
            self._m_journal_corrupt.inc(count)

    def retry(self, label: str, kind: str, attempt: int) -> None:
        self.retries += 1
        self._m_retries.inc(kind=kind)
        self.instant("retry", spec=label, kind=kind, attempt=attempt)

    def outcome(
        self,
        label: str,
        source: str,
        status: str,
        elapsed_sec: float,
        fault_counts: "Mapping[str, int] | None" = None,
        failure_kind: "str | None" = None,
        copies: int = 1,
    ) -> None:
        """One distinct spec finished (``copies`` counts its dedup'd
        duplicates so totals match the input grid)."""
        if status not in _STATUSES:
            raise ObservabilityError(
                f"unknown outcome status {status!r}; expected {_STATUSES}"
            )
        end = _now() - self._t0
        self.done += copies
        if status == "ok":
            self.ok += copies
        else:
            self.failed += copies
            if failure_kind:
                self.failures_by_kind[failure_kind] = (
                    self.failures_by_kind.get(failure_kind, 0) + copies
                )
                self._m_failures.inc(copies, kind=failure_kind)
        self._m_specs.inc(copies, status=status)
        self._m_sources.inc(source=source)
        self._m_seconds.observe(elapsed_sec, source=source)
        if fault_counts:
            merge_fault_counts(self.fault_counts, fault_counts)
            for kind, count in fault_counts.items():
                self._m_faults.inc(count, kind=str(kind))
        if elapsed_sec > 0:
            self._spans.append(
                (label, end - elapsed_sec, end, source, status)
            )
        self._update_depth()

    def sweep_finished(self, cache: "object | None" = None) -> None:
        """The sweep returned; fold in cache-side counters."""
        if cache is not None:
            baseline = self._cache_baseline
            self._m_evictions.inc(
                max(
                    0,
                    getattr(cache, "evictions", 0)
                    - baseline.get("evictions", 0),
                )
            )
            self._m_store_failures.inc(
                max(
                    0,
                    getattr(cache, "store_failures", 0)
                    - baseline.get("store_failures", 0),
                )
            )
        self._g_inflight.set(0)

    def _update_depth(self) -> None:
        depth = max(0, self.total - self.done)
        self._g_queue.set(depth)
        self._g_inflight.set(min(self.max_workers, depth))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def elapsed_sec(self) -> float:
        return _now() - self._t0

    def status(self) -> dict:
        """One-screen live snapshot: progress, hit rate, ETA, failures.

        The ETA extrapolates mean wall-clock per *finished* spec over
        the remaining queue — a coarse estimate that converges as the
        sweep proceeds (and is ``None`` until anything finishes).
        """
        elapsed = self.elapsed_sec
        remaining = max(0, self.total - self.done)
        eta: "Optional[float]" = None
        if self.done > 0 and remaining > 0:
            eta = elapsed * remaining / self.done
        lookups = self.cache_hits + self.cache_misses
        return {
            "total": self.total,
            "distinct": self.distinct,
            "done": self.done,
            "ok": self.ok,
            "failed": self.failed,
            "queue_depth": remaining,
            "in_flight": min(self.max_workers, remaining),
            "max_workers": self.max_workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": (self.cache_hits / lookups) if lookups else None,
            "retries": self.retries,
            "failures_by_kind": dict(sorted(self.failures_by_kind.items())),
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "elapsed_sec": elapsed,
            "eta_sec": eta,
        }

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    def write_metrics(self, path: "str | Path") -> Path:
        """Write the registry snapshot: ``*.prom`` selects Prometheus
        text exposition, anything else canonical JSON."""
        path = Path(path)
        if path.suffix == ".prom":
            payload = self.registry.to_prometheus()
        else:
            payload = self.registry.to_json() + "\n"
        path.write_text(payload, encoding="utf-8")
        return path

    def trace_events(self) -> "List[dict]":
        """Chrome ``trace_event`` list: spec spans on greedily-packed
        worker lanes (pid :data:`SWEEP_PID`), cache/retry instants on
        lane 0, and a ``specs done`` counter track."""
        events: "List[dict]" = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": SWEEP_PID,
                "tid": 0,
                "args": {"name": "sweep scheduler (host wall-clock)"},
            }
        ]
        # Greedy lane packing: spans sorted by start, each placed on the
        # first lane free at its start time.  Lane count approximates
        # observed worker concurrency from the parent's vantage.
        lane_free: "List[float]" = []
        done_track = 0
        ordered = sorted(self._spans, key=lambda span: (span[1], span[2]))
        for label, start, end, source, status in ordered:
            lane = None
            for i, free_at in enumerate(lane_free):
                if free_at <= start:
                    lane = i
                    break
            if lane is None:
                lane = len(lane_free)
                lane_free.append(0.0)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": SWEEP_PID,
                        "tid": lane + 1,
                        "args": {"name": f"worker lane {lane}"},
                    }
                )
            lane_free[lane] = end
            events.append(
                {
                    "name": label,
                    "cat": "spec",
                    "ph": "X",
                    "pid": SWEEP_PID,
                    "tid": lane + 1,
                    "ts": start * 1e6,
                    "dur": (end - start) * 1e6,
                    "args": {"source": source, "status": status},
                }
            )
            done_track += 1
            events.append(
                {
                    "name": "specs done",
                    "ph": "C",
                    "pid": SWEEP_PID,
                    "tid": 0,
                    "ts": end * 1e6,
                    "args": {"done": done_track},
                }
            )
        for name, ts, args in self._instants:
            events.append(
                {
                    "name": name,
                    "cat": "sweep",
                    "ph": "i",
                    "s": "p",
                    "pid": SWEEP_PID,
                    "tid": 0,
                    "ts": ts * 1e6,
                    "args": dict(args),
                }
            )
        return events

    def write_chrome_trace(self, path: "str | Path") -> Path:
        path = Path(path)
        payload = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
        }
        with path.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        return path


# ----------------------------------------------------------------------
# Composition + rendering helpers (host-side, CLI-facing)
# ----------------------------------------------------------------------


def _load_trace_events(path: Path) -> "List[dict]":
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"{path}: not a readable trace: {exc}"
        ) from exc
    events = payload.get("traceEvents") if isinstance(payload, dict) else payload
    if not isinstance(events, list):
        raise ObservabilityError(
            f"{path}: expected a trace_event JSON object or array"
        )
    return [event for event in events if isinstance(event, dict)]


def merge_traces(
    paths: "Sequence[str | Path]", out: "str | Path"
) -> Path:
    """Merge Chrome traces into one Perfetto-loadable file.

    Each input keeps its internal pid layout but is shifted into its own
    pid range (0, stride, 2*stride, ...), so a sweep trace (pid 2) and
    several per-run traces (pids 0/1 each) land side by side instead of
    colliding.  The stride is the largest pid across all inputs plus
    one, so the remap is collision-free and deterministic.
    """
    loaded = [_load_trace_events(Path(p)) for p in paths]
    max_pid = 0
    for events in loaded:
        for event in events:
            pid = event.get("pid")
            if isinstance(pid, int) and pid > max_pid:
                max_pid = pid
    stride = max_pid + 1
    merged: "List[dict]" = []
    for index, events in enumerate(loaded):
        offset = index * stride
        for event in events:
            shifted = dict(event)
            if isinstance(shifted.get("pid"), int):
                shifted["pid"] = shifted["pid"] + offset
            merged.append(shifted)
    out = Path(out)
    payload = {"traceEvents": merged, "displayTimeUnit": "ms"}
    with out.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    return out


def _fmt_duration(seconds: "float | None") -> str:
    if seconds is None:
        return "--:--"
    whole = int(seconds)
    if whole >= 3600:
        return f"{whole // 3600}:{whole % 3600 // 60:02d}:{whole % 60:02d}"
    return f"{whole // 60}:{whole % 60:02d}"


def format_live_status(status: dict, width: int = 40) -> str:
    """Render :meth:`SweepRecorder.status` as a one-screen string.

    Pure formatting (the CLI owns the actual printing/refreshing), so
    it is unit-testable and the obs layer never prints.
    """
    total = max(1, status.get("total", 0))
    done = status.get("done", 0)
    filled = int(width * min(1.0, done / total))
    bar = "#" * filled + "-" * (width - filled)
    hit_rate = status.get("hit_rate")
    hit_text = f"{hit_rate * 100:5.1f}%" if hit_rate is not None else "  n/a"
    lines = [
        f"sweep [{bar}] {done}/{status.get('total', 0)} "
        f"({status.get('distinct', 0)} distinct)",
        (
            f"  ok {status.get('ok', 0)}  failed {status.get('failed', 0)}"
            f"  retries {status.get('retries', 0)}"
            f"  workers {status.get('in_flight', 0)}"
            f"/{status.get('max_workers', 0)}"
        ),
        (
            f"  cache hit rate {hit_text}"
            f"  ({status.get('cache_hits', 0)} hit"
            f" / {status.get('cache_misses', 0)} miss)"
        ),
        (
            f"  elapsed {_fmt_duration(status.get('elapsed_sec'))}"
            f"  eta {_fmt_duration(status.get('eta_sec'))}"
        ),
    ]
    failures = status.get("failures_by_kind") or {}
    if failures:
        rendered = ", ".join(
            f"{kind}={count}" for kind, count in failures.items()
        )
        lines.append(f"  failures: {rendered}")
    faults = status.get("fault_counts") or {}
    if faults:
        rendered = ", ".join(
            f"{kind}={count}" for kind, count in faults.items()
        )
        lines.append(f"  faults: {rendered}")
    return "\n".join(lines)


def _metric_value(
    snapshot: "dict | None", name: str, **labels: str
) -> "float | None":
    """Pull one series value out of a registry snapshot.

    ``None`` means the metric itself is absent (older snapshot); a
    registered metric whose labeled series never fired reads as 0.
    """
    if not snapshot:
        return None
    metric = snapshot.get("metrics", {}).get(name)
    if not metric:
        return None
    for entry in metric.get("series", []):
        if entry.get("labels", {}) == labels:
            return entry.get("value")
    return 0


def reconstruct_report(
    journal_entries: "Mapping[str, dict]",
    metrics_snapshot: "dict | None" = None,
) -> dict:
    """Rebuild a sweep summary post-hoc from journal + metrics files.

    The journal holds per-spec dispositions (one entry per distinct
    cache key, last write wins); the optional metrics snapshot restores
    the counters the journal cannot carry (cache hit/miss, retries,
    evictions).  This is the ``repro report`` data source — the same
    numbers ``--live`` showed, recoverable after the process is gone.
    """
    statuses: "Dict[str, int]" = {}
    kinds: "Dict[str, int]" = {}
    total_elapsed = 0.0
    sources: "Dict[str, int]" = {}
    slowest: "List[Tuple[float, str]]" = []
    for entry in journal_entries.values():
        status = str(entry.get("status", "unknown"))
        statuses[status] = statuses.get(status, 0) + 1
        kind = entry.get("kind")
        if kind:
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        source = entry.get("source")
        if source:
            sources[str(source)] = sources.get(str(source), 0) + 1
        elapsed = entry.get("elapsed_sec")
        if isinstance(elapsed, (int, float)):
            total_elapsed += float(elapsed)
            slowest.append((float(elapsed), str(entry.get("label", "?"))))
    slowest.sort(reverse=True)
    report = {
        "specs": len(journal_entries),
        "statuses": dict(sorted(statuses.items())),
        "failures_by_kind": dict(sorted(kinds.items())),
        "sources": dict(sorted(sources.items())),
        "executed_wall_sec": total_elapsed,
        "slowest": [
            {"label": label, "elapsed_sec": elapsed}
            for elapsed, label in slowest[:5]
        ],
    }
    if metrics_snapshot:
        hits = _metric_value(
            metrics_snapshot, "sweep_cache_lookups_total", result="hit"
        )
        misses = _metric_value(
            metrics_snapshot, "sweep_cache_lookups_total", result="miss"
        )
        report["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (
                hits / (hits + misses)
                if hits is not None and misses is not None and hits + misses
                else None
            ),
            "evictions": _metric_value(
                metrics_snapshot, "sweep_cache_evictions_total"
            ),
            "store_failures": _metric_value(
                metrics_snapshot, "sweep_cache_store_failures_total"
            ),
        }
        corrupt = _metric_value(
            metrics_snapshot, "sweep_journal_corrupt_lines_total"
        )
        if corrupt:
            report["journal_corrupt_lines"] = corrupt
    return report
