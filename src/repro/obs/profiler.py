# heterolint: disable-file=unseeded-random
"""Host wall-clock profiling of simulator phases.

The simulator reports *virtual* nanoseconds; this profiler measures the
*host* seconds spent computing them, phase by phase (allocate, touch,
timing, policy, ...), so hot paths in the simulator itself are visible.
``time.perf_counter`` is host-side measurement only — it never feeds a
simulated quantity, which is why this file carries the
``unseeded-random`` lint waiver instead of threading the seeded RNG.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseProfiler:
    """Accumulates host wall-clock time per named simulator phase.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("timing"):
            ...  # hot work
        prof.report()  # {"timing": {"calls": 1, "seconds": 0.0012}}

    Phases may nest; each phase accounts its own wall-clock span
    inclusively (a nested phase's time is counted in both).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase occurrence under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        """Sum of all phase times (nested phases double-count)."""
        return sum(self.seconds.values())

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"calls": n, "seconds": s}``, slowest first."""
        return {
            name: {"calls": self.calls[name], "seconds": self.seconds[name]}
            for name in sorted(
                self.seconds, key=lambda n: self.seconds[n], reverse=True
            )
        }

    def reset(self) -> None:
        """Drop all accumulated phase times."""
        self.seconds.clear()
        self.calls.clear()
