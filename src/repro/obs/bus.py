"""The telemetry event bus the simulation engine publishes to.

A :class:`Telemetry` instance is handed to ``SimulationEngine`` (via
``run_experiment(..., telemetry=...)``).  The engine publishes one
:class:`~repro.obs.sample.EpochSample` per epoch; mid-epoch, subsystems
report discrete events (migration pass outcomes, policy decisions)
which the bus buffers and the engine folds into that epoch's sample.

Determinism contract: the bus only *reads* simulator state.  It holds
no RNG, feeds nothing back, and when ``enabled`` is ``False`` (or no
bus is attached at all) the engine takes the exact seed code path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.profiler import PhaseProfiler
from repro.obs.sample import EpochSample
from repro.obs.sinks import Sink, TimelineSink


class Telemetry:
    """Fan-out bus: buffers events, publishes samples to all sinks.

    Parameters
    ----------
    sinks:
        Sinks to publish to.  Defaults to a single in-memory
        :class:`~repro.obs.sinks.TimelineSink` so ``Telemetry()`` with
        no arguments already yields ``RunResult.timeline``.
    profiler:
        Optional :class:`~repro.obs.profiler.PhaseProfiler`; when set,
        the engine brackets its phases and the host profile lands in
        the run summary.
    enabled:
        When ``False`` the engine skips sampling entirely — useful for
        measuring the cost of merely *carrying* a bus (benchmarks).
    """

    def __init__(
        self,
        sinks: Optional[Sequence[Sink]] = None,
        profiler: Optional[PhaseProfiler] = None,
        enabled: bool = True,
    ) -> None:
        self.sinks: List[Sink] = (
            list(sinks) if sinks is not None else [TimelineSink()]
        )
        self.profiler = profiler
        self.enabled = enabled
        self._pending_events: List[dict] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Mid-epoch event reporting (buffered into the epoch's sample).
    # ------------------------------------------------------------------
    def event(self, name: str, source: str, **data: object) -> None:
        """Buffer a discrete event for the current epoch's sample."""
        if not self.enabled:
            return
        record: dict = {"name": name, "source": source}
        record.update(data)
        self._pending_events.append(record)

    def migration_event(self, kind: str, report: object) -> None:
        """Migration-pass bracket callback (``begin``/``commit``/``abort``).

        Matches the ``MigrationEngine.observer`` signature; ``report``
        is duck-typed so :mod:`repro.vmm` needs no import of obs.
        """
        self.event(
            "migration-" + kind,
            "vmm.migration",
            pages_moved=getattr(report, "pages_moved", 0),
            pages_failed=getattr(report, "pages_failed", 0),
            pages_rejected=getattr(report, "pages_rejected", 0),
            extents_moved=getattr(report, "extents_moved", 0),
            evicted_pages=getattr(report, "evicted_pages", 0),
            cost_ns=getattr(report, "cost_ns", 0.0),
        )

    def policy_event(self, decision: str, **data: object) -> None:
        """Placement-policy decision (promotion pass, demotion pass, ...)."""
        self.event(decision, "core.policy", **data)

    def drain_events(self) -> List[dict]:
        """Return and clear the events buffered since the last drain."""
        events = self._pending_events
        self._pending_events = []
        return events

    # ------------------------------------------------------------------
    # Run lifecycle, driven by the engine.
    # ------------------------------------------------------------------
    def open_run(self, header: dict) -> None:
        """Announce run metadata to every sink before epoch 0."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.on_start(header)

    def publish(self, sample: EpochSample) -> None:
        """Deliver one epoch's sample to every sink, in epoch order."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.on_sample(sample)

    def close_run(self, summary: dict) -> None:
        """Deliver final aggregates (+ host profile) and close sinks."""
        if self._closed or not self.enabled:
            return
        self._closed = True
        if self.profiler is not None:
            summary = dict(summary)
            summary["profile"] = self.profiler.report()
        for sink in self.sinks:
            sink.on_finish(summary)
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Convenience accessors.
    # ------------------------------------------------------------------
    def timeline(self) -> Optional[List[EpochSample]]:
        """Samples from the first in-memory sink, if one is attached."""
        for sink in self.sinks:
            if isinstance(sink, TimelineSink):
                return sink.samples
        return None
