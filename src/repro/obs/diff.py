"""Timeline diffing: find the first epoch where two runs diverge.

Turns "these two runs ended with different numbers" into "they first
disagreed at epoch 17, on ``llc_misses`` and ``stall_ns_by_device``" —
the root-causing workflow behind ``repro timeline --diff``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.sample import _DICT_FIELDS, _SCALAR_FIELDS, EpochSample


def load_timeline(
    path: Union[str, Path]
) -> Tuple[dict, List[EpochSample], dict]:
    """Parse a JSONL timeline into ``(header, samples, summary)``.

    Unknown line types are ignored (forward compatibility); a missing
    header or summary comes back as ``{}``.  A corrupt *final* line —
    the signature of a crash/kill mid-append truncating the file — is
    dropped with a warning so a flight-recorder timeline from a dead
    run stays loadable; corruption anywhere else still raises (that is
    a damaged file, not a torn write).
    """
    header: dict = {}
    summary: dict = {}
    samples: List[EpochSample] = []
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.readlines()
    last_lineno = 0
    for lineno in range(len(lines), 0, -1):
        if lines[lineno - 1].strip():
            last_lineno = lineno
            break
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if lineno == last_lineno:
                warnings.warn(
                    f"{path}:{lineno}: dropping truncated trailing line "
                    f"(crash mid-append?): {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise ObservabilityError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        kind = record.get("type")
        if kind == "header":
            header = {k: v for k, v in record.items() if k != "type"}
        elif kind == "summary":
            summary = {k: v for k, v in record.items() if k != "type"}
        elif kind == "sample":
            samples.append(EpochSample.from_dict(record))
    return header, samples, summary


@dataclass
class TimelineDiff:
    """Outcome of comparing two timelines epoch by epoch."""

    #: Epoch index of the first divergent sample, or ``None`` if every
    #: common epoch matched.
    first_divergent_epoch: Optional[int] = None
    #: Field names differing at that epoch, in schema order.
    differing_fields: List[str] = field(default_factory=list)
    #: ``(field, value_a, value_b)`` for each differing field.
    details: List[tuple] = field(default_factory=list)
    #: Epoch counts of the two timelines (diverge by truncation when
    #: unequal and all common epochs match).
    len_a: int = 0
    len_b: int = 0

    @property
    def identical(self) -> bool:
        """True when both timelines match in length and every field."""
        return self.first_divergent_epoch is None and self.len_a == self.len_b

    def describe(self) -> str:
        """Human-readable one-or-more-line report."""
        if self.identical:
            return f"timelines identical ({self.len_a} epochs)"
        if self.first_divergent_epoch is None:
            return (
                "timelines agree on all "
                f"{min(self.len_a, self.len_b)} common epochs, but lengths "
                f"differ: {self.len_a} vs {self.len_b}"
            )
        lines = [
            f"first divergent epoch: {self.first_divergent_epoch}",
            "differing fields: " + ", ".join(self.differing_fields),
        ]
        for name, a, b in self.details:
            lines.append(f"  {name}: {a!r} != {b!r}")
        return "\n".join(lines)


def _compare_sample(a: EpochSample, b: EpochSample) -> List[tuple]:
    diffs = []
    for name in _SCALAR_FIELDS + _DICT_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diffs.append((name, va, vb))
    return diffs


def diff_timelines(
    a: List[EpochSample], b: List[EpochSample]
) -> TimelineDiff:
    """Compare two timelines; report the first epoch where they differ."""
    result = TimelineDiff(len_a=len(a), len_b=len(b))
    for sample_a, sample_b in zip(a, b):
        diffs = _compare_sample(sample_a, sample_b)
        if diffs:
            result.first_divergent_epoch = sample_a.epoch
            result.differing_fields = [d[0] for d in diffs]
            result.details = diffs
            break
    return result
