"""Telemetry sinks: where :class:`~repro.obs.sample.EpochSample`\\ s go.

Three built-ins cover the paper workflows:

* :class:`TimelineSink` — in-memory list, attached to
  ``RunResult.timeline`` for programmatic plotting/diffing.
* :class:`JsonlSink` — one canonical JSON object per line (``header``,
  ``sample`` xN, ``summary``), byte-stable for a given run so timelines
  can be diffed and cached.
* :class:`ChromeTraceSink` — Chrome ``trace_event`` JSON; open the file
  in https://ui.perfetto.dev or ``chrome://tracing``.  Virtual time is
  rendered on pid 0, host self-profiler phases on pid 1.

Custom sinks subclass :class:`Sink` and override any of the four hooks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.sample import EpochSample


def json_line(obj: dict) -> str:
    """Canonical single-line JSON: sorted keys, no whitespace.

    Python's float formatting round-trips exactly, so dumping and
    re-loading a timeline preserves every bit of every sample.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class Sink:
    """Base sink; every hook is optional."""

    def on_start(self, header: dict) -> None:
        """Run metadata (workload, policy, seed, ...) before epoch 0."""

    def on_sample(self, sample: EpochSample) -> None:
        """One per epoch, in epoch order."""

    def on_finish(self, summary: dict) -> None:
        """Final aggregates + host profile after the last epoch."""

    def close(self) -> None:
        """Flush and release resources; called exactly once."""


class TimelineSink(Sink):
    """Accumulates samples in memory (becomes ``RunResult.timeline``)."""

    def __init__(self) -> None:
        self.header: dict = {}
        self.samples: List[EpochSample] = []
        self.summary: dict = {}

    def on_start(self, header: dict) -> None:
        self.header = header

    def on_sample(self, sample: EpochSample) -> None:
        self.samples.append(sample)

    def on_finish(self, summary: dict) -> None:
        self.summary = summary


class JsonlSink(Sink):
    """Streams typed JSON lines to ``path`` (or an open text stream).

    Line types: ``{"type":"header",...}``, ``{"type":"sample",...}``
    (the flattened :meth:`EpochSample.to_dict`), ``{"type":"summary",...}``.
    """

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._fh: Optional[IO[str]] = path  # caller-owned stream
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(path)
            self._fh = None
            self._owns = True

    def _file(self) -> IO[str]:
        if self._fh is None:
            if self.path is None:
                raise ObservabilityError("JsonlSink used after close()")
            self._fh = self.path.open("w", encoding="utf-8")
        return self._fh

    def on_start(self, header: dict) -> None:
        record = dict(header)
        record["type"] = "header"
        self._file().write(json_line(record) + "\n")

    def on_sample(self, sample: EpochSample) -> None:
        record = sample.to_dict()
        record["type"] = "sample"
        self._file().write(json_line(record) + "\n")

    def on_finish(self, summary: dict) -> None:
        record = dict(summary)
        record["type"] = "summary"
        self._file().write(json_line(record) + "\n")

    def close(self) -> None:
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None


class ChromeTraceSink(Sink):
    """Emits Chrome ``trace_event`` JSON (Perfetto / chrome://tracing).

    Layout:

    * pid 0 "virtual time" — one complete (``ph:"X"``) slice per epoch on
      the virtual-ns axis (rendered as µs), instant events for migration
      passes / policy decisions, and counter (``ph:"C"``) tracks for
      MPKI, per-device stall, migration activity, and FastMem occupancy.
    * pid 1 "host profiler" — the self-profiler's per-phase wall-clock
      totals as slices, when profiling was enabled.
    """

    _VIRTUAL_PID = 0
    _HOST_PID = 1

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.events: List[dict] = []
        self._virtual_ns = 0.0
        self._closed = False

    def _meta(self, pid: int, name: str) -> None:
        self.events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def on_start(self, header: dict) -> None:
        label = "{} / {} (virtual time)".format(
            header.get("workload", "?"), header.get("policy", "?")
        )
        self._meta(self._VIRTUAL_PID, label)
        self.events.append(
            {
                "name": "run",
                "ph": "M",
                "pid": self._VIRTUAL_PID,
                "tid": 0,
                "args": dict(header),
            }
        )

    def on_sample(self, sample: EpochSample) -> None:
        ts_us = self._virtual_ns / 1000.0
        dur_us = sample.runtime_ns / 1000.0
        self.events.append(
            {
                "name": "epoch {}".format(sample.epoch),
                "cat": "epoch",
                "ph": "X",
                "pid": self._VIRTUAL_PID,
                "tid": 0,
                "ts": ts_us,
                "dur": dur_us,
                "args": {
                    "mpki": sample.mpki,
                    "llc_misses": sample.llc_misses,
                    "stall_ns": sample.stall_ns,
                    "pages_migrated": sample.pages_migrated,
                    "pages_demoted": sample.pages_demoted,
                },
            }
        )
        counters = {
            "mpki": {"mpki": sample.mpki},
            "stall_ns": dict(sample.stall_ns_by_device),
            "migration pages": {
                "migrated": sample.pages_migrated,
                "demoted": sample.pages_demoted,
            },
            "fastmem pages": {
                "used": sample.fast_used_pages,
                "free": sample.fast_free_pages,
            },
        }
        for name, args in counters.items():
            self.events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": self._VIRTUAL_PID,
                    "tid": 0,
                    "ts": ts_us,
                    "args": args,
                }
            )
        for event in sample.events:
            self.events.append(
                {
                    "name": event.get("name", "event"),
                    "cat": event.get("source", "event"),
                    "ph": "i",
                    "s": "t",
                    "pid": self._VIRTUAL_PID,
                    "tid": 1,
                    "ts": ts_us,
                    "args": {
                        k: v
                        for k, v in event.items()
                        if k not in ("name", "source")
                    },
                }
            )
        self._virtual_ns += sample.runtime_ns

    def on_finish(self, summary: dict) -> None:
        profile: Dict[str, dict] = summary.get("profile") or {}
        if profile:
            self._meta(self._HOST_PID, "simulator host profile")
        ts_us = 0.0
        for phase, entry in profile.items():
            dur_us = entry["seconds"] * 1e6
            self.events.append(
                {
                    "name": phase,
                    "cat": "host",
                    "ph": "X",
                    "pid": self._HOST_PID,
                    "tid": 0,
                    "ts": ts_us,
                    "dur": dur_us,
                    "args": {"calls": entry["calls"]},
                }
            )
            ts_us += dur_us
        self.events.append(
            {
                "name": "summary",
                "ph": "M",
                "pid": self._VIRTUAL_PID,
                "tid": 0,
                "args": {
                    k: v for k, v in summary.items() if k != "profile"
                },
            }
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        payload = {"traceEvents": self.events, "displayTimeUnit": "ms"}
        with self.path.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
