"""Host-side metrics: a deterministic Counter/Gauge/Histogram registry.

The simulator's telemetry (:mod:`repro.obs.bus`) observes *virtual*
behaviour inside one run.  This module observes the *host harness* —
the sweep scheduler, the result cache, the retry/journal machinery —
which is wall-clock, multi-process work a long sweep otherwise executes
as a black box.  The design mirrors Prometheus' data model (typed
metrics carrying labeled series) but is deliberately deterministic and
dependency-free:

* metric and label *names* are validated against the Prometheus
  grammar at registration time, so every snapshot is exportable;
* :meth:`MetricsRegistry.snapshot` renders metrics sorted by name and
  series sorted by label values, so two registries that saw the same
  events produce byte-identical canonical JSON
  (:meth:`MetricsRegistry.to_json`);
* :meth:`MetricsRegistry.to_prometheus` is the text exposition format,
  ready for a future ``repro serve`` scrape endpoint;
* :func:`snapshot_delta` subtracts two snapshots (counters and
  histograms subtract, gauges take the newer reading), the primitive
  behind incremental scrapes and post-hoc windowed reports.

Hard contract (the sweep twin of PR 4's no-perturbation rule): metrics
are harness observation only.  They never enter
:class:`~repro.sim.parallel.ExperimentSpec` cache keys and never cross
into worker processes — ``tests/test_sweep_recorder.py`` pins
metrics-on results field-by-field identical to metrics-off, and the
``metrics-confinement`` heterolint rule keeps writes inside the
observability plane.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "snapshot_delta",
]

#: Bumped whenever the snapshot JSON schema changes shape.
METRICS_FORMAT_VERSION = 1

#: The Content-Type a scrape endpoint must answer with for
#: :meth:`MetricsRegistry.to_prometheus` payloads (text exposition
#: format 0.0.4 — what ``repro serve`` mounts on ``/metrics``).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Histogram bucket upper bounds (seconds) used when none are given —
#: spans per-spec wall-clock from trivial cache-adjacent work to the
#: multi-minute grid points a timeout would catch.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    120.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(name: str, what: str) -> str:
    pattern = _NAME_RE if what == "metric" else _LABEL_RE
    if not isinstance(name, str) or not pattern.match(name):
        raise ObservabilityError(
            f"invalid {what} name {name!r}: must match {pattern.pattern}"
        )
    if what == "label" and name.startswith("__"):
        raise ObservabilityError(
            f"label name {name!r} is reserved (double underscore prefix)"
        )
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without a trailing .0."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(value)


class Metric:
    """Base labeled metric: a family of series keyed by label values.

    A metric declares its label *names* once; every observation supplies
    exactly those labels (as keyword arguments), which keeps series keys
    canonical and the exposition deterministic.  A metric with no labels
    has a single anonymous series.
    """

    metric_type = "untyped"

    def __init__(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> None:
        self.name = _validate_name(name, "metric")
        self.help = str(help_text)
        self.label_names: Tuple[str, ...] = tuple(
            _validate_name(label, "label") for label in labels
        )
        if len(set(self.label_names)) != len(self.label_names):
            raise ObservabilityError(
                f"metric {name!r} declares duplicate label names"
            )
        #: label-values tuple -> series state (subclass-defined).
        self._series: "Dict[Tuple[str, ...], object]" = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        given = set(labels)
        declared = set(self.label_names)
        if given != declared:
            raise ObservabilityError(
                f"metric {self.name!r} takes labels "
                f"{sorted(declared)}, got {sorted(given)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_dict(self, key: Tuple[str, ...]) -> "Dict[str, str]":
        return dict(zip(self.label_names, key))

    def series_snapshot(self) -> List[dict]:
        """One dict per series, sorted by label values (canonical)."""
        return [
            self._series_entry(key)
            for key in sorted(self._series)
        ]

    def _series_entry(self, key: Tuple[str, ...]) -> dict:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "type": self.metric_type,
            "help": self.help,
            "labels": list(self.label_names),
            "series": self.series_snapshot(),
        }


class Counter(Metric):
    """Monotonically increasing count (events, hits, retries)."""

    metric_type = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)  # type: ignore[return-value]

    def _series_entry(self, key: Tuple[str, ...]) -> dict:
        return {"labels": self._label_dict(key), "value": self._series[key]}


class Gauge(Metric):
    """Point-in-time reading (queue depth, in-flight workers)."""

    metric_type = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[self._key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)  # type: ignore[return-value]

    def _series_entry(self, key: Tuple[str, ...]) -> dict:
        return {"labels": self._label_dict(key), "value": self._series[key]}


class Histogram(Metric):
    """Distribution with fixed, cumulative buckets (per-spec seconds).

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists,
    so ``count`` equals the ``+Inf`` reading and bucket counts are
    cumulative exactly as Prometheus expects.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Iterable[str] = (),
        buckets: "Tuple[float, ...] | None" = None,
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be a sorted, non-empty "
                "sequence of upper bounds"
            )
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0,
                     "count": 0}
            self._series[key] = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state["counts"][i] += 1  # type: ignore[index]
        state["sum"] += value  # type: ignore[operator]
        state["count"] += 1  # type: ignore[operator]

    def _series_entry(self, key: Tuple[str, ...]) -> dict:
        state = self._series[key]
        return {
            "labels": self._label_dict(key),
            "buckets": {
                _format_value(bound): state["counts"][i]  # type: ignore[index]
                for i, bound in enumerate(self.buckets)
            },
            "sum": state["sum"],  # type: ignore[index]
            "count": state["count"],  # type: ignore[index]
        }


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    one is already registered under the name — re-registration with a
    different type or label set is an error, never a silent overwrite.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, Metric]" = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> "Optional[Metric]":
        return self._metrics.get(name)

    def _register(self, cls: type, name: str, help_text: str,
                  labels: Iterable[str], **kwargs: object) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(
                labels
            ):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type} with labels "
                    f"{list(existing.label_names)}"
                )
            return existing
        metric = cls(name, help_text, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help_text, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help_text, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: "Tuple[float, ...] | None" = None,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram, name, help_text, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical, JSON-safe view: metrics by sorted name, series by
        sorted label values.  Two registries that observed the same
        events snapshot byte-identically."""
        return {
            "version": METRICS_FORMAT_VERSION,
            "metrics": {
                name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)
            },
        }

    def to_json(self) -> str:
        """Canonical single-blob JSON (sorted keys, no whitespace)."""
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.metric_type}")
            for entry in metric.series_snapshot():
                labels = entry["labels"]
                if isinstance(metric, Histogram):
                    cumulative = entry["buckets"]
                    for bound, count in cumulative.items():
                        lines.append(
                            _prom_sample(
                                f"{name}_bucket",
                                {**labels, "le": bound},
                                count,
                            )
                        )
                    lines.append(
                        _prom_sample(
                            f"{name}_bucket",
                            {**labels, "le": "+Inf"},
                            entry["count"],
                        )
                    )
                    lines.append(
                        _prom_sample(f"{name}_sum", labels, entry["sum"])
                    )
                    lines.append(
                        _prom_sample(f"{name}_count", labels, entry["count"])
                    )
                else:
                    lines.append(_prom_sample(name, labels, entry["value"]))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_sample(
    name: str, labels: Mapping[str, str], value: float
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(labels[key]))}"'
            for key in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _series_map(metric_snapshot: dict) -> "Dict[Tuple[str, ...], dict]":
    label_names = metric_snapshot.get("labels", [])
    return {
        tuple(str(entry["labels"][name]) for name in label_names): entry
        for entry in metric_snapshot.get("series", [])
    }


def snapshot_delta(before: dict, after: dict) -> dict:
    """Subtract two registry snapshots (``after - before``).

    Counters and histograms subtract series-wise (a series absent from
    ``before`` contributes its full value); gauges take the ``after``
    reading (a gauge is a level, not a flow).  Metrics absent from
    ``after`` are dropped — a delta describes the newer window.
    """
    result: dict = {
        "version": METRICS_FORMAT_VERSION,
        "metrics": {},
    }
    before_metrics = before.get("metrics", {})
    for name in sorted(after.get("metrics", {})):
        metric = after["metrics"][name]
        previous = before_metrics.get(name)
        if (
            previous is None
            or previous.get("type") != metric.get("type")
            or metric.get("type") == "gauge"
        ):
            result["metrics"][name] = metric
            continue
        prior = _series_map(previous)
        series: List[dict] = []
        for entry in metric.get("series", []):
            key = tuple(
                str(entry["labels"][label])
                for label in metric.get("labels", [])
            )
            old = prior.get(key)
            if old is None:
                series.append(entry)
            elif metric.get("type") == "histogram":
                series.append(
                    {
                        "labels": entry["labels"],
                        "buckets": {
                            bound: count - old["buckets"].get(bound, 0)
                            for bound, count in entry["buckets"].items()
                        },
                        "sum": entry["sum"] - old["sum"],
                        "count": entry["count"] - old["count"],
                    }
                )
            else:
                series.append(
                    {
                        "labels": entry["labels"],
                        "value": entry["value"] - old["value"],
                    }
                )
        result["metrics"][name] = {
            "type": metric.get("type"),
            "help": metric.get("help", ""),
            "labels": metric.get("labels", []),
            "series": series,
        }
    return result
