"""Per-epoch telemetry snapshots.

An :class:`EpochSample` is the unit record of the observability stack:
everything one epoch did, flattened into JSON-safe scalars and small
dicts.  Additive fields (times, misses, traffic, per-device stalls) are
*per-epoch contributions* — summing them across a timeline in epoch
order reproduces the final :class:`~repro.sim.stats.RunStats`
aggregates exactly, because the engine performs the very same sequence
of float additions (asserted by ``tests/test_obs_telemetry.py``).
Counter-style fields (``llc_misses_cumulative``) are monotonic running
totals read from the perf-counter file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ObservabilityError

#: Bumped whenever the JSONL sample schema changes shape.
SAMPLE_FORMAT_VERSION = 1

#: Field order of :meth:`EpochSample.to_dict`; also the diff tool's
#: reporting order, so divergences list root causes (counters) before
#: symptoms (derived occupancy).
_SCALAR_FIELDS = (
    "epoch",
    "runtime_ns",
    "cpu_ns",
    "io_wait_ns",
    "policy_overhead_ns",
    "kernel_cost_ns",
    "instructions",
    "llc_misses",
    "llc_misses_cumulative",
    "traffic_bytes",
    "total_accesses",
    "tlb_flushes",
    "tlb_shootdowns",
    "pages_migrated",
    "pages_demoted",
    "scan_cost_ns",
    "migration_cost_ns",
    "swap_pages_out",
    "swap_pages_in",
    "fast_used_pages",
    "fast_free_pages",
    "alloc_requested_pages",
    "alloc_fast_granted_pages",
)

_DICT_FIELDS = (
    "stall_ns_by_device",
    "traffic_by_device",
    "alloc_by_type",
    "occupancy",
    "events",
)

#: heterocontract anchor (``contract-sample-sum``): sample fields that
#: are NOT per-epoch contributions re-summing to a same-named
#: RunStats/RunResult aggregate, with the reason.  Every other field
#: must have its aggregate counterpart (statically enforced by
#: ``repro lint --contracts``).
NON_ADDITIVE_FIELDS = {
    "epoch": "ordinal position in the timeline, not a contribution",
    "llc_misses_cumulative": (
        "monotonic counter-file reading; the final sample's value "
        "equals RunStats.llc_misses, per-epoch deltas land in "
        "llc_misses"
    ),
    "tlb_flushes": (
        "per-epoch TLB activity; whole-run totals are read from "
        "TlbSnapshot deltas, not accumulated on RunStats"
    ),
    "tlb_shootdowns": (
        "per-epoch TLB activity; whole-run totals are read from "
        "TlbSnapshot deltas, not accumulated on RunStats"
    ),
    "fast_used_pages": "end-of-epoch occupancy gauge, not a contribution",
    "fast_free_pages": "end-of-epoch occupancy gauge, not a contribution",
    "alloc_requested_pages": (
        "per-epoch allocation demand; whole-run accounting aggregates "
        "per page type in RunResult.alloc_stats"
    ),
    "alloc_fast_granted_pages": (
        "per-epoch allocation grants; whole-run accounting aggregates "
        "per page type in RunResult.alloc_stats"
    ),
    "traffic_by_device": (
        "per-epoch per-device traffic split; the run total is the "
        "scalar traffic_bytes, per-device write totals live in "
        "RunResult.device_write_bytes"
    ),
    "alloc_by_type": (
        "per-epoch per-type allocation split; the whole-run form is "
        "RunResult.alloc_stats keyed by PageType"
    ),
    "occupancy": (
        "zone/LRU/balloon gauges snapshot at epoch end; gauges do not "
        "sum"
    ),
    "events": (
        "discrete event records (migration passes, policy decisions); "
        "counted per kind in RunResult.fault_counts, never summed"
    ),
}

#: heterocontract anchor (``contract-sample-sum``, reverse direction):
#: RunStats aggregates with no per-epoch sample counterpart, with the
#: reason.
UNSAMPLED_AGGREGATES = {
    "epochs": "the timeline length IS the epoch count",
    "dropped_allocation_pages": (
        "terminal allocation-overflow accounting charged at drop time; "
        "per-epoch allocation behaviour is covered by "
        "alloc_requested/alloc_fast_granted"
    ),
}


@dataclass
class EpochSample:
    """One epoch's observability record (all times virtual ns).

    Per-epoch contributions unless suffixed ``_cumulative``; device and
    occupancy dicts are keyed by device name / node id in deterministic
    topology order (fastest tier first).
    """

    epoch: int = 0
    runtime_ns: float = 0.0
    cpu_ns: float = 0.0
    io_wait_ns: float = 0.0
    policy_overhead_ns: float = 0.0
    kernel_cost_ns: float = 0.0
    instructions: float = 0.0
    llc_misses: float = 0.0
    llc_misses_cumulative: float = 0.0
    traffic_bytes: float = 0.0
    total_accesses: float = 0.0
    tlb_flushes: int = 0
    tlb_shootdowns: int = 0
    pages_migrated: int = 0
    pages_demoted: int = 0
    scan_cost_ns: float = 0.0
    migration_cost_ns: float = 0.0
    swap_pages_out: int = 0
    swap_pages_in: int = 0
    fast_used_pages: int = 0
    fast_free_pages: int = 0
    alloc_requested_pages: int = 0
    alloc_fast_granted_pages: int = 0
    #: Per-device stall contribution this epoch (topology order).
    stall_ns_by_device: dict[str, float] = field(default_factory=dict)
    #: Per-device memory traffic this epoch (topology order).
    traffic_by_device: dict[str, float] = field(default_factory=dict)
    #: Page-type -> [requested, fast_granted] for types requested this epoch.
    alloc_by_type: dict[str, list] = field(default_factory=dict)
    #: Zone/LRU/balloon occupancy snapshot (node id -> gauges) + swap.
    occupancy: dict[str, object] = field(default_factory=dict)
    #: Discrete events this epoch (migration passes, policy decisions).
    events: list[dict] = field(default_factory=list)

    @property
    def mpki(self) -> float:
        """This epoch's LLC misses per kilo-instruction."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / (self.instructions / 1000.0)

    @property
    def stall_ns(self) -> float:
        """Total device stall this epoch."""
        return sum(self.stall_ns_by_device.values())

    @property
    def fastmem_alloc_miss_ratio(self) -> float:
        """Fraction of this epoch's requested pages NOT served by FastMem."""
        if self.alloc_requested_pages == 0:
            return 0.0
        return 1.0 - self.alloc_fast_granted_pages / self.alloc_requested_pages

    def to_dict(self) -> dict:
        """JSON-safe mapping in the canonical field order."""
        data: dict = {}
        for name in _SCALAR_FIELDS:
            data[name] = getattr(self, name)
        for name in _DICT_FIELDS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EpochSample":
        """Inverse of :meth:`to_dict`; lossless for JSON round trips."""
        kwargs = {}
        for name in _SCALAR_FIELDS + _DICT_FIELDS:
            if name in data:
                kwargs[name] = data[name]
        unknown = set(data) - set(kwargs) - {"type"}
        if unknown:
            raise ObservabilityError(
                f"unknown sample fields: {sorted(unknown)}"
            )
        return cls(**kwargs)
