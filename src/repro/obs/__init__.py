"""repro.obs — per-epoch telemetry bus, counter timelines, run tracing.

The simulator's evaluation evidence is *time-series* evidence: per-epoch
hardware-counter samples, hotness/migration activity, per-device stall
breakdowns (the paper's Figures 9, 10, 12, 13).  This package makes that
intra-run behaviour observable without perturbing it:

* :class:`~repro.obs.sample.EpochSample` — one epoch's snapshot of the
  whole stack: counters, per-device stalls/traffic, TLB costs, zone/LRU/
  balloon occupancy, policy counters, and discrete events (migration
  passes, policy decisions).
* :class:`~repro.obs.bus.Telemetry` — the event bus the engine publishes
  to.  Zero-cost when absent: a run built without a bus executes exactly
  the seed code path.
* Sinks (:mod:`repro.obs.sinks`) — in-memory timeline (attached to
  ``RunResult.timeline``), streaming JSONL, and Chrome ``trace_event``
  JSON that opens in Perfetto / ``chrome://tracing``.
* :class:`~repro.obs.profiler.PhaseProfiler` — host wall-clock per
  simulator phase, reported alongside virtual time to find simulator
  hot paths.
* :mod:`repro.obs.diff` — timeline diffing: pinpoint the first epoch at
  which two runs diverge.
* :mod:`repro.obs.metrics` + :mod:`repro.obs.flight` — *host-side* sweep
  observability: a deterministic Counter/Gauge/Histogram registry
  (canonical JSON + Prometheus text exposition) and the
  :class:`~repro.obs.flight.SweepRecorder` that ``run_specs`` notifies
  (cache traffic, retries, per-spec wall-clock lanes, fault roll-ups),
  behind ``repro sweep --metrics/--trace-sweep/--live`` and
  ``repro report``.

Determinism contract: telemetry observes, never steers.  A run with any
combination of sinks produces a field-by-field identical
:class:`~repro.sim.stats.RunResult` (timeline aside) to the same run
with no telemetry — asserted by ``tests/test_obs_telemetry.py``.
"""

#: heterocontract anchor (``contract-obs-pure``): attribute owners the
#: observability plane may write even though they are not defined in
#: ``repro.obs``.  Classes defined inside this package are always
#: allowed; anything else must be listed here (``Class.attr`` idents,
#: trailing ``*`` wildcards) with a justification in the surrounding
#: comment.  Empty on purpose: telemetry observes, never steers.
OBS_WRITE_ALLOWLIST: "tuple[str, ...]" = ()

from repro.obs.bus import Telemetry
from repro.obs.diff import (
    TimelineDiff,
    diff_timelines,
    load_timeline,
)
from repro.obs.flight import (
    SweepRecorder,
    format_live_status,
    merge_traces,
    reconstruct_report,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.sample import EpochSample
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    Sink,
    TimelineSink,
    json_line,
)

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "EpochSample",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "PhaseProfiler",
    "Sink",
    "SweepRecorder",
    "Telemetry",
    "TimelineDiff",
    "TimelineSink",
    "diff_timelines",
    "format_live_status",
    "json_line",
    "load_timeline",
    "merge_traces",
    "reconstruct_report",
    "snapshot_delta",
]
