"""Workload models of the paper's applications and microbenchmarks.

Each workload is a statistical epoch-level model emitting the memory-
demand signature the evaluation depends on: region allocations and frees
per kernel subsystem (heap / page cache / buffer cache / slab / network
buffers — Figure 4's mix), per-region access intensity and locality
(Table 4's MPKI), working-set sizes, and memory-level parallelism
(Observation 1's latency-vs-bandwidth sensitivity split).
"""

from repro.workloads.base import (
    ChurnSpec,
    EpochDemand,
    RegionSpec,
    StatisticalWorkload,
    Workload,
)
from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.microbench import make_memlat, make_stream
from repro.workloads.synthetic import make_synthetic

__all__ = [
    "RegionSpec",
    "ChurnSpec",
    "EpochDemand",
    "Workload",
    "StatisticalWorkload",
    "make_workload",
    "available_workloads",
    "make_memlat",
    "make_stream",
    "make_synthetic",
]
