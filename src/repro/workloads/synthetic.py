"""Seeded synthetic workload generator.

Produces randomized-but-reproducible application signatures for policy
fuzzing and what-if studies: pick a footprint, an I/O intensity, and a
locality skew, and get a :class:`StatisticalWorkload` whose regions and
churn flows were drawn from a seeded RNG.  The same seed always builds
the same workload (the simulator's determinism guarantee extends to
these).
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.mem.extent import PageType
from repro.units import GIB, pages_of_bytes
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_synthetic(
    seed: int,
    footprint_gib: float = 4.0,
    io_intensity: float = 0.3,
    locality_skew: float = 0.7,
    mpki: float = 12.0,
    run_epochs: int = 100,
    periodic_cold: bool = True,
) -> StatisticalWorkload:
    """Build a random application signature.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds build equal workloads.
    footprint_gib:
        Approximate live resident footprint.
    io_intensity:
        Fraction of accesses aimed at I/O (page cache, buffers, skbuff)
        rather than the heap, in [0, 1].
    locality_skew:
        How concentrated heap accesses are: 0 = uniform, 1 = a tiny hot
        set takes nearly everything.
    mpki:
        Target memory intensity; sets the access rate.
    periodic_cold:
        When set (default), the cold heap may be revisited only every
        k-th epoch — the adversarial pattern that defeats recency-based
        reclaim.  Disable for workloads with steady access mixes.
    """
    if not 0.0 <= io_intensity <= 1.0:
        raise WorkloadError("io_intensity must be in [0, 1]")
    if not 0.0 <= locality_skew <= 1.0:
        raise WorkloadError("locality_skew must be in [0, 1]")
    if footprint_gib <= 0:
        raise WorkloadError("footprint must be positive")

    rng = random.Random(seed)
    total_pages = pages_of_bytes(int(footprint_gib * GIB))
    heap_share = 100.0 * (1.0 - io_intensity)
    io_share = 100.0 * io_intensity

    # Heap temperature tiers: hot/warm/cold page splits driven by skew.
    hot_fraction = 0.1 + 0.25 * (1.0 - locality_skew)
    warm_fraction = 0.3
    hot_pages = max(1, int(total_pages * hot_fraction))
    warm_pages = max(1, int(total_pages * warm_fraction))
    cold_pages = max(1, total_pages - hot_pages - warm_pages)
    hot_access = heap_share * (0.5 + 0.45 * locality_skew)
    warm_access = heap_share * 0.3 * (1.0 - 0.5 * locality_skew)
    cold_access = max(0.5, heap_share - hot_access - warm_access)

    resident = [
        RegionSpec(
            "heap-hot", PageType.HEAP, hot_pages,
            reuse=rng.uniform(0.7, 0.9), access_share=hot_access,
            write_fraction=rng.uniform(0.2, 0.5),
        ),
        RegionSpec(
            "heap-warm", PageType.HEAP, warm_pages,
            reuse=rng.uniform(0.4, 0.7), access_share=warm_access,
            write_fraction=rng.uniform(0.2, 0.4),
        ),
        RegionSpec(
            "heap-cold", PageType.HEAP, cold_pages,
            reuse=rng.uniform(0.2, 0.4), access_share=cold_access,
            write_fraction=rng.uniform(0.1, 0.3),
            access_period=rng.choice((1, 2, 4)) if periodic_cold else 1,
        ),
    ]

    churn: list[ChurnSpec] = []
    if io_intensity > 0:
        flows = rng.randint(1, 3)
        flow_types = rng.sample(
            [
                PageType.PAGE_CACHE,
                PageType.BUFFER_CACHE,
                PageType.NETWORK_BUFFER,
            ],
            k=flows,
        )
        for index, page_type in enumerate(flow_types):
            lifetime = rng.randint(1, 6)
            churn.append(
                ChurnSpec(
                    f"io-{index}",
                    page_type,
                    pages_per_epoch=rng.randint(500, 8000),
                    lifetime_epochs=lifetime,
                    active_epochs=rng.randint(1, lifetime),
                    reuse=rng.uniform(0.1, 0.7),
                    access_share=io_share / flows,
                    write_fraction=rng.uniform(0.2, 0.8),
                )
            )

    instructions = 200e6
    accesses = mpki * instructions / 1000.0 * rng.uniform(0.9, 1.1)
    return StatisticalWorkload(
        name=f"synthetic-{seed}",
        mlp=rng.uniform(3.0, 14.0),
        instructions_per_epoch=instructions,
        accesses_per_epoch=accesses,
        io_wait_ns=rng.uniform(0.0, 60e6) * io_intensity,
        run_epochs=run_epochs,
        resident=resident,
        churn=churn,
    )
