"""Workloads exercising the Section 4.3 extension policies.

These are not paper workloads; they are the stress cases the paper's
future-work discussion motivates: read/write-asymmetric NVM placement
and multi-level memory ladders.
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_lsm_store(run_epochs: int = 80) -> StatisticalWorkload:
    """A log-structured store with a *read-hot* cache and a *write-hot*
    log buffer — the workload shape where NVM's store/load asymmetry
    makes write-aware placement matter."""
    return StatisticalWorkload(
        name="lsm-store",
        mlp=5.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=2.0e6,
        io_wait_ns=20e6,
        metric="ops-per-sec",
        work_units_per_epoch=25_000,
        run_epochs=run_epochs,
        resident=[
            RegionSpec(
                "read-cache", PageType.HEAP, 200_000, reuse=0.8,
                access_share=55.0, write_fraction=0.02,
            ),
            RegionSpec(
                "log-buffer", PageType.HEAP, 40_000, reuse=0.5,
                access_share=12.0, write_fraction=0.95,
            ),
        ],
        churn=[
            ChurnSpec(
                "wal", PageType.BUFFER_CACHE, 3_000, 2, reuse=0.5,
                access_share=25.0, write_fraction=0.9,
            ),
            ChurnSpec(
                "compact", PageType.HEAP, 1_000, 3, reuse=0.4,
                access_share=8.0, write_fraction=0.5,
            ),
        ],
    )


def make_tiered_analytics(run_epochs: int = 80) -> StatisticalWorkload:
    """A three-temperature analytics job (hot working set, warm
    intermediate state, cold history with periodic revisits) — the shape
    multi-level ladders exploit."""
    return StatisticalWorkload(
        name="tiered-analytics",
        mlp=10.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=4.0e6,
        io_wait_ns=8e6,
        run_epochs=run_epochs,
        resident=[
            RegionSpec(
                "hot", PageType.HEAP, 180_000, reuse=0.85,
                access_share=50.0, write_fraction=0.35,
            ),
            RegionSpec(
                "warm", PageType.HEAP, 400_000, reuse=0.6,
                access_share=28.0, write_fraction=0.3,
            ),
            RegionSpec(
                "cold-history", PageType.HEAP, 800_000, reuse=0.3,
                access_share=6.0, write_fraction=0.1, access_period=5,
            ),
        ],
        churn=[
            ChurnSpec(
                "scratch", PageType.HEAP, 8_000, 2, reuse=0.5,
                access_share=12.0, write_fraction=0.5, active_epochs=2,
            ),
            ChurnSpec(
                "scan-io", PageType.PAGE_CACHE, 5_000, 3, reuse=0.2,
                access_share=4.0, active_epochs=1,
            ),
        ],
    )
