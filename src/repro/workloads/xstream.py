"""X-Stream model — edge-centric graph processing (Table 2).

Signature reproduced:

* MPKI ~24.8, bandwidth-bound streaming with little temporal locality
  ("computes over a memory mapped I/O data", Section 5.3);
* page-cache-dominant: the input graph is mapped through the page cache,
  so the page-cache churn flow carries ~60% of accesses and ~3M of the
  ~3.3M cumulative pages (Figure 4);
* FastMem page cache alone cuts the runtime dramatically (Figure 9's
  Heap-IO-Slab-OD jump).
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_xstream() -> StatisticalWorkload:
    """Build the X-Stream workload model."""
    gib_pages = 262144
    return StatisticalWorkload(
        name="xstream",
        mlp=14.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=5.2e6,
        io_wait_ns=15.0 * NS_PER_MS,
        run_epochs=240,
        metric="seconds",
        resident=[
            RegionSpec(
                label="heap-state",
                page_type=PageType.HEAP,
                pages=int(1.0 * gib_pages),
                reuse=0.60,
                access_share=22.0,
                write_fraction=0.35,
                bytes_per_miss=128.0,
            ),
        ],
        churn=[
            ChurnSpec(
                label="edge-stream",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=28_000,
                lifetime_epochs=3,
                active_epochs=1,
                reuse=0.15,
                access_share=60.0,
                write_fraction=0.25,
                bytes_per_miss=256.0,
            ),
            ChurnSpec(
                label="update-buffers",
                page_type=PageType.HEAP,
                pages_per_epoch=3_000,
                lifetime_epochs=2,
                active_epochs=2,
                reuse=0.45,
                access_share=9.0,
                write_fraction=0.55,
                bytes_per_miss=128.0,
            ),
            ChurnSpec(
                label="fs-meta",
                page_type=PageType.BUFFER_CACHE,
                pages_per_epoch=2_000,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.40,
                access_share=6.0,
            ),
            ChurnSpec(
                label="slab",
                page_type=PageType.SLAB,
                pages_per_epoch=800,
                lifetime_epochs=1,
                reuse=0.50,
                access_share=3.0,
            ),
        ],
    )
