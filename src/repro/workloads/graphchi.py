"""GraphChi model — PageRank over the Orkut social graph (Table 2).

Signature reproduced (Sections 2.2, 5.3):

* most memory-intensive app: MPKI ~27.4 (Table 4), high MLP (multi-
  threaded batch processing makes it bandwidth-sensitive, Observation 1);
* ~1.5 GB hot working set inside a ~4 GB heap, plus heavy alloc/free
  churn ("frequently allocate-deallocate memory", Section 5.3) — the
  behaviour on-demand allocation rewards;
* shard loading streams through the I/O page cache;
* cumulative page total ~5M pages, heap-dominant mix (Figure 4).
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_graphchi() -> StatisticalWorkload:
    """Build the GraphChi workload model."""
    gib_pages = 262144
    return StatisticalWorkload(
        name="graphchi",
        mlp=14.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=5.6e6,
        io_wait_ns=10.0 * NS_PER_MS,
        run_epochs=240,
        metric="seconds",
        share_shifts=[
            (120, {"heap-hot": 12.0, "heap-warm": 36.0}),
        ],
        resident=[
            RegionSpec(
                label="heap-hot",
                page_type=PageType.HEAP,
                pages=int(0.9 * gib_pages),
                reuse=0.85,
                access_share=38.0,
                write_fraction=0.35,
                bytes_per_miss=128.0,
            ),
            RegionSpec(
                label="heap-warm",
                page_type=PageType.HEAP,
                pages=int(0.6 * gib_pages),
                reuse=0.85,
                access_share=10.0,
                write_fraction=0.35,
                bytes_per_miss=128.0,
            ),
            RegionSpec(
                label="heap-cold",
                page_type=PageType.HEAP,
                pages=int(2.5 * gib_pages),
                reuse=0.30,
                access_share=10.0,
                write_fraction=0.30,
                bytes_per_miss=128.0,
            ),
        ],
        churn=[
            ChurnSpec(
                label="heap-shard",
                page_type=PageType.HEAP,
                pages_per_epoch=25_000,
                lifetime_epochs=2,
                active_epochs=2,
                reuse=0.50,
                access_share=25.0,
                write_fraction=0.40,
                bytes_per_miss=128.0,
            ),
            ChurnSpec(
                label="shard-io",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=15_000,
                lifetime_epochs=4,
                active_epochs=1,
                reuse=0.20,
                access_share=12.0,
                write_fraction=0.20,
                bytes_per_miss=256.0,
            ),
            ChurnSpec(
                label="fs-meta",
                page_type=PageType.BUFFER_CACHE,
                pages_per_epoch=1_500,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.40,
                access_share=2.0,
            ),
            ChurnSpec(
                label="slab",
                page_type=PageType.SLAB,
                pages_per_epoch=800,
                lifetime_epochs=1,
                reuse=0.50,
                access_share=2.0,
            ),
        ],
    )
