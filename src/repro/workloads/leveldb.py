"""LevelDB model — SQLite-bench style key-value store (Table 2).

Signature reproduced:

* storage-intensive with a *small* in-memory working set: MPKI ~4.7 and
  strong dilution by disk wait ("LevelDB ... with relatively smaller
  working set show[s] lower impact", Observation 1);
* throughput metric (MB/s);
* buffer-cache- and page-cache-dominant page mix, smallest cumulative
  page total of the suite (~0.53M, Figure 4);
* page-cache regions linger after their I/O completes (read-ahead /
  compaction retention): the pattern HeteroOS-LRU's eager eviction
  exploits ("placing buffer cache pages in FastMem speeds up logging and
  read operations via a memory-mapped database", Section 5.3).
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_leveldb() -> StatisticalWorkload:
    """Build the LevelDB workload model."""
    return StatisticalWorkload(
        name="leveldb",
        mlp=4.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=1.2e6,
        io_wait_ns=60.0 * NS_PER_MS,
        run_epochs=160,
        metric="mb-per-sec",
        work_units_per_epoch=32.0,  # MB of key-value traffic per epoch
        resident=[
            RegionSpec(
                label="memtable",
                page_type=PageType.HEAP,
                pages=78_643,  # ~300 MB
                reuse=0.80,
                access_share=30.0,
                write_fraction=0.50,
            ),
        ],
        churn=[
            ChurnSpec(
                label="log-writes",
                page_type=PageType.BUFFER_CACHE,
                pages_per_epoch=3_000,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.55,
                access_share=30.0,
                write_fraction=0.60,
            ),
            ChurnSpec(
                label="sst-reads",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=2_200,
                lifetime_epochs=6,
                active_epochs=2,
                reuse=0.60,
                access_share=30.0,
                write_fraction=0.10,
            ),
            ChurnSpec(
                label="fs-slab",
                page_type=PageType.SLAB,
                pages_per_epoch=600,
                lifetime_epochs=1,
                reuse=0.55,
                access_share=6.0,
            ),
            ChurnSpec(
                label="heap-scratch",
                page_type=PageType.HEAP,
                pages_per_epoch=500,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.50,
                access_share=4.0,
            ),
        ],
    )
