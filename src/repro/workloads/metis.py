"""Metis model — shared-memory MapReduce, 4 GB crime dataset (Table 2).

Signature reproduced:

* MPKI ~14.9, moderate MLP (8 mapper-reducer threads);
* a large ~5.4 GB heap working set that is "seldom release[d]"
  (Section 5.3), which caps Heap-OD's gains at low FastMem ratios —
  Metis is the app where migration-based approaches stay competitive;
* small I/O footprint; ~1.75M cumulative pages, heap-dominant (Figure 4).
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_metis() -> StatisticalWorkload:
    """Build the Metis workload model."""
    gib_pages = 262144
    return StatisticalWorkload(
        name="metis",
        mlp=12.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=3.05e6,
        io_wait_ns=12.0 * NS_PER_MS,
        run_epochs=240,
        metric="seconds",
        share_shifts=[
            (120, {"heap-hot": 17.0, "heap-mid": 38.0}),
        ],
        resident=[
            RegionSpec(
                label="heap-hot",
                page_type=PageType.HEAP,
                pages=int(1.2 * gib_pages),
                reuse=0.80,
                access_share=40.0,
                write_fraction=0.35,
            ),
            RegionSpec(
                label="heap-mid",
                page_type=PageType.HEAP,
                pages=int(0.8 * gib_pages),
                reuse=0.80,
                access_share=15.0,
                write_fraction=0.35,
            ),
            RegionSpec(
                label="heap-warm",
                page_type=PageType.HEAP,
                pages=int(3.4 * gib_pages),
                reuse=0.45,
                access_share=33.0,
                write_fraction=0.30,
            ),
        ],
        churn=[
            ChurnSpec(
                label="intermediate",
                page_type=PageType.HEAP,
                pages_per_epoch=3_000,
                lifetime_epochs=4,
                active_epochs=3,
                reuse=0.55,
                access_share=8.0,
                write_fraction=0.50,
            ),
            ChurnSpec(
                label="input-io",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=1_500,
                lifetime_epochs=3,
                active_epochs=1,
                reuse=0.30,
                access_share=3.0,
            ),
            ChurnSpec(
                label="slab",
                page_type=PageType.SLAB,
                pages_per_epoch=300,
                lifetime_epochs=1,
                reuse=0.50,
                access_share=1.0,
            ),
        ],
    )
