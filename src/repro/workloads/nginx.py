"""NGinx model — webserver, 1M static/dynamic pages (Table 2).

Signature reproduced:

* tiny active working set ("less than 60 MB active working set") with
  MPKI ~2.1, so "even exclusively placing it in a 9x SlowMem has less
  than 10% impact" — the run time is dominated by network/disk wait;
* the hot file set largely fits in the LLC, keeping misses low;
* requests-per-second metric.
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_nginx() -> StatisticalWorkload:
    """Build the NGinx workload model."""
    return StatisticalWorkload(
        name="nginx",
        mlp=4.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=0.58e6,
        io_wait_ns=220.0 * NS_PER_MS,
        run_epochs=120,
        metric="ops-per-sec",
        work_units_per_epoch=100_000.0,  # requests per epoch
        resident=[
            RegionSpec(
                label="worker-heap",
                page_type=PageType.HEAP,
                pages=10_240,  # ~40 MB
                reuse=0.90,
                access_share=25.0,
                write_fraction=0.30,
            ),
            RegionSpec(
                label="static-files",
                page_type=PageType.PAGE_CACHE,
                pages=15_360,  # ~60 MB
                reuse=0.88,
                access_share=45.0,
                write_fraction=0.05,
            ),
        ],
        churn=[
            ChurnSpec(
                label="skbuff",
                page_type=PageType.NETWORK_BUFFER,
                pages_per_epoch=800,
                lifetime_epochs=1,
                reuse=0.70,
                access_share=20.0,
                write_fraction=0.50,
            ),
            ChurnSpec(
                label="kernel-slab",
                page_type=PageType.SLAB,
                pages_per_epoch=300,
                lifetime_epochs=1,
                reuse=0.60,
                access_share=6.0,
            ),
            ChurnSpec(
                label="conn-heap",
                page_type=PageType.HEAP,
                pages_per_epoch=200,
                lifetime_epochs=1,
                reuse=0.60,
                access_share=4.0,
            ),
        ],
    )
