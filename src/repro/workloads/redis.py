"""Redis model — key-value store, 4M ops, 80% GETs (Table 2).

Signature reproduced:

* network-intensive: the dominant kernel demand is skbuff network-buffer
  slab churn ("network-intensive applications extensively use slab pages
  for OS-level network buffers 'skbuff' (see Redis in Figure 4)");
* MPKI ~11.1 with a ~1.5 GB value heap; requests-per-second metric;
* moderate dilution by network wait;
* prioritizing the slab/skbuff pages to FastMem is what moves its
  throughput (Section 5.3).
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def make_redis() -> StatisticalWorkload:
    """Build the Redis workload model."""
    gib_pages = 262144
    return StatisticalWorkload(
        name="redis",
        mlp=7.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=2.72e6,
        io_wait_ns=45.0 * NS_PER_MS,
        run_epochs=160,
        metric="ops-per-sec",
        work_units_per_epoch=40_000.0,  # requests per epoch
        resident=[
            RegionSpec(
                label="values",
                page_type=PageType.HEAP,
                pages=int(1.5 * gib_pages),
                reuse=0.70,
                access_share=45.0,
                write_fraction=0.30,
            ),
        ],
        churn=[
            ChurnSpec(
                label="skbuff",
                page_type=PageType.NETWORK_BUFFER,
                pages_per_epoch=5_000,
                lifetime_epochs=1,
                active_epochs=1,
                reuse=0.65,
                access_share=32.0,
                write_fraction=0.50,
            ),
            ChurnSpec(
                label="kernel-slab",
                page_type=PageType.SLAB,
                pages_per_epoch=1_200,
                lifetime_epochs=1,
                reuse=0.55,
                access_share=8.0,
            ),
            ChurnSpec(
                label="aof-persist",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=1_200,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.30,
                access_share=5.0,
                write_fraction=0.80,
            ),
            ChurnSpec(
                label="heap-scratch",
                page_type=PageType.HEAP,
                pages_per_epoch=800,
                lifetime_epochs=2,
                active_epochs=1,
                reuse=0.55,
                access_share=10.0,
            ),
        ],
    )
