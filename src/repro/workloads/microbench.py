"""Microbenchmarks: ``memlat`` (Figure 6) and Stream (Figure 7).

* ``memlat`` [Drepper]: dependent-chain pointer chasing over a heap
  working set — MLP ~1, so average access latency is exposed directly.
  The Figure 6 metric (cycles per access) is derived by the bench from
  the run's stall time and access count.
* Stream triad: sequential read-read-write sweeps with no temporal reuse
  and deep MLP — pure bandwidth (Figure 7's GB/s is derived from traffic
  over runtime).

Both allocate heap pages only, matching Section 5.2.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.mem.extent import PageType
from repro.units import GIB, pages_of_bytes
from repro.workloads.base import RegionSpec, StatisticalWorkload


def make_memlat(
    wss_gib: float, accesses_per_epoch: float = 2.0e6
) -> StatisticalWorkload:
    """Pointer-chase latency benchmark over ``wss_gib`` GiB of heap."""
    if wss_gib <= 0:
        raise WorkloadError("working set must be positive")
    pages = pages_of_bytes(int(wss_gib * GIB))
    # The working set is allocated in chunks so partial placement (and
    # Random's per-allocation coin flips) behave like a real allocator.
    chunks = 8
    chunk = max(1, pages // chunks)
    return StatisticalWorkload(
        name=f"memlat-{wss_gib}g",
        mlp=1.2,  # dependent loads barely overlap
        instructions_per_epoch=20e6,
        accesses_per_epoch=accesses_per_epoch,
        metric="seconds",
        run_epochs=30,
        resident=[
            RegionSpec(
                label=f"chase-{part}",
                page_type=PageType.HEAP,
                pages=chunk,
                reuse=0.95,  # would hit if it fit: pure capacity test
                access_share=1.0,
                write_fraction=0.0,
            )
            for part in range(chunks)
        ],
    )


def make_stream(
    wss_gib: float, accesses_per_epoch: float = 9.0e6
) -> StatisticalWorkload:
    """Stream-triad bandwidth benchmark over ``wss_gib`` GiB of heap."""
    if wss_gib <= 0:
        raise WorkloadError("working set must be positive")
    pages = pages_of_bytes(int(wss_gib * GIB))
    chunks = 8
    chunk = max(1, pages // chunks)
    return StatisticalWorkload(
        name=f"stream-{wss_gib}g",
        mlp=24.0,  # vectorised sequential sweeps: fully overlapped
        instructions_per_epoch=50e6,
        accesses_per_epoch=accesses_per_epoch,
        metric="mb-per-sec",
        run_epochs=30,
        resident=[
            RegionSpec(
                label=f"triad-{part}",
                page_type=PageType.HEAP,
                pages=chunk,
                reuse=0.02,  # streaming: no temporal reuse
                access_share=1.0,
                write_fraction=1.0 / 3.0,  # a[i] = b[i] + s*c[i]
                bytes_per_miss=256.0,
            )
            for part in range(chunks)
        ],
    )
