"""Figure 13's multi-VM workload variants.

Section 5.5: "For Graphchi, we use a Twitter dataset that requires 6GB of
total heap capacity with an active working set size of just 1.5GB ...
For Metis, our dataset uses 8GB of the heap and has a working set size of
5.4GB."  On a 4 GB FastMem / 8 GB SlowMem machine the two VMs' demand
(14 GB) overcommits memory, and the sharing policy decides who wins.

Both variants grow their heaps in stages (``alloc_epoch``): Metis is the
memory-hungry fast grower that "first exhausts the reserved FastMem and
then starts exhausting SlowMem by ballooning out the Graphchi VM's
SlowMem pages" under single-resource max-min.
"""

from __future__ import annotations

from repro.mem.extent import PageType
from repro.units import NS_PER_MS
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload

GIB_PAGES = 262144


def make_graphchi_twitter() -> StatisticalWorkload:
    """GraphChi on the Twitter graph: 6 GB heap, 1.5 GB active WSS,
    growing gradually (shard-by-shard loading)."""
    resident = [
        RegionSpec(
            label="heap-hot",
            page_type=PageType.HEAP,
            pages=int(1.5 * GIB_PAGES),
            reuse=0.85,
            access_share=55.0,
            write_fraction=0.35,
            bytes_per_miss=128.0,
            alloc_epoch=0,
        ),
    ]
    # 4.5 GB of cold graph data loaded in 1.5 GB slices over time.
    for part, epoch in enumerate((10, 25, 40)):
        resident.append(
            RegionSpec(
                label=f"heap-cold-{part}",
                page_type=PageType.HEAP,
                pages=int(1.5 * GIB_PAGES),
                reuse=0.30,
                access_share=6.0,
                write_fraction=0.30,
                bytes_per_miss=128.0,
                alloc_epoch=epoch,
                access_period=6,
            )
        )
    return StatisticalWorkload(
        name="graphchi-twitter",
        mlp=14.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=5.6e6,
        io_wait_ns=10.0 * NS_PER_MS,
        metric="seconds",
        run_epochs=160,
        resident=resident,
        churn=[
            ChurnSpec(
                label="heap-shard",
                page_type=PageType.HEAP,
                pages_per_epoch=20_000,
                lifetime_epochs=2,
                active_epochs=2,
                reuse=0.50,
                access_share=20.0,
                write_fraction=0.40,
                bytes_per_miss=128.0,
            ),
            ChurnSpec(
                label="shard-io",
                page_type=PageType.PAGE_CACHE,
                pages_per_epoch=8_000,
                lifetime_epochs=3,
                active_epochs=1,
                reuse=0.20,
                access_share=7.0,
                bytes_per_miss=256.0,
            ),
        ],
    )


def make_metis_big() -> StatisticalWorkload:
    """Metis with an 8 GB heap / 5.4 GB WSS: the memory-hungry neighbour
    that grows fast and balloons aggressively."""
    resident = [
        RegionSpec(
            label="heap-hot",
            page_type=PageType.HEAP,
            pages=int(2.7 * GIB_PAGES),
            reuse=0.80,
            access_share=50.0,
            write_fraction=0.35,
            alloc_epoch=0,
        ),
        RegionSpec(
            label="heap-warm",
            page_type=PageType.HEAP,
            pages=int(2.7 * GIB_PAGES),
            reuse=0.60,
            access_share=30.0,
            write_fraction=0.30,
            alloc_epoch=2,
        ),
    ]
    # 2.6 GB of cold intermediate data, grabbed early and rarely touched.
    for part, epoch in enumerate((4, 6)):
        resident.append(
            RegionSpec(
                label=f"heap-cold-{part}",
                page_type=PageType.HEAP,
                pages=int(1.3 * GIB_PAGES),
                reuse=0.30,
                access_share=6.0,
                write_fraction=0.40,
                alloc_epoch=epoch,
                access_period=6,
            )
        )
    return StatisticalWorkload(
        name="metis-big",
        mlp=12.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=3.05e6,
        io_wait_ns=12.0 * NS_PER_MS,
        metric="seconds",
        run_epochs=160,
        resident=resident,
        churn=[
            ChurnSpec(
                label="intermediate",
                page_type=PageType.HEAP,
                pages_per_epoch=3_000,
                lifetime_epochs=4,
                active_epochs=3,
                reuse=0.55,
                access_share=8.0,
                write_fraction=0.50,
            ),
        ],
    )
