"""Workload protocol and the statistical epoch-model implementation.

A workload emits a stream of :class:`EpochDemand` records.  Logical data
lives in *regions*: resident regions are allocated once and live for the
run (split hot/warm/cold to express within-application locality skew);
*churn flows* allocate a fresh region every epoch and free it after a
fixed lifetime — the alloc/release cycles of heaps, page caches, and
network buffers that on-demand placement exploits (Observation 3).

A churn region is only *accessed* while younger than ``active_epochs``;
after that it lingers until freed — the read-ahead/retention behaviour
that lets stale cache pages pin FastMem under policies without eager
eviction.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WorkloadError
from repro.mem.extent import PageType
from repro.units import CACHE_LINE


@dataclass(frozen=True)
class RegionSpec:
    """Static properties of one logical region."""

    label: str
    page_type: PageType
    pages: int
    #: Temporal locality in [0,1]: fraction of accesses that hit the LLC
    #: *given* residency (see :class:`repro.hw.cache.LastLevelCache`).
    reuse: float
    #: Relative share of the application's accesses aimed at this region.
    access_share: float
    write_fraction: float = 0.3
    bytes_per_miss: float = float(CACHE_LINE)
    #: Epoch at which a resident region is allocated: applications grow
    #: their footprint over time, which is what multi-VM ballooning
    #: contention feeds on (Figure 13).
    alloc_epoch: int = 0
    #: Touch the region only every k-th epoch (1 = every epoch).  Cold
    #: data revisited intermittently is what swap and demotion prey on.
    access_period: int = 1

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise WorkloadError(f"region {self.label!r}: pages must be > 0")
        if not 0.0 <= self.reuse <= 1.0:
            raise WorkloadError(f"region {self.label!r}: reuse not in [0,1]")
        if self.access_share < 0:
            raise WorkloadError(f"region {self.label!r}: negative share")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(
                f"region {self.label!r}: write fraction not in [0,1]"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """A flow of short-lived regions: one allocation per epoch."""

    label: str
    page_type: PageType
    pages_per_epoch: int
    lifetime_epochs: int
    reuse: float
    access_share: float
    #: Regions are accessed only while younger than this many epochs.
    active_epochs: int = 1
    write_fraction: float = 0.4
    bytes_per_miss: float = float(CACHE_LINE)

    def __post_init__(self) -> None:
        if self.pages_per_epoch <= 0 or self.lifetime_epochs <= 0:
            raise WorkloadError(f"churn {self.label!r}: bad sizes")
        if not 1 <= self.active_epochs <= self.lifetime_epochs:
            raise WorkloadError(
                f"churn {self.label!r}: active_epochs must be in "
                f"[1, lifetime]"
            )

    def region_spec(self, pages: int | None = None) -> RegionSpec:
        return RegionSpec(
            label=self.label,
            page_type=self.page_type,
            pages=pages or self.pages_per_epoch,
            reuse=self.reuse,
            access_share=self.access_share,
            write_fraction=self.write_fraction,
            bytes_per_miss=self.bytes_per_miss,
        )


@dataclass
class EpochDemand:
    """One epoch's memory demand."""

    epoch: int
    instructions: float
    #: Fixed non-memory wait (disk/network latency) diluting memory
    #: sensitivity for I/O-bound applications.
    io_wait_ns: float = 0.0
    allocs: list[tuple[str, RegionSpec]] = field(default_factory=list)
    frees: list[str] = field(default_factory=list)
    #: region id -> (reads, writes)
    accesses: dict[str, tuple[float, float]] = field(default_factory=dict)


class Workload(abc.ABC):
    """Anything that can drive the simulation engine."""

    name: str = "workload"
    #: Memory-level parallelism: outstanding misses that overlap.
    mlp: float = 4.0
    #: 'seconds' (runtime), 'ops-per-sec', or 'mb-per-sec'.
    metric: str = "seconds"
    #: Logical work per epoch for throughput metrics (ops or MB).
    work_units_per_epoch: float = 0.0

    @abc.abstractmethod
    def epochs(self, count: int) -> Iterator[EpochDemand]:
        """Yield ``count`` epoch demands."""

    def default_epochs(self) -> int:
        """Run length used by the benchmark harness."""
        return 100


class StatisticalWorkload(Workload):
    """Resident regions + churn flows, constant per-epoch intensity."""

    def __init__(
        self,
        name: str,
        mlp: float,
        instructions_per_epoch: float,
        accesses_per_epoch: float,
        resident: list[RegionSpec],
        churn: list[ChurnSpec] | None = None,
        io_wait_ns: float = 0.0,
        metric: str = "seconds",
        work_units_per_epoch: float = 0.0,
        run_epochs: int = 100,
        share_shifts: list[tuple[int, dict[str, float]]] | None = None,
    ) -> None:
        if instructions_per_epoch <= 0:
            raise WorkloadError("instructions per epoch must be positive")
        if accesses_per_epoch < 0:
            raise WorkloadError("accesses per epoch must be non-negative")
        if mlp <= 0:
            raise WorkloadError("MLP must be positive")
        self.name = name
        self.mlp = mlp
        self.metric = metric
        self.work_units_per_epoch = work_units_per_epoch
        self.instructions_per_epoch = instructions_per_epoch
        self.accesses_per_epoch = accesses_per_epoch
        self.resident = list(resident)
        self.churn = list(churn or [])
        self.io_wait_ns = io_wait_ns
        self._run_epochs = run_epochs
        #: Hot-set drift: at each (epoch, {label: share}) boundary the
        #: named resident regions' access shares change — the application
        #: phase changes (PageRank iteration working-set drift, map vs
        #: reduce) that make runtime hotness tracking worth its cost.
        self.share_shifts = sorted(share_shifts or [])
        known = {spec.label for spec in resident}
        for _, shares in self.share_shifts:
            unknown = set(shares) - known
            if unknown:
                raise WorkloadError(f"share shift for unknown regions {unknown}")
        self._ids = itertools.count(1)

    def default_epochs(self) -> int:
        return self._run_epochs

    @property
    def resident_pages(self) -> int:
        return sum(spec.pages for spec in self.resident)

    def epochs(self, count: int) -> Iterator[EpochDemand]:
        #: live churn regions: (region_id, spec, birth_epoch)
        live: list[tuple[str, ChurnSpec, int]] = []
        for epoch in range(count):
            demand = EpochDemand(
                epoch=epoch,
                instructions=self.instructions_per_epoch,
                io_wait_ns=self.io_wait_ns,
            )
            for spec in self.resident:
                if spec.alloc_epoch == epoch:
                    demand.allocs.append(
                        (f"{self.name}:{spec.label}", spec)
                    )
            # Expire old churn regions.
            still_live: list[tuple[str, ChurnSpec, int]] = []
            for region_id, spec, birth in live:
                if epoch - birth >= spec.lifetime_epochs:
                    demand.frees.append(region_id)
                else:
                    still_live.append((region_id, spec, birth))
            live = still_live
            # Spawn this epoch's churn regions.
            for spec in self.churn:
                region_id = (
                    f"{self.name}:{spec.label}:{next(self._ids)}"
                )
                demand.allocs.append((region_id, spec.region_spec()))
                live.append((region_id, spec, epoch))
            self._fill_accesses(demand, live, epoch)
            yield demand

    def _fill_accesses(
        self,
        demand: EpochDemand,
        live: list[tuple[str, ChurnSpec, int]],
        epoch: int,
    ) -> None:
        """Distribute the epoch's accesses by region share weights."""
        shifted: dict[str, float] = {}
        for boundary, shares in self.share_shifts:
            if epoch >= boundary:
                shifted.update(shares)
        weights: list[tuple[str, float, float]] = []  # id, weight, wf
        for spec in self.resident:
            if epoch < spec.alloc_epoch:
                continue
            if (epoch - spec.alloc_epoch) % spec.access_period != 0:
                continue
            share = shifted.get(spec.label, spec.access_share)
            weights.append(
                (f"{self.name}:{spec.label}", share, spec.write_fraction)
            )
        # A churn flow's share is split across its *active* live regions.
        active_by_flow: dict[str, list[str]] = {}
        flow_specs: dict[str, ChurnSpec] = {}
        for region_id, spec, birth in live:
            flow_specs[spec.label] = spec
            if epoch - birth < spec.active_epochs:
                active_by_flow.setdefault(spec.label, []).append(region_id)
        for label, region_ids in active_by_flow.items():
            spec = flow_specs[label]
            share = spec.access_share / len(region_ids)
            for region_id in region_ids:
                weights.append((region_id, share, spec.write_fraction))
        total_weight = sum(w for _, w, _ in weights)
        if total_weight <= 0:
            return
        for region_id, weight, write_fraction in weights:
            accesses = self.accesses_per_epoch * weight / total_weight
            reads = accesses * (1.0 - write_fraction)
            writes = accesses * write_fraction
            demand.accesses[region_id] = (reads, writes)
